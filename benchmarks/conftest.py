"""Shared benchmark configuration.

Benchmarks regenerate every figure of the paper at ``QUICK_SCALE`` by
default (same 9-site Grid'5000 latency structure, fewer processes and
critical sections).  Set ``REPRO_FULL=1`` to run at the paper's scale
(9×20 processes, 100 CS each, 10 seeds) — expect tens of minutes.

Each figure test times its sweep once via ``benchmark.pedantic`` (so
``pytest benchmarks/ --benchmark-only`` both regenerates and times them),
prints the same rows the paper plots, and asserts the qualitative shape
documented in DESIGN.md §5.
"""

import pytest

from repro.experiments import scale_from_env


@pytest.fixture(scope="session")
def scale():
    return scale_from_env()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
