"""Persistent performance-benchmark harness.

``benchmarks/perf`` measures end-to-end simulator throughput (events/sec,
messages/sec, wall time) on a small set of canonical scenarios and records
the trajectory as ``benchmarks/results/BENCH_<stamp>.json`` files, so
every optimization PR can prove its speedup against the committed history.

Entry points:

* ``scripts/run_bench.py`` — CLI: run the suite, write a report, compare
  against a committed baseline (the CI ``bench-smoke`` job gates on it).
* :func:`benchmarks.perf.harness.run_suite` — programmatic access.

See ``docs/performance.md`` for the measurement methodology.
"""

from .harness import (  # noqa: F401
    SCENARIOS,
    check_memory_budget,
    check_regression,
    format_history,
    history_rows,
    latest_bench_file,
    load_report,
    machine_score,
    machine_score_probes,
    probe_spread,
    run_suite,
    write_report,
)
