"""Benchmark harness: timing, persistence and the regression gate.

A *report* is one JSON document::

    {
      "stamp":   "20260807T120000Z",
      "mode":    "quick" | "full",
      "python":  "3.11.7",
      "platform": "...",
      "machine_score": 123456.7,       # repro-independent ops/sec yardstick
      "scenarios": {
        "fig4_composition": {
          "wall_s": ..., "events": ..., "messages": ..., "cs": ...,
          "sim_ms": ..., "events_per_s": ..., "messages_per_s": ...,
          "repeats": 3
        },
        ...
      }
    }

Reports are written as ``benchmarks/results/BENCH_<stamp>.json`` and are
meant to be committed: the sequence of files is the performance
trajectory of the repo.  (Early reports lived at the repository root;
:func:`latest_bench_file` still scans both places.)

The regression gate compares events/sec per scenario between two reports.
Because CI runners and developer machines differ, the comparison is
*normalized* by :func:`machine_score` — a fixed pure-Python/numpy workload
measured at report time that does **not** exercise any ``repro`` code, so
it moves with the machine, not with the kernel under test.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .scenarios import SCENARIO_FNS

__all__ = [
    "SCENARIOS",
    "machine_score",
    "machine_score_probes",
    "probe_spread",
    "run_suite",
    "write_report",
    "load_report",
    "latest_bench_file",
    "check_regression",
    "check_memory_budget",
    "history_rows",
    "format_history",
]

SCENARIOS: Tuple[str, ...] = tuple(SCENARIO_FNS)

#: Repository-relative directory where reports accumulate.
RESULTS_DIR = os.path.join("benchmarks", "results")

#: events/sec comparisons within this fraction of the baseline pass.
DEFAULT_THRESHOLD = 0.20


#: Probes per :func:`machine_score` call (median-of-5: robust against a
#: single noisy-neighbour probe without taking the optimistic minimum).
SCORE_PROBES = 5

#: Probe spread below this fraction is normal scheduler noise; only a
#: spread above it widens the regression-gate tolerance.
SPREAD_ALLOWANCE = 0.05

#: Cap on the extra tolerance a noisy machine can buy: a wildly
#: unstable scorer must not be able to mask an arbitrary regression.
SPREAD_WIDENING_CAP = 0.25


def machine_score_probes(n: int = SCORE_PROBES) -> List[float]:
    """``n`` independent machine-speed probes (each in ops/sec).

    One probe times a fixed mix of pure-Python arithmetic and a numpy
    PCG64 draw — roughly the instruction mix of the simulator.
    Deliberately does not import anything from ``repro`` so kernel
    optimizations cannot inflate it.
    """
    rng = np.random.default_rng(0)
    probes: List[float] = []
    for _ in range(max(1, n)):
        t0 = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        rng.standard_normal(100_000)
        probes.append(300_000 / (time.perf_counter() - t0))
    return probes


def probe_spread(probes: List[float]) -> float:
    """Relative probe spread: ``(max - min) / median``.

    The regression gate reads this as a machine-stability gauge — a
    loaded CI runner shows a wide spread, and only then is extra
    tolerance warranted."""
    if not probes:
        return 0.0
    med = sorted(probes)[len(probes) // 2]
    return (max(probes) - min(probes)) / med if med > 0 else 0.0


def machine_score(probes: Optional[List[float]] = None) -> float:
    """The machine-speed yardstick: median of :data:`SCORE_PROBES`
    probes (higher = faster).  Pass precomputed ``probes`` to avoid
    re-timing."""
    if probes is None:
        probes = machine_score_probes()
    return sorted(probes)[len(probes) // 2]


def run_suite(
    quick: bool = True,
    repeats: int = 3,
    scenarios: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Run the selected scenarios, keeping each scenario's best of
    ``repeats`` timings (minimum wall time — standard practice for
    microbenchmarks, as the minimum is the least noisy estimator)."""
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIO_FNS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; choose from {SCENARIOS}")
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        fn = SCENARIO_FNS[name]
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            run = fn(quick)
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        assert best is not None
        wall = best["wall_s"] or 1e-12
        best["events_per_s"] = best["events"] / wall
        best["messages_per_s"] = best["messages"] / wall
        best["repeats"] = max(1, repeats)
        results[name] = best
    return results


def write_report(
    results: Dict[str, Dict[str, float]],
    mode: str,
    root: str,
    score: Optional[float] = None,
    stamp: Optional[str] = None,
    out: Optional[str] = None,
    spread: Optional[float] = None,
) -> str:
    """Write a benchmark report; returns the path.

    By default the report lands in ``<root>/benchmarks/results/`` as
    ``BENCH_<stamp>.json`` (the directory is created on demand) so
    repeated runs stop accumulating files at the repository root.
    ``out`` overrides the destination entirely: a directory (report gets
    the stamped name inside it) or an exact file path.
    """
    stamp = stamp or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    if score is None:
        probes = machine_score_probes()
        score = machine_score(probes)
        if spread is None:
            spread = probe_spread(probes)
    report = {
        "stamp": stamp,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine_score": score,
        "machine_score_spread": round(spread, 4) if spread is not None else None,
        "scenarios": results,
    }
    if out is None:
        directory = os.path.join(root, RESULTS_DIR)
        path = os.path.join(directory, f"BENCH_{stamp}.json")
    elif os.path.isdir(out) or out.endswith(os.sep):
        directory = out
        path = os.path.join(out, f"BENCH_{stamp}.json")
    else:
        directory = os.path.dirname(out) or "."
        path = out
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def latest_bench_file(root: str, exclude: Optional[str] = None) -> Optional[str]:
    """Newest committed ``BENCH_*.json`` by stamp, or None.

    Scans ``benchmarks/results/`` plus the repository root (where early
    reports lived); newest is decided by the stamped filename, which
    sorts chronologically regardless of directory."""
    paths = glob.glob(os.path.join(root, RESULTS_DIR, "BENCH_*.json"))
    paths += glob.glob(os.path.join(root, "BENCH_*.json"))
    if exclude is not None:
        paths = [p for p in paths if os.path.abspath(p) != os.path.abspath(exclude)]
    paths.sort(key=os.path.basename)
    return paths[-1] if paths else None


def history_rows(root: str) -> List[dict]:
    """Every committed report, stamp-ordered (oldest first).

    Scans the same places as :func:`latest_bench_file`; each returned
    report dict gains a ``path`` key."""
    paths = glob.glob(os.path.join(root, RESULTS_DIR, "BENCH_*.json"))
    paths += glob.glob(os.path.join(root, "BENCH_*.json"))
    reports = []
    for path in sorted(paths, key=os.path.basename):
        report = load_report(path)
        report["path"] = path
        reports.append(report)
    return reports


def format_history(reports: List[dict],
                   threshold: float = DEFAULT_THRESHOLD) -> str:
    """The repo's performance trajectory as one table.

    One row per scenario, one column per committed report (stamp-
    ordered), cells in raw events/s.  A ``!`` flags a cell whose
    *machine-normalized* throughput dropped more than ``threshold``
    versus the previous report carrying that scenario — the same
    comparison the regression gate makes, applied along the whole
    trajectory.  Wall-clock-only scenarios (``events == 0``) are
    omitted."""
    if not reports:
        return "(no committed BENCH_*.json reports)"
    names: List[str] = []
    for report in reports:
        for name in report.get("scenarios", {}):
            if name not in names:
                names.append(name)
    names = [n for n in names
             if any(r.get("scenarios", {}).get(n, {}).get("events")
                    for r in reports)]
    width = max(len(n) for n in names) if names else 8
    col = 12
    lines = ["# events/s per committed report (! = normalized drop "
             f"> {threshold:.0%} vs previous)"]
    for i, report in enumerate(reports):
        score = report.get("machine_score")
        lines.append(
            f"#  [{i}] {os.path.basename(report['path'])}  mode={report.get('mode')}  "
            f"machine_score={score:,.0f}" if score else
            f"#  [{i}] {os.path.basename(report['path'])}  mode={report.get('mode')}"
        )
    header = f"{'scenario':<{width}}" + "".join(
        f"  {f'[{i}]':>{col}}" for i in range(len(reports))
    )
    lines += [header, "-" * len(header)]
    for name in names:
        cells = [f"{name:<{width}}"]
        prev_norm: Optional[float] = None
        for report in reports:
            entry = report.get("scenarios", {}).get(name)
            if not entry or not entry.get("events"):
                cells.append(f"  {'-':>{col}}")
                continue
            eps = entry["events_per_s"]
            score = report.get("machine_score")
            norm = eps / score if score else eps
            flag = ""
            if prev_norm and norm < prev_norm * (1.0 - threshold):
                flag = "!"
            prev_norm = norm
            cells.append(f"  {f'{eps:,.0f}{flag}':>{col}}")
        lines.append("".join(cells))
    return "\n".join(lines)


def check_memory_budget(results: Dict[str, Dict[str, float]]) -> List[str]:
    """Enforce the scale-out memory gauge; return failure messages.

    Scenarios that carry a ``peak_rss_mb`` gauge (the ``fig4_twotier_*``
    scale-out runs) also declare their ``mem_budget_mb``; exceeding it
    means the O(N)-memory path regressed to a quadratic structure
    somewhere.  Unlike the events/sec gate this needs no baseline — the
    budget is absolute (acceptance: 5k nodes under 2 GB)."""
    failures: List[str] = []
    for name, r in results.items():
        peak = r.get("peak_rss_mb")
        budget = r.get("mem_budget_mb")
        if peak is None or budget is None:
            continue
        if peak > budget:
            failures.append(
                f"{name}: peak RSS {peak:,.1f} MB exceeds the "
                f"{budget:,.0f} MB budget"
            )
    return failures


def check_regression(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Compare events/sec per scenario; return failure messages.

    Throughputs are normalized by each report's ``machine_score`` when both
    carry one, so a slower CI runner does not read as a kernel regression.
    Scenarios present in only one report are skipped (the suite may grow).

    When either report records a ``machine_score_spread`` above
    :data:`SPREAD_ALLOWANCE` — the probes disagreed, i.e. the machine
    was unstable at measurement time — the tolerance widens by the
    excess spread, capped at :data:`SPREAD_WIDENING_CAP`.  A stable
    machine gets exactly ``threshold``; instability can never buy more
    than the cap.
    """
    failures: List[str] = []
    base_score = baseline.get("machine_score")
    cur_score = current.get("machine_score")
    normalize = bool(base_score and cur_score)
    spread = max(baseline.get("machine_score_spread") or 0.0,
                 current.get("machine_score_spread") or 0.0)
    widening = min(max(0.0, spread - SPREAD_ALLOWANCE), SPREAD_WIDENING_CAP)
    effective = threshold + widening
    for name, base in baseline.get("scenarios", {}).items():
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            continue
        old = base["events_per_s"]
        new = cur["events_per_s"]
        if normalize:
            old /= base_score
            new /= cur_score
        if old <= 0:
            continue
        ratio = new / old
        if ratio < 1.0 - effective:
            detail = (f"threshold {threshold:.0%} widened to {effective:.0%} "
                      f"for probe spread {spread:.1%}"
                      if widening > 0 else f"threshold {threshold:.0%}")
            failures.append(
                f"{name}: events/sec regressed to {ratio:.2f}x of baseline "
                f"({cur['events_per_s']:,.0f} vs {base['events_per_s']:,.0f} "
                f"raw; normalized={normalize}; {detail})"
            )
    return failures
