"""Benchmark harness: timing, persistence and the regression gate.

A *report* is one JSON document::

    {
      "stamp":   "20260807T120000Z",
      "mode":    "quick" | "full",
      "python":  "3.11.7",
      "platform": "...",
      "machine_score": 123456.7,       # repro-independent ops/sec yardstick
      "scenarios": {
        "fig4_composition": {
          "wall_s": ..., "events": ..., "messages": ..., "cs": ...,
          "sim_ms": ..., "events_per_s": ..., "messages_per_s": ...,
          "repeats": 3
        },
        ...
      }
    }

Reports are written as ``benchmarks/results/BENCH_<stamp>.json`` and are
meant to be committed: the sequence of files is the performance
trajectory of the repo.  (Early reports lived at the repository root;
:func:`latest_bench_file` still scans both places.)

The regression gate compares events/sec per scenario between two reports.
Because CI runners and developer machines differ, the comparison is
*normalized* by :func:`machine_score` — a fixed pure-Python/numpy workload
measured at report time that does **not** exercise any ``repro`` code, so
it moves with the machine, not with the kernel under test.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .scenarios import SCENARIO_FNS

__all__ = [
    "SCENARIOS",
    "machine_score",
    "run_suite",
    "write_report",
    "load_report",
    "latest_bench_file",
    "check_regression",
    "check_memory_budget",
]

SCENARIOS: Tuple[str, ...] = tuple(SCENARIO_FNS)

#: Repository-relative directory where reports accumulate.
RESULTS_DIR = os.path.join("benchmarks", "results")

#: events/sec comparisons within this fraction of the baseline pass.
DEFAULT_THRESHOLD = 0.20


def machine_score() -> float:
    """A repro-independent machine-speed yardstick (higher = faster).

    Times a fixed mix of pure-Python arithmetic and a numpy PCG64 draw —
    roughly the instruction mix of the simulator — and returns ops/sec.
    Deliberately does not import anything from ``repro`` so kernel
    optimizations cannot inflate it.
    """
    best = float("inf")
    rng = np.random.default_rng(0)
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        rng.standard_normal(100_000)
        best = min(best, time.perf_counter() - t0)
    return 300_000 / best


def run_suite(
    quick: bool = True,
    repeats: int = 3,
    scenarios: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Run the selected scenarios, keeping each scenario's best of
    ``repeats`` timings (minimum wall time — standard practice for
    microbenchmarks, as the minimum is the least noisy estimator)."""
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIO_FNS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; choose from {SCENARIOS}")
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        fn = SCENARIO_FNS[name]
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            run = fn(quick)
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        assert best is not None
        wall = best["wall_s"] or 1e-12
        best["events_per_s"] = best["events"] / wall
        best["messages_per_s"] = best["messages"] / wall
        best["repeats"] = max(1, repeats)
        results[name] = best
    return results


def write_report(
    results: Dict[str, Dict[str, float]],
    mode: str,
    root: str,
    score: Optional[float] = None,
    stamp: Optional[str] = None,
    out: Optional[str] = None,
) -> str:
    """Write a benchmark report; returns the path.

    By default the report lands in ``<root>/benchmarks/results/`` as
    ``BENCH_<stamp>.json`` (the directory is created on demand) so
    repeated runs stop accumulating files at the repository root.
    ``out`` overrides the destination entirely: a directory (report gets
    the stamped name inside it) or an exact file path.
    """
    stamp = stamp or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    report = {
        "stamp": stamp,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine_score": machine_score() if score is None else score,
        "scenarios": results,
    }
    if out is None:
        directory = os.path.join(root, RESULTS_DIR)
        path = os.path.join(directory, f"BENCH_{stamp}.json")
    elif os.path.isdir(out) or out.endswith(os.sep):
        directory = out
        path = os.path.join(out, f"BENCH_{stamp}.json")
    else:
        directory = os.path.dirname(out) or "."
        path = out
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def latest_bench_file(root: str, exclude: Optional[str] = None) -> Optional[str]:
    """Newest committed ``BENCH_*.json`` by stamp, or None.

    Scans ``benchmarks/results/`` plus the repository root (where early
    reports lived); newest is decided by the stamped filename, which
    sorts chronologically regardless of directory."""
    paths = glob.glob(os.path.join(root, RESULTS_DIR, "BENCH_*.json"))
    paths += glob.glob(os.path.join(root, "BENCH_*.json"))
    if exclude is not None:
        paths = [p for p in paths if os.path.abspath(p) != os.path.abspath(exclude)]
    paths.sort(key=os.path.basename)
    return paths[-1] if paths else None


def check_memory_budget(results: Dict[str, Dict[str, float]]) -> List[str]:
    """Enforce the scale-out memory gauge; return failure messages.

    Scenarios that carry a ``peak_rss_mb`` gauge (the ``fig4_twotier_*``
    scale-out runs) also declare their ``mem_budget_mb``; exceeding it
    means the O(N)-memory path regressed to a quadratic structure
    somewhere.  Unlike the events/sec gate this needs no baseline — the
    budget is absolute (acceptance: 5k nodes under 2 GB)."""
    failures: List[str] = []
    for name, r in results.items():
        peak = r.get("peak_rss_mb")
        budget = r.get("mem_budget_mb")
        if peak is None or budget is None:
            continue
        if peak > budget:
            failures.append(
                f"{name}: peak RSS {peak:,.1f} MB exceeds the "
                f"{budget:,.0f} MB budget"
            )
    return failures


def check_regression(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Compare events/sec per scenario; return failure messages.

    Throughputs are normalized by each report's ``machine_score`` when both
    carry one, so a slower CI runner does not read as a kernel regression.
    Scenarios present in only one report are skipped (the suite may grow).
    """
    failures: List[str] = []
    base_score = baseline.get("machine_score")
    cur_score = current.get("machine_score")
    normalize = bool(base_score and cur_score)
    for name, base in baseline.get("scenarios", {}).items():
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            continue
        old = base["events_per_s"]
        new = cur["events_per_s"]
        if normalize:
            old /= base_score
            new /= cur_score
        if old <= 0:
            continue
        ratio = new / old
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: events/sec regressed to {ratio:.2f}x of baseline "
                f"({cur['events_per_s']:,.0f} vs {base['events_per_s']:,.0f} "
                f"raw; normalized={normalize})"
            )
    return failures
