"""Canonical benchmark scenarios.

Each scenario builds a deterministic simulation, times **only** the
``sim.run()`` hot loop (construction and teardown are excluded), and
returns raw counters.  Scenarios come in a ``quick`` flavour (seconds, used
by CI and the regression gate) and a full flavour (paper scale).

The scenarios are chosen to stress complementary paths:

* ``kernel_spin``      — pure calendar-queue churn, no network, no tracing:
                         the kernel's floor.
* ``fig4_composition`` — the paper's Fig. 4 workload (Naimi/Naimi
                         composition on the 9-site Grid'5000 matrix): the
                         canonical end-to-end microbench the acceptance
                         speedup is measured on.
* ``flat_suzuki``      — flat Suzuki-Kasami broadcast: message-heavy,
                         stresses the network send/deliver path.
* ``crash_recovery``   — coordinator crash + failover under the recovery
                         layer: stresses timer cancellation (heartbeat
                         re-arming) and the heap-compaction path.
* ``fig4_twotier_1k`` / ``fig4_twotier_5k`` — fig4-style compositions on
                         1000- and 5000-node two-tier grids: the O(N)-
                         memory scale-out path (block latency tables,
                         delivery batching, calendar queue, bounded
                         metrics).  They carry a ``peak_rss_mb`` gauge
                         asserted against ``mem_budget_mb`` (2 GB) by
                         the bench driver.
* ``fig4_composition_horizon`` / ``fig4_twotier_1k_horizon`` /
  ``fig4_twotier_5k_horizon`` — the same workloads through the
  conservative lookahead-window scheduler
  (:mod:`repro.sim.horizon`); the bench driver asserts the horizon
  digests are bit-identical to their serial twins.
* ``fig4_sweep_no_cache`` / ``fig4_sweep_cold_cache`` /
  ``fig4_sweep_warm_cache`` — the same small Fig. 4 ρ-sweep run without a
                         cache, against an empty cache (measures the
                         store's write-path overhead) and against a
                         pre-populated one (measures the hit path; the
                         acceptance criterion is warm ≥ 10× faster than
                         cold).  Wall-clock only: ``events`` is 0 so the
                         events/sec regression gate skips them.
"""

from __future__ import annotations

import resource
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.cache import ExperimentCache
from repro.core import Composition, CompositionRecovery, RecoveryConfig
from repro.experiments import ExperimentConfig
from repro.experiments.runner import _app_cs_filter, build_platform, build_system
from repro.metrics import BoundedMetricsCollector
from repro.net import CrashController, Network, TwoTierLatency, uniform_topology
from repro.net.topology import LARGE_GRID_NODES
from repro.sim import Simulator
from repro.verify.safety import MutualExclusionChecker
from repro.workload import deploy_workload

__all__ = ["SCENARIO_FNS"]


def _timed_run(sim: Simulator, until: float) -> float:
    t0 = time.perf_counter()
    sim.run(until=until)
    return time.perf_counter() - t0


def _timed_horizon_run(sim: Simulator, net, latency, topology,
                       until: float) -> float:
    """Time a run through the conservative horizon scheduler.

    Benchmarks assert rather than fall back: a scenario named
    ``*_horizon`` that silently ran serial would report a meaningless
    speedup."""
    from repro.sim import HorizonScheduler, derive_plan

    reason = HorizonScheduler.refusal(sim, net)
    assert reason is None, f"horizon refused in a horizon scenario: {reason}"
    plan = derive_plan(latency, topology)
    assert plan is not None, "no lookahead plan in a horizon scenario"
    scheduler = HorizonScheduler(sim, net, plan)
    t0 = time.perf_counter()
    scheduler.run(until=until)
    return time.perf_counter() - t0


def _build_experiment(config: ExperimentConfig):
    """Construct a ``run_experiment``-shaped simulation, ready to run."""
    config.validate()
    sim = Simulator(seed=config.seed, queue=config.queue)
    topology, latency = build_platform(config)
    if config.backend == "compiled":
        from repro.compile import CompiledNetwork

        net = CompiledNetwork(sim, topology, latency, fifo=config.fifo,
                              batch=config.batch_delivery)
    else:
        net = Network(sim, topology, latency, fifo=config.fifo,
                      batch=config.batch_delivery)
    system = build_system(sim, net, topology, config)
    MutualExclusionChecker(sim.trace, include=_app_cs_filter(system.app_nodes))

    remaining = {"count": len(system.app_nodes)}

    def app_done(_app) -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            sim.stop()

    collector_arg = None
    if config.n_apps >= LARGE_GRID_NODES:
        collector_arg = BoundedMetricsCollector(seed=config.seed)
    apps, collector = deploy_workload(
        system,
        alpha_ms=config.alpha_ms,
        rho=config.rho,
        n_cs=config.n_cs,
        distribution=config.distribution,
        collector=collector_arg,
        on_done=app_done,
    )
    if config.backend == "compiled":
        from repro.compile import compile_system

        compile_system(net, system, apps)
    return sim, net, apps, collector, topology, latency


def _instrumented_experiment(config: ExperimentConfig) -> Dict[str, float]:
    """One ``run_experiment``-shaped run that exposes kernel counters."""
    sim, net, apps, collector, topology, latency = _build_experiment(config)
    until = config.default_deadline()
    if config.horizon:
        wall = _timed_horizon_run(sim, net, latency, topology, until)
    else:
        wall = _timed_run(sim, until)
    assert all(a.done for a in apps), "benchmark run did not complete"
    return {
        "wall_s": wall,
        "events": sim.events_fired,
        "messages": net.stats.total,
        "cs": collector.cs_count,
        "sim_ms": sim.now,
    }


def _digest_of(config: ExperimentConfig) -> str:
    """Digest of the scenario's observable event stream.

    Runs an *untimed* replica: a :class:`RunDigest` subscribes to the
    ``send`` kind, which would tax the timed loop of the measured run
    (and, on the compiled backend, tax it differently than the
    interpreted one — the very comparison the digest is meant to
    anchor).  Honors ``config.horizon`` so the ``*_horizon`` scenarios
    hash the window-batched drain itself, not a serial stand-in."""
    from repro.verify import RunDigest

    sim, net, apps, _collector, topology, latency = _build_experiment(config)
    digest = RunDigest(sim)
    until = config.default_deadline()
    if config.horizon:
        _timed_horizon_run(sim, net, latency, topology, until)
    else:
        sim.run(until=until)
    assert all(a.done for a in apps), "digest run did not complete"
    return digest.hexdigest


# --------------------------------------------------------------------- #
# scenarios
# --------------------------------------------------------------------- #
def kernel_spin(quick: bool) -> Dict[str, float]:
    """Pure calendar churn: schedule/fire cost with an empty payload.

    256 concurrent self-rescheduling chains keep the calendar populated
    (a 1-deep heap would be degenerate: real runs hold hundreds of
    pending timers/deliveries, and heap depth is what the pop/push path
    is paid on)."""
    n_events = 150_000 if quick else 1_000_000
    chains = 256
    sim = Simulator(seed=0)
    state = {"left": n_events}

    def tick() -> None:
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(1.0, tick)

    for i in range(chains):
        sim.schedule(1.0 + i / chains, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": sim.events_fired,
        "messages": 0,
        "cs": 0,
        "sim_ms": sim.now,
    }


def _fig4_config(quick: bool, backend: str = "interpreted") -> ExperimentConfig:
    apps = 6 if quick else 20
    n_cs = 15 if quick else 100
    return ExperimentConfig(
        system="composition",
        intra="naimi",
        inter="naimi",
        platform="grid5000",
        n_clusters=9,
        apps_per_cluster=apps,
        n_cs=n_cs,
        rho=float(9 * apps),
        seed=1,
        backend=backend,
    )


def fig4_composition(quick: bool) -> Dict[str, float]:
    """The acceptance microbench: Naimi/Naimi composition, Fig. 4 set-up."""
    return _instrumented_experiment(_fig4_config(quick))


def _fig4_backend(quick: bool, backend: str) -> Dict[str, float]:
    """One backend leg of the tracked pair: the measured run plus the
    event-stream digest CI asserts equal across the two legs."""
    config = _fig4_config(quick, backend)
    result = _instrumented_experiment(config)
    result["digest"] = _digest_of(config)
    return result


def fig4_composition_interpreted(quick: bool) -> Dict[str, float]:
    """Backend-equivalence pair, interpreted leg (same workload as
    ``fig4_composition``; carries a digest for the CI equality gate)."""
    return _fig4_backend(quick, "interpreted")


def fig4_composition_compiled(quick: bool) -> Dict[str, float]:
    """Backend-equivalence pair, compiled leg: table-driven dispatch.

    The acceptance speedup (compiled ≥ 3x the seed kernel, toward the
    ROADMAP 10x) is read off this scenario's normalized events/s against
    the committed baseline's ``fig4_composition``."""
    return _fig4_backend(quick, "compiled")


def fig4_composition_horizon(quick: bool) -> Dict[str, float]:
    """Horizon leg: compiled dispatch + conservative lookahead windows.

    The bench driver asserts this scenario's digest equals the
    interpreted serial twin's (``fig4_composition_interpreted``): the
    window-batched drain must preserve the exact serial event order."""
    config = _fig4_config(quick, "compiled").with_(horizon=True)
    result = _instrumented_experiment(config)
    result["digest"] = _digest_of(config)
    return result


def flat_suzuki(quick: bool) -> Dict[str, float]:
    """Flat Suzuki-Kasami: broadcast requests make this message-bound."""
    apps = 5 if quick else 20
    n_cs = 8 if quick else 50
    config = ExperimentConfig(
        system="flat",
        intra="suzuki",
        platform="grid5000",
        n_clusters=9,
        apps_per_cluster=apps,
        n_cs=n_cs,
        rho=float(9 * apps),
        seed=1,
    )
    return _instrumented_experiment(config)


def crash_recovery(quick: bool) -> Dict[str, float]:
    """Coordinator crash + heartbeat-driven failover: timer-cancel heavy."""
    cycles = 4 if quick else 12
    recovery = RecoveryConfig(
        heartbeat_ms=10.0,
        heartbeat_deadline_ms=35.0,
        request_deadline_ms=60.0,
        check_ms=10.0,
    )
    sim = Simulator(seed=11)
    topo = uniform_topology(3, 5)
    crashes = CrashController(sim)
    net = Network(
        sim, topo,
        TwoTierLatency(topo, lan_ms=0.5, wan_ms=10.0, jitter=0.0),
        crashes=crashes,
    )
    comp = Composition(sim, net, topo, intra="naimi", inter="naimi", standbys=1)
    CompositionRecovery(sim, net, crashes, comp, config=recovery)
    served: list = []
    apps = [comp.peer_for(node) for node in comp.app_nodes]

    def drive(peer, hold_ms=2.0, gap_ms=4.0):
        state = {"left": cycles}

        def step_release():
            peer.release_cs()
            state["left"] -= 1
            if state["left"] > 0:
                sim.schedule(gap_ms, peer.request_cs)

        def on_granted():
            served.append(peer.node)
            sim.schedule(hold_ms, step_release)

        peer.on_granted.append(on_granted)
        peer.request_cs()

    sim.schedule_at(0.0, drive, apps[0], 60.0)
    crashes.schedule_crash(20.0, comp.coordinators[0].node)
    for k, peer in enumerate(apps[1:]):
        sim.schedule_at(30.0 + 2 * k, drive, peer)
    wall = _timed_run(sim, 60_000.0)
    expected = len(apps) * cycles
    assert len(served) == expected, (
        f"crash_recovery bench incomplete: {len(served)}/{expected}"
    )
    return {
        "wall_s": wall,
        "events": sim.events_fired,
        "messages": net.stats.total,
        "cs": len(served),
        "sim_ms": sim.now,
    }


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set size in MiB (Linux reports
    ``ru_maxrss`` in KiB).  Monotone over the process, so within one
    bench process it is an *upper bound* on any single scenario's peak —
    exactly the right direction for a memory-budget assertion."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _twotier_config(n_clusters: int, apps_per_cluster: int,
                    n_cs: int) -> ExperimentConfig:
    """A fig4-style Naimi/Naimi composition on the uniform two-tier
    platform, configured for the O(N)-memory scale-out path: compiled
    backend, calendar event queue, delivery batching forced on (it would
    auto-enable anyway above :data:`LARGE_GRID_NODES` nodes)."""
    n_apps = n_clusters * apps_per_cluster
    return ExperimentConfig(
        system="composition",
        intra="naimi",
        inter="naimi",
        platform="two-tier",
        n_clusters=n_clusters,
        apps_per_cluster=apps_per_cluster,
        n_cs=n_cs,
        rho=float(n_apps),
        seed=1,
        backend="compiled",
        queue="calendar",
        batch_delivery=True,
    )


def _scaleout_run(config: ExperimentConfig) -> Dict[str, float]:
    """One instrumented scale-out run plus the memory gauge.

    ``peak_rss_mb``/``mem_budget_mb`` ride along in the result; the
    bench driver fails the run when the gauge exceeds the budget
    (acceptance: a 5k-node run stays under 2 GB)."""
    result = _instrumented_experiment(config)
    result["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    result["mem_budget_mb"] = 2048.0
    return result


def fig4_twotier_1k(quick: bool) -> Dict[str, float]:
    """Scale-out smoke: 20 clusters x (49 apps + 1 coordinator) = 1000
    nodes on the two-tier platform — the first size where the block
    latency tables, delivery batching and the bounded collector all
    engage.  CI runs this one (quick) under the regression gate.
    Carries a digest: the serial twin of ``fig4_twotier_1k_horizon``."""
    n_cs = 3 if quick else 10
    config = _twotier_config(20, 49, n_cs)
    result = _scaleout_run(config)
    result["digest"] = _digest_of(config)
    return result


def fig4_twotier_1k_horizon(quick: bool) -> Dict[str, float]:
    """The 1k scale-out run through the horizon scheduler.  Digest must
    equal ``fig4_twotier_1k``'s — window-batched calendar draining
    (``pop_window``/``push_many``) preserves the serial order."""
    n_cs = 3 if quick else 10
    config = _twotier_config(20, 49, n_cs).with_(horizon=True)
    result = _scaleout_run(config)
    result["digest"] = _digest_of(config)
    return result


def fig4_twotier_5k(quick: bool) -> Dict[str, float]:
    """Scale-out acceptance: 50 clusters x (99 apps + 1 coordinator) =
    5000 nodes.  The acceptance criteria (>= 100k events/s, peak RSS
    < 2 GB) are read off this scenario."""
    n_cs = 2 if quick else 5
    return _scaleout_run(_twotier_config(50, 99, n_cs))


def fig4_twotier_5k_horizon(quick: bool) -> Dict[str, float]:
    """The 5k acceptance run through the horizon scheduler (order
    equality for the horizon path is digest-pinned at the 1k size; a
    5k digest replica would double the longest scenario for no extra
    signal)."""
    n_cs = 2 if quick else 5
    return _scaleout_run(_twotier_config(50, 99, n_cs).with_(horizon=True))


def _fig4_sweep_configs(quick: bool) -> List[ExperimentConfig]:
    """A small version of the Fig. 4 ρ/N sweep (one seed per cell)."""
    apps = 3 if quick else 20
    n_cs = 6 if quick else 100
    n_apps = 9 * apps
    return [
        ExperimentConfig(
            system="composition",
            intra="naimi",
            inter="naimi",
            platform="grid5000",
            n_clusters=9,
            apps_per_cluster=apps,
            n_cs=n_cs,
            rho=rho_over_n * n_apps,
            seed=1,
        )
        for rho_over_n in (0.25, 0.5, 1.0, 2.0)
    ]


def _timed_sweep(
    configs: List[ExperimentConfig], cache: Optional[ExperimentCache]
) -> Dict[str, float]:
    """Time one serial pass of the sweep through the cache-aware runner.

    Serial (``max_workers=1``) so the measurement is the cache code path
    itself, not process-pool scheduling.  ``events`` is 0: these are
    wall-clock scenarios and must stay invisible to the events/sec gate.
    """
    from repro.experiments.parallel import run_configs_cached

    t0 = time.perf_counter()
    results = run_configs_cached(configs, cache, max_workers=1)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": 0,
        "messages": sum(r.total_messages for r in results),
        "cs": sum(r.cs_count for r in results),
        "sim_ms": sum(r.sim_time_ms for r in results),
    }


def fig4_sweep_no_cache(quick: bool) -> Dict[str, float]:
    """Baseline: the ρ-sweep with caching off entirely."""
    return _timed_sweep(_fig4_sweep_configs(quick), None)


def fig4_sweep_cold_cache(quick: bool) -> Dict[str, float]:
    """Every cell misses: execution plus the store's write path."""
    configs = _fig4_sweep_configs(quick)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        return _timed_sweep(configs, ExperimentCache(cache_dir=tmp))


def fig4_sweep_warm_cache(quick: bool) -> Dict[str, float]:
    """Every cell hits: the read path only (population is untimed)."""
    configs = _fig4_sweep_configs(quick)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        from repro.experiments.parallel import run_configs_cached

        run_configs_cached(configs, ExperimentCache(cache_dir=tmp),
                           max_workers=1)
        return _timed_sweep(configs, ExperimentCache(cache_dir=tmp))


#: name -> scenario callable taking ``quick`` and returning raw counters.
SCENARIO_FNS: Dict[str, Callable[[bool], Dict[str, float]]] = {
    "kernel_spin": kernel_spin,
    "fig4_composition": fig4_composition,
    "fig4_composition_interpreted": fig4_composition_interpreted,
    "fig4_composition_compiled": fig4_composition_compiled,
    "fig4_composition_horizon": fig4_composition_horizon,
    "flat_suzuki": flat_suzuki,
    "crash_recovery": crash_recovery,
    "fig4_twotier_1k": fig4_twotier_1k,
    "fig4_twotier_1k_horizon": fig4_twotier_1k_horizon,
    "fig4_twotier_5k": fig4_twotier_5k,
    "fig4_twotier_5k_horizon": fig4_twotier_5k_horizon,
    "fig4_sweep_no_cache": fig4_sweep_no_cache,
    "fig4_sweep_cold_cache": fig4_sweep_cold_cache,
    "fig4_sweep_warm_cache": fig4_sweep_warm_cache,
}
