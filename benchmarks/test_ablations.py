"""Ablations over the design choices DESIGN.md §6 calls out.

* **Delivery order** — the paper's implementation runs over UDP
  (unordered); FIFO links are an idealisation.  The algorithms tolerate
  both; we quantify the effect on the obtaining time spread.
* **Latency jitter** — Fig 3 reports *average* RTTs; real WAN latency
  varies.  Jitter should move σ, not the qualitative ordering.
* **Inter-token home cluster** — with a heterogeneous matrix, where the
  inter token starts could bias early measurements; steady-state means
  must be insensitive to it.
* **Multi-level hierarchy (§6)** — a zone level shields the top-level
  algorithm from intra-zone handovers.
"""

from conftest import run_once
from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import format_table

BASE = ExperimentConfig(
    n_clusters=6, apps_per_cluster=3, n_cs=12, rho=18.0,  # rho/N = 1
    intra="naimi", inter="naimi",
)


def test_ablation_fifo_vs_udp_ordering(benchmark):
    def run_pair():
        udp = run_experiment(BASE.with_(jitter=0.4, fifo=False))
        fifo = run_experiment(BASE.with_(jitter=0.4, fifo=True))
        return udp, fifo

    udp, fifo = run_once(benchmark, run_pair)
    print("\n" + format_table(
        ["ordering", "obtain mean (ms)", "obtain std (ms)", "msgs/CS"],
        [
            ("UDP-like", udp.obtaining.mean, udp.obtaining.std, udp.messages_per_cs),
            ("per-flow FIFO", fifo.obtaining.mean, fifo.obtaining.std, fifo.messages_per_cs),
        ],
    ))
    # Both complete identically sized workloads; means stay comparable.
    assert udp.cs_count == fifo.cs_count
    assert 0.5 < udp.obtaining.mean / fifo.obtaining.mean < 2.0


def test_ablation_latency_jitter(benchmark):
    def run_pair():
        crisp = run_experiment(BASE)
        noisy = run_experiment(BASE.with_(jitter=0.5))
        return crisp, noisy

    crisp, noisy = run_once(benchmark, run_pair)
    print("\n" + format_table(
        ["latency", "obtain mean (ms)", "obtain std (ms)"],
        [
            ("deterministic", crisp.obtaining.mean, crisp.obtaining.std),
            ("jitter=0.5", noisy.obtaining.mean, noisy.obtaining.std),
        ],
    ))
    # Jitter is mean-preserving by construction: means stay close, and
    # the workload still completes safely.
    assert 0.6 < noisy.obtaining.mean / crisp.obtaining.mean < 1.6


def test_ablation_inter_token_home_cluster(benchmark):
    """Start the inter token at different clusters of the heterogeneous
    Grid'5000 matrix: steady-state means must not depend on it."""
    from repro.core.composition import Composition
    from repro.experiments.runner import build_platform
    from repro.net import Network
    from repro.sim import Simulator
    from repro.workload import deploy_workload

    def run_home(home: int) -> float:
        cfg = BASE
        sim = Simulator(seed=7)
        topo, latency = build_platform(cfg)
        net = Network(sim, topo, latency)
        comp = Composition(sim, net, topo, intra="naimi", inter="naimi",
                           inter_initial_cluster=home)
        apps, collector = deploy_workload(
            comp, alpha_ms=cfg.alpha_ms, rho=cfg.rho, n_cs=cfg.n_cs
        )
        sim.run(until=10_000_000.0)
        assert all(a.done for a in apps)
        return collector.obtaining_stats().mean

    means = run_once(benchmark, lambda: [run_home(h) for h in (0, 3, 5)])
    print("\nmean obtaining time by inter-token home cluster:",
          [f"{m:.1f}ms" for m in means])
    assert max(means) / min(means) < 1.25


def test_ablation_multilevel_shields_top_level(benchmark):
    """§6: adding a zone level keeps most token handovers below the top
    algorithm when traffic is zone-local."""
    from repro.core import MultilevelComposition
    from repro.net import Network, TwoTierLatency, uniform_topology
    from repro.sim import Simulator
    from repro.workload import deploy_workload

    def top_traffic(hierarchy, algorithms):
        sim = Simulator(seed=3)
        topo = uniform_topology(4, 5)
        net = Network(sim, topo, TwoTierLatency(topo, lan_ms=0.1, wan_ms=8.0))
        ml = MultilevelComposition(sim, net, topo, hierarchy, algorithms)
        apps, _ = deploy_workload(ml, alpha_ms=4.0, rho=6.0, n_cs=8)
        sim.run(until=10_000_000.0)
        assert all(a.done for a in apps)
        prefix = f"l{ml.depth}/"
        return sum(c for p, c in net.stats.by_port.items()
                   if p.startswith(prefix))

    def run_pair():
        two = top_traffic([0, 1, 2, 3], ["naimi", "naimi"])
        three = top_traffic([[0, 1], [2, 3]], ["naimi", "naimi", "naimi"])
        return two, three

    two, three = run_once(benchmark, run_pair)
    print(f"\ntop-level messages: 2-level={two}, 3-level={three}")
    assert three < two
