"""§6 future work: the dynamic/adaptive composition.

The paper proposes (but does not build) a composition whose inter
algorithm is replaced at runtime "according to the application
behavior".  This bench runs a workload whose parallelism *drifts* —
heavy contention first, sparse requests later — and checks that the
adaptive controller tracks it through the §4.7 choice table, ending on
the algorithm the static analysis would pick, while preserving safety
and liveness across every switch.
"""

from conftest import run_once
from repro.core import AdaptiveComposition
from repro.metrics import MetricsCollector, format_table
from repro.net import Network, TwoTierLatency, uniform_topology
from repro.sim import Simulator
from repro.verify import MutualExclusionChecker
from repro.workload import ApplicationProcess


def _drifting_workload():
    """Phase 1: beta == alpha (saturation). Phase 2: beta >> alpha."""
    sim = Simulator(seed=42)
    topo = uniform_topology(4, 4)
    net = Network(sim, topo, TwoTierLatency(topo, lan_ms=0.1, wan_ms=5.0))
    ac = AdaptiveComposition(
        sim, net, topo, intra="naimi", initial_inter="naimi",
        sample_every_ms=5.0, decide_every_samples=5, hysteresis=2,
    )
    app_set = frozenset(ac.app_nodes)
    safety = MutualExclusionChecker(
        sim.trace,
        include=lambda rec: rec.node in app_set and rec.port.startswith("intra"),
    )
    collector = MetricsCollector()
    apps = []
    for node in ac.app_nodes:
        # Phase 1: 25 contended CS with beta = alpha.
        apps.append(ApplicationProcess(
            ac.peer_for(node), topo.cluster_of(node),
            alpha_ms=4.0, beta_ms=4.0, n_cs=25, collector=collector,
        ))
    sim.run(until=3_000.0)
    # Phase 2: sparse requests (beta = 200 alpha), driven by fresh
    # processes on the same peers.
    for node in ac.app_nodes:
        apps.append(ApplicationProcess(
            ac.peer_for(node), topo.cluster_of(node),
            alpha_ms=4.0, beta_ms=800.0, n_cs=5, collector=collector,
            first_request_at=sim.now,
        ))
    sim.run(until=40_000.0)
    return ac, apps, collector, safety


def test_adaptive_tracks_drifting_parallelism(benchmark):
    ac, apps, collector, safety = run_once(benchmark, _drifting_workload)
    rows = [(f"{t:.0f}", old, new) for t, old, new in ac.switches]
    print("\nswitch history:")
    print(format_table(["t (ms)", "from", "to"], rows))

    # Phase 1 saturation: the first switch is to martin (the paper's
    # low-parallelism choice).
    assert ac.switches, "controller never switched"
    assert ac.switches[0][2] == "martin", ac.switches
    # Phase 2 sparse requests: the controller ends on suzuki (the
    # high-parallelism choice).
    assert ac.inter_name == "suzuki", ac.switches
    # Correctness preserved across all epoch changes.
    assert all(a.done for a in apps)
    safety.assert_quiescent()
    assert safety.total_entries == collector.cs_count
