"""Acceptance benchmarks for the experiment cache.

The tracked scenarios in :mod:`benchmarks.perf.scenarios` record the
trajectory; these tests assert the two cache acceptance criteria hold
on the machine at hand:

* a warm-cache Fig. 4 ρ-sweep is at least 10x faster than a cold one;
* a cold cache costs at most a few percent over running with no cache
  at all (best-of-3 on both sides to reject scheduler noise).
"""

from benchmarks.perf.scenarios import SCENARIO_FNS


def _best_of(name: str, repeats: int = 3) -> float:
    return min(SCENARIO_FNS[name](True)["wall_s"] for _ in range(repeats))


def test_warm_sweep_is_at_least_10x_faster_than_cold():
    cold = _best_of("fig4_sweep_cold_cache", repeats=1)
    warm = _best_of("fig4_sweep_warm_cache", repeats=3)
    speedup = cold / warm
    print(f"fig4 sweep: cold {cold:.3f}s, warm {warm:.4f}s "
          f"({speedup:.0f}x)")
    assert speedup >= 10.0, (
        f"warm cache only {speedup:.1f}x faster than cold"
    )


def test_cold_cache_overhead_is_small():
    # Interleaved best-of-5: the sweep itself is only ~100 ms, so
    # back-to-back blocks would measure scheduler drift, not the cache.
    no_cache = float("inf")
    cold = float("inf")
    for _ in range(5):
        no_cache = min(no_cache, SCENARIO_FNS["fig4_sweep_no_cache"](True)["wall_s"])
        cold = min(cold, SCENARIO_FNS["fig4_sweep_cold_cache"](True)["wall_s"])
    overhead = cold / no_cache - 1.0
    print(f"fig4 sweep: no-cache {no_cache:.3f}s, cold {cold:.3f}s "
          f"({overhead:+.1%})")
    assert overhead <= 0.05, (
        f"cold-cache overhead {overhead:.1%} exceeds 5%"
    )
