"""§4.6's fairness argument, quantified.

The paper prefers Naimi-Tréhel as the *intra* algorithm because of its
regularity: its distributed queue serves requests in (approximately)
arrival order, while Suzuki-Kasami's token queue appends pending
requesters in **peer-id order**, ignoring arrival time.  This bench
measures Jain's fairness index over individual obtaining times inside a
single contended cluster and confirms Naimi treats requests more evenly.
"""

import numpy as np

from conftest import run_once
from repro.core import Composition
from repro.metrics import format_table
from repro.metrics.analysis import jain_index
from repro.net import Network, TwoTierLatency, uniform_topology
from repro.sim import Simulator
from repro.workload import deploy_workload

SEEDS = (1, 2, 3, 4, 5)


def _run_cluster(intra: str, seed: int):
    sim = Simulator(seed=seed)
    topo = uniform_topology(1, 9)  # one cluster: pure intra behaviour
    net = Network(sim, topo, TwoTierLatency(topo, lan_ms=0.5, wan_ms=5.0))
    comp = Composition(sim, net, topo, intra=intra, inter="naimi")
    apps, collector = deploy_workload(comp, alpha_ms=5.0, rho=1.0, n_cs=40)
    sim.run()
    assert all(a.done for a in apps)
    times = collector.obtaining_times()
    return jain_index(times), float(np.std(times)), collector.fairness()


def _study():
    out = {}
    for intra in ("naimi", "suzuki", "martin"):
        jains, stds, w2b = [], [], []
        for seed in SEEDS:
            j, s, f = _run_cluster(intra, seed)
            jains.append(j)
            stds.append(s)
            w2b.append(f["worst_over_best"])
        out[intra] = (
            float(np.mean(jains)), float(np.mean(stds)), float(np.mean(w2b))
        )
    return out


def test_naimi_intra_is_fairer_than_suzuki(benchmark):
    study = run_once(benchmark, _study)
    print("\n" + format_table(
        ["intra", "jain(obtaining)", "std (ms)", "worst/best node"],
        [(k, *v) for k, v in study.items()],
        float_fmt="{:.4f}",
    ))
    # Suzuki's id-ordered token queue is measurably less fair and less
    # regular than Naimi's arrival-ordered queue (§4.6).
    assert study["naimi"][0] > study["suzuki"][0]
    assert study["naimi"][1] < study["suzuki"][1]
    # All algorithms remain starvation-free: nobody's mean wait explodes.
    for intra, (_, _, worst_over_best) in study.items():
        assert worst_over_best < 1.5, intra
