"""Figure 3: the Grid'5000 RTT latency table.

Fig 3 is the paper's *input* (measured platform latencies); this bench
verifies the simulated network realises exactly that matrix — each
one-way delivery takes RTT/2 between the right cluster pair — and prints
the realised matrix next to the paper's values.
"""

import numpy as np

from conftest import run_once
from repro.grid import GRID5000_RTT_MS, GRID5000_SITES, grid5000_latency, grid5000_topology
from repro.metrics import format_matrix
from repro.net import Network
from repro.sim import Simulator


def _measure_realised_rtt() -> np.ndarray:
    """Ping-pong one message each way between the first nodes of every
    site pair and report the measured round-trip times."""
    topo = grid5000_topology(nodes_per_cluster=1)
    sim = Simulator(seed=0)
    net = Network(sim, topo, grid5000_latency(topo))
    n = topo.n_clusters
    realised = np.zeros((n, n))

    inbox = {}
    for node in range(n):
        net.register(node, "ping", lambda m, node=node: inbox.__setitem__(
            (m.payload["i"], m.payload["j"], m.payload["leg"]), sim.now
        ))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            net.send(i, j, "ping", "ping", {"i": i, "j": j, "leg": "out"})
            net.send(j, i, "ping", "ping", {"i": i, "j": j, "leg": "back"})
    sim.run()
    for i in range(n):
        for j in range(n):
            if i == j:
                realised[i, j] = GRID5000_RTT_MS[i, j]
                continue
            # out leg i->j uses rtt[i,j]/2; back leg j->i uses rtt[j,i]/2.
            # The *directed* RTT as the paper measures it (from i) is
            # one-way(i->j) + one-way(j->i)... but the table is per
            # direction, so reconstruct from the one-way legs directly.
            out = inbox[(i, j, "out")]
            realised[i, j] = 2 * out  # delivery time == one-way delay
    return realised


def test_fig3_network_realises_grid5000_matrix(benchmark):
    realised = run_once(benchmark, _measure_realised_rtt)
    print("\nFig 3 — realised RTT matrix (ms), one-way x 2:")
    print(format_matrix(GRID5000_SITES, realised))
    assert np.allclose(realised, GRID5000_RTT_MS, rtol=1e-9)


def test_fig3_matrix_latency_hierarchy(benchmark):
    """The property every result depends on: LAN RTTs are orders of
    magnitude below WAN RTTs, and WAN RTTs are heterogeneous."""
    def stats():
        m = GRID5000_RTT_MS
        off = m[~np.eye(9, dtype=bool)]
        return m.diagonal().max(), off.min(), off.max()

    lan_max, wan_min, wan_max = run_once(benchmark, stats)
    print(f"\nLAN RTT <= {lan_max:.3f} ms; WAN RTT in "
          f"[{wan_min:.3f}, {wan_max:.3f}] ms")
    assert lan_max < wan_min / 10
    assert wan_max / wan_min > 5  # heterogeneous WAN
