"""Figure 4: composition evaluation — obtaining time (a) and
inter-cluster sent messages (b) versus ρ, for Naimi-Naimi, Naimi-Martin,
Naimi-Suzuki and the original (flat) Naimi-Tréhel.

Shape assertions follow §4.2-§4.4 (see DESIGN.md §5):

4(a) — obtaining time decreases with ρ; compositions are ≈ equal in the
low band; Naimi-Martin is the worst composition at high ρ, Naimi-Suzuki
the best; the composition beats the flat baseline.

4(b) — flat Naimi is ~constant in ρ; composition counts *increase* with
ρ; Naimi-Naimi < Naimi-Suzuki everywhere; Naimi-Martin is cheapest in
the low band and overtakes Naimi-Naimi in the high band; all
compositions send fewer inter-cluster messages than the flat baseline at
low ρ.
"""

from conftest import run_once
from repro.experiments import fig4a, fig4b


def _lo(data):
    return data.xs.index(min(data.xs))


def _hi(data):
    return data.xs.index(max(data.xs))


def test_fig4a_obtaining_time(benchmark, scale):
    data = run_once(benchmark, fig4a, scale)
    print("\n" + data.to_table())
    s = data.series
    lo, hi = _lo(data), _hi(data)

    # Obtaining time decreases as parallelism grows (fewer waiters).
    for label, ys in s.items():
        assert ys[lo] > ys[hi], f"{label} not decreasing in rho"

    # Low parallelism: "no significant difference" between compositions.
    comps = ["naimi-naimi", "naimi-martin", "naimi-suzuki"]
    low_values = [s[c][lo] for c in comps]
    assert max(low_values) / min(low_values) < 1.35

    # High parallelism: Suzuki inter lowest, Martin inter highest (§4.3).
    assert s["naimi-suzuki"][hi] < s["naimi-naimi"][hi] * 1.05
    assert s["naimi-martin"][hi] > s["naimi-naimi"][hi] * 1.5
    assert s["naimi-martin"][hi] > s["naimi-suzuki"][hi] * 1.5

    # The clustering of requests beats the original algorithm (§4.2).
    assert s["naimi-naimi"][lo] < s["naimi (flat)"][lo]


def test_fig4b_inter_cluster_messages(benchmark, scale):
    data = run_once(benchmark, fig4b, scale)
    print("\n" + data.to_table())
    s = data.series
    lo, hi = _lo(data), _hi(data)

    # Original Naimi: constant behaviour, independent of rho (§4.2).
    flat = s["naimi (flat)"]
    assert max(flat) / min(flat) < 1.5

    # Compositions: message count increases with rho (§4.4).
    for label in ("naimi-naimi", "naimi-martin", "naimi-suzuki"):
        assert s[label][hi] > s[label][lo], f"{label} not increasing"

    # All compositions cheaper than the original at low rho (§4.2).
    for label in ("naimi-naimi", "naimi-martin", "naimi-suzuki"):
        assert s[label][lo] < flat[lo], f"{label} >= flat at low rho"

    # Naimi inter cheaper than Suzuki inter everywhere (§4.4).
    for i in range(len(data.xs)):
        assert s["naimi-naimi"][i] < s["naimi-suzuki"][i]

    # Martin inter: cheapest at low rho, overtakes Naimi at high rho.
    assert s["naimi-martin"][lo] <= s["naimi-naimi"][lo] * 1.1
    assert s["naimi-martin"][hi] > s["naimi-naimi"][hi]
