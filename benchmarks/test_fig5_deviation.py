"""Figure 5: obtaining-time standard deviation (a) and relative
deviation σ_r = σ/mean (b) versus ρ.

Shape assertions follow §4.5:

5(a) — σ is significant relative to the 10 ms CS everywhere (latency
heterogeneity); Naimi-Suzuki has the smallest σ at high ρ; Naimi-Martin
the worst σ in the intermediate/high bands.

5(b) — the flat baseline's σ_r stays below the compositions on average
(its token path is position-independent); every curve grows from the
lowest ρ before stabilising.
"""

from conftest import run_once
from repro.experiments import fig5a, fig5b

COMPS = ("naimi-naimi", "naimi-martin", "naimi-suzuki")


def test_fig5a_std_deviation(benchmark, scale):
    data = run_once(benchmark, fig5a, scale)
    print("\n" + data.to_table())
    s = data.series
    hi = data.xs.index(max(data.xs))

    # sigma is significant compared to the CS time everywhere (§4.5).
    for label, ys in s.items():
        assert min(ys) > 1.0, f"{label} sigma implausibly small"

    # For rho > 3N, Naimi-Suzuki has the smallest sigma (§4.5).
    assert s["naimi-suzuki"][hi] == min(s[c][hi] for c in COMPS)

    # Naimi-Martin: worst absolute deviation in the intermediate band and
    # beyond, "due to its logical ring structure".
    mid_and_up = [i for i, x in enumerate(data.xs) if x >= 2.0]
    worse = sum(
        1 for i in mid_and_up
        if s["naimi-martin"][i] == max(s[c][i] for c in COMPS)
    )
    assert worse >= len(mid_and_up) - 1  # allow one noisy point


def test_fig5b_relative_deviation(benchmark, scale):
    data = run_once(benchmark, fig5b, scale)
    print("\n" + data.to_table())
    s = data.series
    lo = data.xs.index(min(data.xs))

    # sigma_r grows from the lowest rho (request-trip overlap ends, §4.5).
    for label, ys in s.items():
        assert ys[lo] == min(ys), f"{label} sigma_r not minimal at low rho"

    # The original algorithm's relative deviation stays below the
    # compositions on average: its token path does not depend on whether
    # the token happens to sit in the requester's cluster.
    n_points = len(data.xs)
    flat_avg = sum(s["naimi (flat)"]) / n_points
    for comp in COMPS:
        comp_avg = sum(s[comp]) / n_points
        assert flat_avg < comp_avg * 1.05, (
            f"flat sigma_r ({flat_avg:.3f}) not below {comp} ({comp_avg:.3f})"
        )
