"""Figure 6: the intra algorithm choice — obtaining time (a) and its
standard deviation (b) with the inter algorithm fixed to Naimi.

Shape assertions follow §4.6: the intra choice barely moves the mean
obtaining time ("almost the same curve"), but Naimi intra is the most
*regular* under contention (Suzuki's token queue ignores arrival order),
which is why the paper fixes intra = Naimi everywhere else.
"""

from conftest import run_once
from repro.experiments import fig6a, fig6b

CURVES = ("naimi-naimi", "martin-naimi", "suzuki-naimi")


def test_fig6a_obtaining_time(benchmark, scale):
    data = run_once(benchmark, fig6a, scale)
    print("\n" + data.to_table())
    s = data.series

    # All intra choices produce nearly the same obtaining time at every
    # rho (§4.6: "almost the same curve, independently of rho").
    for i, x in enumerate(data.xs):
        values = [s[c][i] for c in CURVES]
        assert max(values) / min(values) < 1.30, f"divergence at rho/N={x}"

    # And each curve still decreases with rho.
    for label, ys in s.items():
        assert ys[0] > ys[-1], f"{label} not decreasing"


def test_fig6b_regularity(benchmark, scale):
    data = run_once(benchmark, fig6b, scale)
    print("\n" + data.to_table())
    s = data.series
    lo = data.xs.index(min(data.xs))

    # Under contention (low rho), Naimi intra is the most regular choice:
    # its distributed queue preserves request order, while Suzuki's token
    # queue appends in peer-id order (§4.6).
    low_values = {c: s[c][lo] for c in CURVES}
    assert low_values["naimi-naimi"] == min(low_values.values()), low_values
