"""The full 3×3 composition matrix.

Figures 4-6 fix one level at a time; §4.6 states that "experiments with
the other two algorithms have presented the same behavior".  This bench
runs **all nine** pairings of {Naimi, Martin, Suzuki} at a low and a
high parallelism point and checks that the paper's per-level findings
hold regardless of what runs at the other level:

* the *inter* choice dominates the metrics (fixing intra and varying
  inter moves them far more than the reverse);
* for every intra choice, Martin inter is cheapest on messages at low ρ
  and slowest at high ρ; Suzuki inter is fastest at high ρ.
"""

import itertools

from conftest import run_once
from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import format_table

ALGOS = ("naimi", "martin", "suzuki")
BASE = ExperimentConfig(n_clusters=9, apps_per_cluster=2, n_cs=8)
N = BASE.n_apps


def _matrix(rho_over_n: float):
    out = {}
    for intra, inter in itertools.product(ALGOS, ALGOS):
        r = run_experiment(
            BASE.with_(intra=intra, inter=inter, rho=rho_over_n * N)
        )
        out[(intra, inter)] = r
    return out


def test_full_matrix_low_and_high_parallelism(benchmark):
    low, high = run_once(benchmark, lambda: (_matrix(0.5), _matrix(6.0)))

    for tag, matrix in (("rho/N=0.5", low), ("rho/N=6.0", high)):
        rows = [
            (f"{intra}-{inter}",
             matrix[(intra, inter)].obtaining.mean,
             matrix[(intra, inter)].inter_messages_per_cs)
            for intra, inter in itertools.product(ALGOS, ALGOS)
        ]
        print(f"\n{tag}:")
        print(format_table(["composition", "obtain (ms)", "inter msg/CS"],
                           rows))

    # §4.6 "same behavior" for every intra choice:
    for intra in ALGOS:
        # low parallelism: Martin inter cheapest on inter-cluster msgs.
        msgs = {i: low[(intra, i)].inter_messages_per_cs for i in ALGOS}
        assert msgs["martin"] == min(msgs.values()), (intra, msgs)
        # high parallelism: Suzuki inter fastest, Martin inter slowest.
        times = {i: high[(intra, i)].obtaining.mean for i in ALGOS}
        assert times["suzuki"] == min(times.values()), (intra, times)
        assert times["martin"] == max(times.values()), (intra, times)

    # The inter level dominates: for a fixed intra, swapping the inter
    # algorithm moves the high-rho obtaining time far more than swapping
    # the intra for a fixed inter.
    inter_effect = max(
        max(high[(intra, i)].obtaining.mean for i in ALGOS)
        / min(high[(intra, i)].obtaining.mean for i in ALGOS)
        for intra in ALGOS
    )
    intra_effect = max(
        max(high[(i, inter)].obtaining.mean for i in ALGOS)
        / min(high[(i, inter)].obtaining.mean for i in ALGOS)
        for inter in ALGOS
    )
    assert inter_effect > intra_effect
