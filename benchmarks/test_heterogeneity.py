"""Latency heterogeneity and the per-site experience (§4.5's root cause).

§4.5 attributes the large obtaining-time deviation to "the communication
heterogeneity of the Grid platform: inter cluster latencies are much
higher than intra cluster ones and the former are not uniform".  This
bench looks at the same effect from the per-site angle: under the
Figure 3 matrix, sites behind expensive links (nancy, with its 95/98 ms
paths) wait visibly longer for the inter token than well-connected ones
— and on a uniform two-tier platform the spread collapses.
"""

from conftest import run_once
from repro.experiments import ExperimentConfig, run_experiment
from repro.grid import GRID5000_SITES
from repro.metrics import format_table


def _per_cluster(platform: str, seed=3):
    cfg = ExperimentConfig(
        platform=platform,
        n_clusters=9 if platform == "grid5000" else 9,
        apps_per_cluster=3,
        n_cs=15,
        rho=4.0 * 27,  # high parallelism: obtaining ~ T_req + T_token
        seed=seed,
    )
    r = run_experiment(cfg)
    return {ci: stats.mean for ci, stats in r.per_cluster.items()}


def test_per_site_obtaining_times_reflect_the_matrix(benchmark):
    grid, uniform = run_once(
        benchmark, lambda: (_per_cluster("grid5000"), _per_cluster("two-tier"))
    )
    rows = [
        (GRID5000_SITES[ci], grid[ci], uniform[ci])
        for ci in sorted(grid)
    ]
    print("\nmean obtaining time per site (ms), high parallelism:")
    print(format_table(["site", "grid5000 matrix", "uniform two-tier"], rows))

    grid_vals = list(grid.values())
    uni_vals = list(uniform.values())
    grid_spread = max(grid_vals) / min(grid_vals)
    uni_spread = max(uni_vals) / min(uni_vals)
    print(f"spread (worst/best site): grid5000 {grid_spread:.2f}x, "
          f"uniform {uni_spread:.2f}x")

    # The heterogeneous matrix spreads the per-site experience far more
    # than the uniform platform does.
    assert grid_spread > uni_spread
    assert grid_spread > 1.3
    assert uni_spread < 1.5
