"""The related work's *other* road to hierarchy: Bertier et al. [3].

Instead of composing two algorithms, Bertier et al. modify Naimi-Tréhel
itself to treat intra-cluster requests before inter-cluster ones.  Our
:class:`~repro.mutex.PriorityNaimiPeer` with
:class:`~repro.mutex.ClusterAffinityPolicy` rebuilds that design: one
flat token, token-carried queue, same-cluster requests served first
under a bounded streak.

The bench compares three deployments under contention on the Grid'5000
model:

* plain flat Naimi (the paper's baseline),
* Bertier-style affinity flat Naimi (related work),
* the paper's Naimi-Naimi composition.

Expected outcome (and the paper's implicit argument for composing
instead of modifying): affinity scheduling recovers *part* of the
composition's inter-cluster savings — it batches CS entries by cluster
— but still pays tree-routing WAN hops for every request, so the
composition stays ahead on inter-cluster messages.
"""

from conftest import run_once
from repro.core import Composition, FlatMutex
from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_platform
from repro.metrics import TimelineRecorder, format_table
from repro.mutex import ClusterAffinityPolicy, PriorityNaimiPeer
from repro.net import Network
from repro.sim import Simulator
from repro.workload import deploy_workload

CFG = ExperimentConfig(
    n_clusters=6, apps_per_cluster=3, n_cs=10, rho=9.0,  # rho/N = 0.5
)


def _run(kind: str, seed: int = 9):
    sim = Simulator(seed=seed)
    topo, latency = build_platform(CFG)
    net = Network(sim, topo, latency)
    if kind == "composition":
        system = Composition(sim, net, topo, intra="naimi", inter="naimi")
    elif kind == "affinity":
        def factory(sim, net, node, peers, port, initial_holder=None):
            return PriorityNaimiPeer(
                sim, net, node, peers, port, initial_holder=initial_holder,
                policy=ClusterAffinityPolicy(topo, max_streak=8),
            )

        system = FlatMutex(sim, net, topo, peer_factory=factory,
                           name="affinity-naimi (flat)")
    else:
        system = FlatMutex(sim, net, topo, algorithm="naimi")
    timeline = TimelineRecorder(sim.trace, topo, system.app_nodes)
    apps, collector = deploy_workload(
        system, alpha_ms=CFG.alpha_ms, rho=CFG.rho, n_cs=CFG.n_cs
    )
    sim.run(until=10_000_000.0)
    assert all(a.done for a in apps)
    return {
        "obtain": collector.obtaining_stats().mean,
        "inter_per_cs": net.stats.inter_cluster / collector.cs_count,
        "locality": timeline.locality_ratio(),
    }


def test_affinity_flat_vs_composition(benchmark):
    def study():
        return {
            "naimi (flat)": _run("flat"),
            "Bertier-style affinity (flat)": _run("affinity"),
            "naimi-naimi (composition)": _run("composition"),
        }

    study = run_once(benchmark, study)
    print("\n" + format_table(
        ["deployment", "obtain (ms)", "inter msg/CS", "locality"],
        [
            (k, v["obtain"], v["inter_per_cs"], v["locality"])
            for k, v in study.items()
        ],
    ))
    flat = study["naimi (flat)"]
    affinity = study["Bertier-style affinity (flat)"]
    comp = study["naimi-naimi (composition)"]

    # Affinity scheduling batches CS entries by cluster...
    assert affinity["locality"] > flat["locality"]
    # ...and cuts inter-cluster traffic vs the plain flat algorithm...
    assert affinity["inter_per_cs"] < flat["inter_per_cs"]
    # ...but the composition still sends the fewest inter-cluster
    # messages (requests never leave the cluster unless needed).
    assert comp["inter_per_cs"] < affinity["inter_per_cs"]
