"""Non-uniform demand: hotspot workloads.

The paper's workloads are uniform across clusters; real grid
applications often are not.  With demand concentrated in one cluster,
the composition parks the inter token at the hot coordinator, serving
its bursts locally — but the flat tree *also* localises somewhat (path
reversal keeps pointers inside the hot cluster), so the honest
comparison is head-to-head on the same hotspot workload: the composition
sends fewer inter-cluster messages AND obtains the CS faster for both
the hot and the cold processes.
"""

from conftest import run_once
from repro.core import Composition, FlatMutex
from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_platform
from repro.metrics import format_table
from repro.net import Network
from repro.sim import Simulator
from repro.workload import deploy_hotspot_workload, deploy_workload

CFG = ExperimentConfig(n_clusters=6, apps_per_cluster=3, n_cs=10)


def _run(kind: str, workload: str, seed=5):
    sim = Simulator(seed=seed)
    topo, latency = build_platform(CFG)
    net = Network(sim, topo, latency)
    system = (
        Composition(sim, net, topo, intra="naimi", inter="naimi")
        if kind == "composition"
        else FlatMutex(sim, net, topo, algorithm="naimi")
    )
    if workload == "hotspot":
        apps, collector = deploy_hotspot_workload(
            system, alpha_ms=10.0, hot_rho=1.0, cold_rho=30.0,
            n_cs=CFG.n_cs, hot_clusters=[2],
        )
    else:
        apps, collector = deploy_workload(
            system, alpha_ms=10.0, rho=0.5 * CFG.n_apps, n_cs=CFG.n_cs
        )
    sim.run(until=10_000_000.0)
    assert all(a.done for a in apps)
    by_cluster = collector.by_cluster()
    hot = by_cluster[2].mean
    cold_entries = [(s.mean, s.count) for ci, s in by_cluster.items() if ci != 2]
    cold = sum(m * c for m, c in cold_entries) / sum(c for _, c in cold_entries)
    return {
        "inter_per_cs": net.stats.inter_cluster / collector.cs_count,
        "hot_obtain": hot,
        "cold_obtain": cold,
    }


def test_hotspot_head_to_head(benchmark):
    def study():
        return {
            (kind, workload): _run(kind, workload)
            for kind in ("composition", "flat")
            for workload in ("uniform", "hotspot")
        }

    study = run_once(benchmark, study)
    rows = [
        (kind, workload, v["inter_per_cs"], v["hot_obtain"], v["cold_obtain"])
        for (kind, workload), v in sorted(study.items())
    ]
    print("\n")
    print(format_table(
        ["system", "workload", "inter msg/CS", "hot obtain (ms)",
         "cold obtain (ms)"],
        rows,
    ))

    comp_hot = study[("composition", "hotspot")]
    flat_hot = study[("flat", "hotspot")]
    # Head to head on the hotspot: the composition sends fewer
    # inter-cluster messages and obtains faster for BOTH classes.
    assert comp_hot["inter_per_cs"] < flat_hot["inter_per_cs"]
    assert comp_hot["hot_obtain"] < flat_hot["hot_obtain"]
    assert comp_hot["cold_obtain"] < flat_hot["cold_obtain"]
    # And on both systems, concentrating the demand lowers the
    # inter-cluster cost relative to the saturated-uniform workload for
    # the flat tree (locality by path reversal), while the composition
    # stays the cheaper deployment in every cell.
    for workload in ("uniform", "hotspot"):
        assert (study[("composition", workload)]["inter_per_cs"]
                < study[("flat", workload)]["inter_per_cs"])
