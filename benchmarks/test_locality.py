"""The batching mechanism behind Figure 4, observed directly.

§4.2/§4.4 explain *why* the composition sends fewer inter-cluster
messages: coordinators gather concurrent local requests into one inter
token request, so while the inter token is home the cluster drains its
whole local queue.  The timeline recorder makes this visible: the
sequence of CS entries, viewed at cluster granularity, shows long
same-cluster runs under the composition, and near-random hopping under
the flat algorithm.  The effect must fade as ρ grows (fewer concurrent
local requests to batch) — the same trend as Fig 4(b)'s rising message
counts.
"""

from conftest import run_once
from repro.core import Composition, FlatMutex
from repro.experiments.runner import build_platform
from repro.experiments import ExperimentConfig
from repro.metrics import TimelineRecorder, format_table
from repro.net import Network
from repro.sim import Simulator
from repro.workload import deploy_workload


def _locality(system_kind: str, rho_over_n: float, seed=5) -> float:
    cfg = ExperimentConfig(
        n_clusters=6, apps_per_cluster=3, n_cs=10,
        rho=rho_over_n * 18,
    )
    sim = Simulator(seed=seed)
    topo, latency = build_platform(cfg)
    net = Network(sim, topo, latency)
    if system_kind == "composition":
        system = Composition(sim, net, topo, intra="naimi", inter="naimi")
    else:
        system = FlatMutex(sim, net, topo, algorithm="naimi")
    timeline = TimelineRecorder(sim.trace, topo, system.app_nodes)
    apps, _ = deploy_workload(system, alpha_ms=10.0, rho=cfg.rho,
                              n_cs=cfg.n_cs)
    sim.run(until=10_000_000.0)
    assert all(a.done for a in apps)
    return timeline.locality_ratio()


def test_composition_batches_cs_per_cluster(benchmark):
    def study():
        rows = []
        for x in (0.5, 2.0, 6.0):
            rows.append((
                x,
                _locality("composition", x),
                _locality("flat", x),
            ))
        return rows

    rows = run_once(benchmark, study)
    print("\nfraction of consecutive CS entries in the same cluster:")
    print(format_table(["rho/N", "composition", "flat"], rows))

    for x, comp, flat in rows:
        # The composition batches local requests at every rho.
        assert comp > flat, f"no batching advantage at rho/N={x}"
    # Batching decays as parallelism rises (fewer local requests to
    # gather) — the mechanism behind Fig 4(b)'s rising message counts.
    assert rows[0][1] > rows[-1][1]
