"""Micro-benchmarks of the substrate and algorithms.

Unlike the figure benches (timed once), these use pytest-benchmark's
normal repeated timing: kernel event throughput, per-algorithm cost of a
full contended round, and an end-to-end composition run.  They guard
against performance regressions in the simulator itself.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    def schedule_and_drain():
        sim = Simulator(seed=0)
        count = 10_000
        for i in range(count):
            sim.schedule(float(i % 97) * 0.25, _noop)
        sim.run()
        return sim.events_fired

    fired = benchmark(schedule_and_drain)
    assert fired == 10_000


def _noop():
    pass


@pytest.mark.parametrize(
    "algorithm", ["martin", "naimi", "suzuki", "raymond", "ricart-agrawala"]
)
def test_algorithm_contended_round(benchmark, algorithm):
    """One full contended round: 8 peers all request, all get served."""
    import sys
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent.parent))
    from tests.helpers import PeerDriver

    def round_trip():
        d = PeerDriver(algorithm=algorithm, n=8, cs_time=0.5)
        for node in range(8):
            d.request(node, at=0.0)
        d.run()
        return len(d.entries)

    entries = benchmark(round_trip)
    assert entries == 8


def test_end_to_end_composition_run(benchmark):
    cfg = ExperimentConfig(
        n_clusters=3, apps_per_cluster=3, n_cs=5, rho=9.0,
        check_safety=False,
    )

    result = benchmark(run_experiment, cfg)
    assert result.cs_count == 45


def test_end_to_end_flat_run(benchmark):
    cfg = ExperimentConfig(
        system="flat", n_clusters=3, apps_per_cluster=3, n_cs=5, rho=9.0,
        check_safety=False,
    )
    result = benchmark(run_experiment, cfg)
    assert result.cs_count == 45


def test_safety_checker_overhead(benchmark):
    """The tracing-based safety checker should cost little; this bench
    documents the overhead of running with it enabled."""
    cfg = ExperimentConfig(
        n_clusters=3, apps_per_cluster=3, n_cs=5, rho=9.0,
        check_safety=True,
    )
    result = benchmark(run_experiment, cfg)
    assert result.cs_count == 45
