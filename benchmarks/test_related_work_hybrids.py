"""§5 related work: the hybrid schemes the paper compares itself against,
rebuilt inside this framework.

The cited hybrids gather nodes into groups with different algorithms per
level, but — unlike the paper's composition — hard-wire specific
pairings.  Because our composition accepts *any* registered algorithm at
either level, each of them is a one-liner here:

* **Housni & Tréhel [6]**: Raymond's tree inside groups,
  Ricart-Agrawala between groups          → ``raymond`` / ``ricart-agrawala``
* **Chang, Singhal & Liu [4]**: a dynamic-information diffusion
  algorithm inside groups (approximated by Ricart-Agrawala, the closest
  implemented diffusion algorithm), Maekawa between groups
                                           → ``ricart-agrawala`` / ``maekawa``
* **Madhuram & Kumar [8]**: centralized locally, Ricart-Agrawala above
                                           → ``centralized`` / ``ricart-agrawala``

The bench runs all of them against the paper's recommended token-based
choices on the Grid'5000 model and confirms the paper's §1 argument for
token algorithms: permission-based inter levels pay ≈2(C-1) WAN messages
per inter handover, so the paper's compositions send fewer inter-cluster
messages.
"""

from conftest import run_once
from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import format_table

HYBRIDS = {
    "Housni [6]  raymond/RA": ("raymond", "ricart-agrawala"),
    "Chang [4]   RA/maekawa": ("ricart-agrawala", "maekawa"),
    "Madhuram [8] central/RA": ("centralized", "ricart-agrawala"),
    "paper       naimi/martin": ("naimi", "martin"),
    "paper       naimi/naimi": ("naimi", "naimi"),
}

BASE = ExperimentConfig(
    n_clusters=6, apps_per_cluster=3, n_cs=10, rho=9.0,  # rho/N = 0.5
)


def _study():
    out = {}
    for label, (intra, inter) in HYBRIDS.items():
        r = run_experiment(BASE.with_(intra=intra, inter=inter))
        out[label] = r
    return out


def test_related_work_hybrids_compose_and_compare(benchmark):
    study = run_once(benchmark, _study)
    print("\n" + format_table(
        ["hybrid", "obtain (ms)", "std", "inter msg/CS", "total msg/CS"],
        [
            (label, r.obtaining.mean, r.obtaining.std,
             r.inter_messages_per_cs, r.messages_per_cs)
            for label, r in study.items()
        ],
    ))
    # Every related-work hybrid is safe and live in this framework (the
    # run would have raised otherwise) and completes the same workload.
    counts = {r.cs_count for r in study.values()}
    assert counts == {BASE.n_apps * BASE.n_cs}

    # The paper's token-based compositions beat the permission-based
    # inter levels on inter-cluster traffic under contention.
    best_paper = min(
        study["paper       naimi/martin"].inter_messages_per_cs,
        study["paper       naimi/naimi"].inter_messages_per_cs,
    )
    for label in ("Housni [6]  raymond/RA", "Chang [4]   RA/maekawa",
                  "Madhuram [8] central/RA"):
        assert best_paper < study[label].inter_messages_per_cs, label
