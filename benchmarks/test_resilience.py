"""§2's resilience remark, quantified — plus the crash-recovery matrix.

The paper observes: "by diffusing the request to all sites,
Suzuki-Kasami's is more resilient to failures than the other two".  This
bench makes the claim concrete for *request-message loss*:

* Suzuki's broadcast is *inherently* redundant: even when the copy to
  the current holder is lost, any other peer that received one will
  serve the request when the token reaches it (RN/LN reconciliation at
  release) — the algorithm often rides out heavy request loss with no
  extra machinery at all;
* the sequence numbers additionally make a timeout re-broadcast
  (``retry_ms``) idempotent, turning "often survives" into "always
  survives";
* Naimi-Tréhel's and Martin's single-path requests have no redundancy:
  one lost request permanently strands the requester (shown by running
  them under the same loss and counting unfinished requesters).

Token-message loss is outside every algorithm's system model — the
*crash matrix* below therefore drives it through ``repro.core.recovery``
(docs/faults.md), which detects the loss and regenerates the token
without touching the algorithms themselves.  The matrix crosses three
crash scenarios — coordinator dies while an application is inside the
global CS, the idle token holder dies, a non-holder bystander dies —
with the three token algorithms, and reports CS served plus the measured
recovery time.
"""

import os

from conftest import run_once
from repro.core import Composition, CompositionRecovery, InstanceRecovery, \
    RecoveryConfig
from repro.metrics import MetricsCollector, format_table
from repro.mutex import SuzukiKasamiPeer, get_algorithm
from repro.net import ConstantLatency, CrashController, FaultInjector, \
    Network, TwoTierLatency, uniform_topology
from repro.sim import Simulator
from repro.verify import assert_single_token, live_peers

N = 6
DROP = 0.3
CYCLES = 4


def _run(algorithm: str, retry_ms=None, seed=11):
    sim = Simulator(seed=seed)
    topo = uniform_topology(1, N)
    net = Network(
        sim, topo, ConstantLatency(1.0),
        faults=FaultInjector(drop=DROP, only_kinds={"request", "ask"}),
    )
    if algorithm == "suzuki":
        peers = [
            SuzukiKasamiPeer(sim, net, node, range(N), "mutex",
                             retry_ms=retry_ms)
            for node in range(N)
        ]
    else:
        cls = get_algorithm(algorithm).peer_class
        peers = [cls(sim, net, node, range(N), "mutex") for node in range(N)]

    served = {p.node: 0 for p in peers}
    remaining = {p.node: CYCLES for p in peers}

    def on_grant(peer):
        def handler():
            served[peer.node] += 1
            sim.schedule(0.5, release, peer)
        return handler

    def release(peer):
        peer.release_cs()
        remaining[peer.node] -= 1
        if remaining[peer.node] > 0:
            sim.schedule(0.5, peer.request_cs)

    for p in peers:
        p.on_granted.append(on_grant(p))
        sim.schedule(0.2 * p.node, p.request_cs)
    sim.run(until=50_000.0)
    total = sum(served.values())
    return total, N * CYCLES


def test_suzuki_retry_survives_request_loss(benchmark):
    def study():
        rows = []
        rows.append(("suzuki + retry", *_run("suzuki", retry_ms=25.0)))
        rows.append(("suzuki (no retry)", *_run("suzuki")))
        rows.append(("naimi", *_run("naimi")))
        rows.append(("martin", *_run("martin")))
        return rows

    rows = run_once(benchmark, study)
    print("\n" + format_table(
        ["algorithm", "CS served", "CS expected"], rows,
    ))
    by_name = {name: served for name, served, _ in rows}
    expected = rows[0][2]
    # With retransmission Suzuki serves the full workload despite 30%
    # request loss.
    assert by_name["suzuki + retry"] == expected
    # Even without retry, the broadcast's redundancy keeps Suzuki far
    # ahead of the single-path algorithms (the paper's §2 remark).
    assert by_name["suzuki (no retry)"] > by_name["naimi"]
    assert by_name["suzuki (no retry)"] > by_name["martin"]
    # The single-path algorithms strand requesters.
    assert by_name["naimi"] < expected
    assert by_name["martin"] < expected


# --------------------------------------------------------------------- #
# crash matrix: {coordinator in-CS, idle holder, non-holder} x algorithms
# --------------------------------------------------------------------- #
ALGOS = ("naimi", "suzuki", "martin")

#: short deadlines so quick mode finishes fast; recovery correctness is
#: deadline-independent (tests/core/test_recovery.py pins that).
RECOVERY = RecoveryConfig(
    heartbeat_ms=10.0,
    heartbeat_deadline_ms=35.0,
    request_deadline_ms=60.0,
    check_ms=10.0,
)

FULL = os.environ.get("REPRO_FULL") == "1"
CRASH_SEEDS = (11, 12, 13) if FULL else (11,)
CRASH_CYCLES = 5 if FULL else 2


def _drive(sim, peer, served, cycles, hold_ms=2.0, gap_ms=4.0):
    state = {"left": cycles}

    def step_release():
        peer.release_cs()
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(gap_ms, peer.request_cs)

    def on_granted():
        served.append((sim.now, peer.node))
        sim.schedule(hold_ms, step_release)

    peer.on_granted.append(on_granted)
    peer.request_cs()


def _run_instance_crash(algorithm, scenario, seed):
    """One flat instance; crash per ``scenario``; survivors cycle CS."""
    sim = Simulator(seed=seed)
    n = 4
    topo = uniform_topology(1, n)
    crashes = CrashController(sim)
    net = Network(sim, topo,
                  TwoTierLatency(topo, lan_ms=0.5, wan_ms=10.0, jitter=0.0),
                  crashes=crashes)
    cls = get_algorithm(algorithm).peer_class
    peers = [cls(sim, net, i, list(range(n)), "flat", initial_holder=0)
             for i in range(n)]
    for p in peers:
        crashes.bind(p.node, p)
    metrics = MetricsCollector()
    rec = InstanceRecovery(sim, net, crashes, peers, config=RECOVERY,
                           metrics=metrics)
    if scenario == "in-CS holder":
        peers[0].request_cs()  # initial holder enters synchronously
        victim = 0
    elif scenario == "idle holder":
        victim = 0
    else:  # non-holder bystander
        victim = 2
    crashes.schedule_crash(5.0, victim)
    served = []
    survivors = [p for p in peers if p.node != victim]
    for k, p in enumerate(survivors):
        sim.schedule_at(10.0 + k, _drive, sim, p, served, CRASH_CYCLES)
    sim.run(until=5000.0)
    expected = len(survivors) * CRASH_CYCLES
    assert_single_token(live_peers(peers, crashes))
    times = metrics.recovery_times()
    return len(served), expected, rec.recoveries, max(times, default=0.0)


def _run_coordinator_crash(intra, seed):
    """Coordinator dies while an app holds the global CS; the standby
    must take over both levels (docs/faults.md failover ordering)."""
    sim = Simulator(seed=seed)
    topo = uniform_topology(2, 4)
    crashes = CrashController(sim)
    net = Network(sim, topo,
                  TwoTierLatency(topo, lan_ms=0.5, wan_ms=10.0, jitter=0.0),
                  crashes=crashes)
    comp = Composition(sim, net, topo, intra=intra, inter="naimi",
                       standbys=1)
    metrics = MetricsCollector()
    CompositionRecovery(sim, net, crashes, comp, config=RECOVERY,
                        metrics=metrics)
    served = []
    apps = [comp.peer_for(node) for node in comp.app_nodes]
    # First app camps in the CS long enough for its coordinator to die
    # mid-CS; everyone (both clusters) then wants the global lock.
    sim.schedule_at(0.0, _drive, sim, apps[0], served, CRASH_CYCLES,
                    60.0)
    crashes.schedule_crash(20.0, comp.coordinators[0].node)
    for k, peer in enumerate(apps[1:]):
        sim.schedule_at(30.0 + 2 * k, _drive, sim, peer, served,
                        CRASH_CYCLES)
    sim.run(until=10_000.0)
    expected = len(apps) * CRASH_CYCLES
    assert_single_token(live_peers(comp.inter_peers, crashes))
    failover = [r for r in metrics.recoveries if r.kind == "failover"]
    recovery_time = max((r.recovery_time for r in failover), default=0.0)
    return len(served), expected, len(failover), recovery_time


def test_crash_matrix_recovers(benchmark):
    def study():
        rows = []
        for algo in ALGOS:
            for seed in CRASH_SEEDS:
                served, expected, n_rec, t = _run_coordinator_crash(
                    algo, seed)
                rows.append((f"{algo} x coordinator in-CS (seed {seed})",
                             served, expected, n_rec, f"{t:.1f}"))
            for scenario in ("idle holder", "in-CS holder", "non-holder"):
                for seed in CRASH_SEEDS:
                    served, expected, n_rec, t = _run_instance_crash(
                        algo, scenario, seed)
                    rows.append((f"{algo} x {scenario} (seed {seed})",
                                 served, expected, n_rec, f"{t:.1f}"))
        return rows

    rows = run_once(benchmark, study)
    print("\n" + format_table(
        ["crash scenario", "CS served", "CS expected", "recoveries",
         "recovery ms"], rows,
    ))
    # Liveness despite one crash: every surviving request was served, in
    # every cell of the matrix.
    for name, served, expected, n_rec, t in rows:
        assert served == expected, f"{name}: served {served}/{expected}"
        if "non-holder" in name and "martin" not in name:
            # A bystander's death never disturbs tree/broadcast
            # algorithms (Martin's ring may route requests through the
            # dead relay, which legitimately triggers a reset).
            assert n_rec == 0, name
        if "non-holder" not in name:  # coordinator or token-holder death
            assert n_rec >= 1, f"{name}: crash went undetected"
