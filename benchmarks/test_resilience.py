"""§2's resilience remark, quantified.

The paper observes: "by diffusing the request to all sites,
Suzuki-Kasami's is more resilient to failures than the other two".  This
bench makes the claim concrete for *request-message loss*:

* Suzuki's broadcast is *inherently* redundant: even when the copy to
  the current holder is lost, any other peer that received one will
  serve the request when the token reaches it (RN/LN reconciliation at
  release) — the algorithm often rides out heavy request loss with no
  extra machinery at all;
* the sequence numbers additionally make a timeout re-broadcast
  (``retry_ms``) idempotent, turning "often survives" into "always
  survives";
* Naimi-Tréhel's and Martin's single-path requests have no redundancy:
  one lost request permanently strands the requester (shown by running
  them under the same loss and counting unfinished requesters).

Token-message loss is outside every algorithm's system model and is not
injected.
"""

from conftest import run_once
from repro.metrics import format_table
from repro.mutex import SuzukiKasamiPeer, get_algorithm
from repro.net import ConstantLatency, FaultInjector, Network, uniform_topology
from repro.sim import Simulator

N = 6
DROP = 0.3
CYCLES = 4


def _run(algorithm: str, retry_ms=None, seed=11):
    sim = Simulator(seed=seed)
    topo = uniform_topology(1, N)
    net = Network(
        sim, topo, ConstantLatency(1.0),
        faults=FaultInjector(drop=DROP, only_kinds={"request", "ask"}),
    )
    if algorithm == "suzuki":
        peers = [
            SuzukiKasamiPeer(sim, net, node, range(N), "mutex",
                             retry_ms=retry_ms)
            for node in range(N)
        ]
    else:
        cls = get_algorithm(algorithm).peer_class
        peers = [cls(sim, net, node, range(N), "mutex") for node in range(N)]

    served = {p.node: 0 for p in peers}
    remaining = {p.node: CYCLES for p in peers}

    def on_grant(peer):
        def handler():
            served[peer.node] += 1
            sim.schedule(0.5, release, peer)
        return handler

    def release(peer):
        peer.release_cs()
        remaining[peer.node] -= 1
        if remaining[peer.node] > 0:
            sim.schedule(0.5, peer.request_cs)

    for p in peers:
        p.on_granted.append(on_grant(p))
        sim.schedule(0.2 * p.node, p.request_cs)
    sim.run(until=50_000.0)
    total = sum(served.values())
    return total, N * CYCLES


def test_suzuki_retry_survives_request_loss(benchmark):
    def study():
        rows = []
        rows.append(("suzuki + retry", *_run("suzuki", retry_ms=25.0)))
        rows.append(("suzuki (no retry)", *_run("suzuki")))
        rows.append(("naimi", *_run("naimi")))
        rows.append(("martin", *_run("martin")))
        return rows

    rows = run_once(benchmark, study)
    print("\n" + format_table(
        ["algorithm", "CS served", "CS expected"], rows,
    ))
    by_name = {name: served for name, served, _ in rows}
    expected = rows[0][2]
    # With retransmission Suzuki serves the full workload despite 30%
    # request loss.
    assert by_name["suzuki + retry"] == expected
    # Even without retry, the broadcast's redundancy keeps Suzuki far
    # ahead of the single-path algorithms (the paper's §2 remark).
    assert by_name["suzuki (no retry)"] > by_name["naimi"]
    assert by_name["suzuki (no retry)"] > by_name["martin"]
    # The single-path algorithms strand requesters.
    assert by_name["naimi"] < expected
    assert by_name["martin"] < expected
