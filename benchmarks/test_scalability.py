"""§4.7 scalability claims: the composition scales better than the
original algorithms.

* Flat Suzuki needs N messages per CS and its token grows with N; the
  "Suzuki-Suzuki" composition confines broadcasts to cluster /
  coordinator scopes, so per-CS costs grow with the cluster size and the
  cluster *count*, not their product.
* "Naimi-Naimi" sends fewer inter-cluster messages than flat Naimi
  because a token request path, seen at cluster granularity, never
  cycles.
"""

import pytest

from conftest import run_once
from repro.experiments import scalability_study
from repro.metrics import format_table


def _print(study):
    rows = []
    for label, points in study.items():
        for p in points:
            rows.append((
                label, p.n_clusters, p.n_apps, p.inter_messages_per_cs,
                p.total_messages_per_cs, p.bytes_per_cs, p.obtaining_mean_ms,
            ))
    print("\n" + format_table(
        ["deployment", "clusters", "N", "interMsg/CS", "msg/CS",
         "bytes/CS", "obtain(ms)"],
        rows,
    ))


@pytest.mark.parametrize("algorithm", ["suzuki", "naimi"])
def test_composition_scales_better_than_flat(benchmark, algorithm):
    study = run_once(
        benchmark, scalability_study, algorithm, (2, 4, 8), 4, 8,
    )
    _print(study)
    flat = study[f"{algorithm} (flat)"]
    composed = study[f"{algorithm}-{algorithm}"]

    for f, c in zip(flat, composed):
        # At every size the composition sends fewer inter-cluster
        # messages per CS.
        assert c.inter_messages_per_cs < f.inter_messages_per_cs

    # And the flat deployment's inter-cluster cost grows faster with the
    # grid size than the composition's.
    flat_growth = flat[-1].inter_messages_per_cs / flat[0].inter_messages_per_cs
    comp_growth = (
        composed[-1].inter_messages_per_cs / composed[0].inter_messages_per_cs
    )
    assert comp_growth < flat_growth


def test_flat_suzuki_token_bytes_grow_with_n(benchmark):
    """Flat Suzuki's token carries an N-entry array (the paper's message
    size argument); the composition keeps per-message sizes bounded by
    the cluster size and the cluster count."""
    study = run_once(
        benchmark, scalability_study, "suzuki", (2, 8), 4, 8,
    )
    _print(study)
    flat = study["suzuki (flat)"]
    composed = study["suzuki-suzuki"]
    assert flat[-1].bytes_per_cs > flat[0].bytes_per_cs
    assert composed[-1].bytes_per_cs < flat[-1].bytes_per_cs
