"""§4.7 — "Choosing the best composition of mutual exclusion algorithms".

The paper's conclusion table, reproduced as executable assertions:

* **low parallelism** (ρ < N): Martin inter matches the others on
  obtaining time but sends far fewer inter-cluster messages — Martin is
  the most effective;
* **intermediate** (N ≤ ρ < 3N): Naimi and Suzuki tie on obtaining time
  but Suzuki costs more messages — Naimi is the best choice;
* **high parallelism** (ρ ≥ 3N): Suzuki costs the most messages but its
  obtaining time is much smaller than Martin's (and below Naimi's) —
  Suzuki is the good choice for massively parallel applications.
"""

from conftest import run_once
from repro.experiments.figures import inter_sweep


def _metrics(sweep, inter, x):
    r = sweep[(f"naimi-{inter}", x)]
    return r.obtaining.mean, r.inter_messages_per_cs


def test_section47_low_parallelism_martin_wins(benchmark, scale):
    sweep = run_once(benchmark, inter_sweep, scale)
    x = min(scale.rho_over_n)  # 0.5: almost everybody requests
    rows = {i: _metrics(sweep, i, x) for i in ("naimi", "martin", "suzuki")}
    print(f"\nrho/N={x}: " + "  ".join(
        f"{k}: {t:.1f}ms / {m:.2f} msg/CS" for k, (t, m) in rows.items()
    ))
    # Same obtaining time (within noise)...
    times = [t for t, _ in rows.values()]
    assert max(times) / min(times) < 1.35
    # ...but Martin sends the fewest inter-cluster messages.
    assert rows["martin"][1] == min(m for _, m in rows.values())
    assert rows["martin"][1] < rows["suzuki"][1] / 2


def test_section47_intermediate_naimi_wins(benchmark, scale):
    sweep = run_once(benchmark, inter_sweep, scale)
    x = 2.0  # N < rho <= 3N
    rows = {i: _metrics(sweep, i, x) for i in ("naimi", "martin", "suzuki")}
    print(f"\nrho/N={x}: " + "  ".join(
        f"{k}: {t:.1f}ms / {m:.2f} msg/CS" for k, (t, m) in rows.items()
    ))
    # Naimi and Suzuki comparable on time, Martin slightly higher (§4.3).
    assert rows["naimi"][0] < rows["martin"][0]
    # Naimi beats Suzuki on messages.
    assert rows["naimi"][1] < rows["suzuki"][1]
    # Overall: Naimi is not beaten on both axes by anyone.
    for other in ("martin", "suzuki"):
        better_time = rows[other][0] < rows["naimi"][0] * 0.95
        better_msgs = rows[other][1] < rows["naimi"][1] * 0.95
        assert not (better_time and better_msgs), f"{other} dominates naimi"


def test_section47_high_parallelism_suzuki_wins_on_time(benchmark, scale):
    sweep = run_once(benchmark, inter_sweep, scale)
    x = max(scale.rho_over_n)  # 6.0: requests are rare
    rows = {i: _metrics(sweep, i, x) for i in ("naimi", "martin", "suzuki")}
    print(f"\nrho/N={x}: " + "  ".join(
        f"{k}: {t:.1f}ms / {m:.2f} msg/CS" for k, (t, m) in rows.items()
    ))
    # Suzuki generates the most inter-cluster messages (broadcast)...
    assert rows["suzuki"][1] == max(m for _, m in rows.values())
    # ...but its obtaining time is the smallest, far below Martin's
    # (T_req = T vs N/2 hops).
    assert rows["suzuki"][0] == min(t for t, _ in rows.values())
    assert rows["martin"][0] > rows["suzuki"][0] * 1.8
