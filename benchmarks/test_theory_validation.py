"""Simulator vs the paper's analytical cost models (§2, §4.3).

Two cross-checks that tie the simulation to the paper's formulas:

* **message counts** — under full contention each algorithm's measured
  per-CS message count matches §2's closed forms (Martin ≈ N,
  Naimi ≈ log2(N)+1, Suzuki ≈ N) on a flat instance;
* **high-parallelism obtaining time** — with sparse requests the
  composition's obtaining time approaches §4.3's ``T_req + T_token``
  model evaluated on the actual latency matrix, for each inter
  algorithm; crucially the *ordering* Suzuki < Naimi < Martin is exact.
"""


from conftest import run_once
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.runner import build_platform
from repro.experiments.theory import (
    expected_messages_per_cs,
    expected_obtaining_high_parallelism,
)
from repro.metrics import format_table

from tests.helpers import PeerDriver  # reuse the flat-instance driver


def _measured_messages(algorithm: str, n: int, cycles: int = 6) -> float:
    d = PeerDriver(algorithm=algorithm, n=n, cs_time=0.5, latency_ms=1.0)
    for node in range(n):
        d.cycle(node, cycles, think=0.25)
    d.run().check()
    return d.messages / len(d.entries)


def test_message_counts_match_section2(benchmark):
    n = 16

    def study():
        return {
            algo: (_measured_messages(algo, n),
                   expected_messages_per_cs(algo, n))
            for algo in ("martin", "naimi", "suzuki")
        }

    study = run_once(benchmark, study)
    print("\n" + format_table(
        ["algorithm", "measured msg/CS", "paper model"],
        [(k, m, e) for k, (m, e) in study.items()],
    ))
    measured_m, model_m = study["martin"]
    # Martin under full contention approaches 2 messages/CS (request and
    # token both travel a single hop when every neighbour is requesting
    # — the very §4.4 effect that makes the ring the low-rho winner);
    # the N model is the sparse-request average and upper-bounds it.
    assert measured_m <= model_m
    assert measured_m >= 1.5
    # Naimi: within 2x of log2(N)+1 (path reversal keeps it logarithmic).
    measured_n, model_n = study["naimi"]
    assert measured_n < 2.0 * model_n
    # Suzuki: exactly N-1 requests + 1 token when every CS needs a
    # broadcast; holders re-entering without broadcast can only lower it.
    measured_s, model_s = study["suzuki"]
    assert measured_s <= model_s + 1e-9
    assert measured_s > 0.6 * model_s
    # Cross-algorithm ordering under FULL contention: the ring is the
    # cheapest (requests absorbed next door — the paper's low-rho
    # winner), the tree next, the broadcast costliest.
    assert measured_m < measured_n < measured_s


def test_high_parallelism_obtaining_matches_section43(benchmark):
    cfg = ExperimentConfig(
        n_clusters=9, apps_per_cluster=2, n_cs=10, rho=6.0 * 18, seed=2,
    )
    topo, latency = build_platform(cfg)

    def study():
        out = {}
        for inter in ("martin", "naimi", "suzuki"):
            r = run_experiment(cfg.with_(inter=inter))
            out[inter] = (
                r.obtaining.mean,
                expected_obtaining_high_parallelism(inter, topo, latency),
            )
        return out

    study = run_once(benchmark, study)
    print("\n" + format_table(
        ["inter", "measured obtain (ms)", "T_req+T_token model (ms)"],
        [(k, m, e) for k, (m, e) in study.items()],
    ))
    # Ordering is exact: Suzuki < Naimi < Martin (§4.3's conclusion).
    measured = {k: m for k, (m, _) in study.items()}
    model = {k: e for k, (_, e) in study.items()}
    assert measured["suzuki"] < measured["naimi"] < measured["martin"]
    assert model["suzuki"] < model["naimi"] < model["martin"]
    # Magnitudes agree within a factor 2 (residual queueing, LAN hops
    # and the tree's amortised-vs-worst-case gap are inside that).
    for inter in ("martin", "naimi", "suzuki"):
        ratio = measured[inter] / model[inter]
        assert 0.5 < ratio < 2.5, (inter, ratio)
