"""The paper's future work, §6: an adaptive composition that swaps the
inter algorithm as the application behaviour drifts.

A four-cluster grid first runs a saturated phase (every process wants
the CS about half the time — the paper's "low parallelism" class, where
Martin's ring is optimal) and then a sparse phase (rare, scattered
requests — "high parallelism", Suzuki's domain).  The controller samples
the fraction of busy clusters and walks the §4.7 choice table.

Run:  python examples/adaptive_grid.py
"""

from repro.core import AdaptiveComposition
from repro.metrics import MetricsCollector, format_table
from repro.net import Network, TwoTierLatency, uniform_topology
from repro.sim import Simulator
from repro.workload import ApplicationProcess

sim = Simulator(seed=7)
topology = uniform_topology(4, 5)  # 4 clusters, 4 apps + 1 coordinator slot
net = Network(sim, topology, TwoTierLatency(topology, lan_ms=0.05, wan_ms=8.0))

system = AdaptiveComposition(
    sim, net, topology,
    intra="naimi",
    initial_inter="naimi",
    sample_every_ms=5.0,
    decide_every_samples=5,
    hysteresis=2,
)

collector = MetricsCollector()

# Phase 1 — saturation: think time == CS time.
for node in system.app_nodes:
    ApplicationProcess(
        system.peer_for(node), topology.cluster_of(node),
        alpha_ms=5.0, beta_ms=5.0, n_cs=30, collector=collector,
    )
sim.run(until=1_500.0)  # sample mid-phase, while the grid is saturated
print(f"during the saturated phase the inter algorithm is: "
      f"{system.inter_name!r}")
sim.run(until=4_000.0)  # let phase 1 finish

# Phase 2 — sparse: think time is 200x the CS time.
for node in system.app_nodes:
    ApplicationProcess(
        system.peer_for(node), topology.cluster_of(node),
        alpha_ms=5.0, beta_ms=1000.0, n_cs=5, collector=collector,
        first_request_at=sim.now,
    )
sim.run(until=60_000.0)
print(f"after the sparse phase the inter algorithm is:    "
      f"{system.inter_name!r}")

print("\nswitch history:")
print(format_table(
    ["simulated time (ms)", "from", "to"],
    [(f"{t:.0f}", old, new) for t, old, new in system.switches],
))
print(f"\n{collector.cs_count} critical sections executed, "
      f"mean obtaining time {collector.obtaining_stats().mean:.1f} ms.")
