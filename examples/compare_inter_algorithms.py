"""Choosing the inter algorithm by application behaviour (paper §4.7).

Sweeps the parallelism degree rho across the paper's three behaviour
classes and, for each, compares the three inter algorithms on the
obtaining-time / message-count trade-off — reproducing the paper's
conclusion table:

    low parallelism          -> Martin   (fewest inter-cluster messages)
    intermediate parallelism -> Naimi    (best trade-off)
    high parallelism         -> Suzuki   (lowest obtaining time)

Run:  python examples/compare_inter_algorithms.py
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import format_table
from repro.workload import classify_rho

CLUSTERS, APPS = 9, 3
N = CLUSTERS * APPS

rows = []
for rho_over_n in (0.5, 2.0, 6.0):
    rho = rho_over_n * N
    level = classify_rho(rho, N).value
    for inter in ("martin", "naimi", "suzuki"):
        r = run_experiment(ExperimentConfig(
            intra="naimi", inter=inter,
            n_clusters=CLUSTERS, apps_per_cluster=APPS,
            rho=rho, n_cs=12, seed=1,
        ))
        rows.append((
            level, f"{rho_over_n:g}", f"naimi-{inter}",
            r.obtaining.mean, r.obtaining.std, r.inter_messages_per_cs,
        ))

print(format_table(
    ["parallelism", "rho/N", "composition", "obtain (ms)", "std (ms)",
     "inter msgs/CS"],
    rows,
))

print("""
Reading the table (the paper's §4.7 conclusions):
 * low:          all three obtain in about the same time, but Martin's
                 ring piggybacks requests, sending the fewest messages;
 * intermediate: Naimi matches Suzuki's obtaining time at a fraction of
                 Suzuki's broadcast cost;
 * high:         Suzuki's single-hop requests give the lowest obtaining
                 time, Martin's empty ring walk the highest.""")
