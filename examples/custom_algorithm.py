"""Plugging a user-defined algorithm into the composition framework.

The paper's key claim is that *any* token-based mutual exclusion
algorithm can be composed at either level without modification, as long
as it speaks the classical request/release interface.  This example
implements a new algorithm from scratch — a **direct-handoff arbiter**:
a fixed arbiter orders requests FIFO, but the token travels directly
from holder to next holder instead of bouncing through the arbiter —
registers it, and runs it as the inter algorithm under Naimi intra.

Run:  python examples/custom_algorithm.py
"""

from collections import deque

from repro.errors import ProtocolError
from repro.mutex import AlgorithmInfo, MutexPeer, PeerState, register
from repro.experiments import ExperimentConfig, run_experiment


class DirectHandoffPeer(MutexPeer):
    """Arbiter-ordered token algorithm with direct token handoff.

    Message kinds: ``ask`` (requester -> arbiter), ``handoff``
    (arbiter -> current holder, naming the next holder), ``token``
    (holder -> next holder).  4 messages per CS in steady state, but the
    token itself takes a single hop — between grid coordinators this
    costs one WAN trip where the centralized baseline pays two.
    """

    algorithm_name = "direct-handoff"
    topology = "star + direct token hops"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.arbiter = self.peers[0]
        self._holds_token = self.node == self.initial_holder
        self._pending_handoff = None  # next holder, while we are in CS
        # Arbiter state:
        self._queue = deque()
        self._holder = self.initial_holder

    @property
    def holds_token(self) -> bool:
        return self._holds_token

    @property
    def has_pending_request(self) -> bool:
        return self._pending_handoff is not None

    # -- requesting ---------------------------------------------------- #
    def _do_request(self) -> None:
        if self._holds_token and self._pending_handoff is None:
            self._grant()
            return
        self._send(self.arbiter, "ask")

    def _do_release(self) -> None:
        if self._pending_handoff is not None:
            dst, self._pending_handoff = self._pending_handoff, None
            self._holds_token = False
            self._send(dst, "token")

    # -- arbiter ------------------------------------------------------- #
    def _on_ask(self, msg) -> None:
        if self.node != self.arbiter:
            raise ProtocolError(f"{self.name}: ask at non-arbiter")
        self._queue.append(msg.src)
        self._dispatch()

    def _dispatch(self) -> None:
        if not self._queue:
            return
        nxt = self._queue.popleft()
        if self._holder == self.node and self._holds_token:
            # Arbiter holds the token itself.
            if self.state is PeerState.CS:
                self._pending_handoff = nxt
                self._holder = nxt
                self._notify_pending()
            else:
                self._holds_token = False
                self._holder = nxt
                self._send(nxt, "token")
        else:
            self._send(self._holder, "handoff", {"next": nxt})
            self._holder = nxt

    # -- holders ------------------------------------------------------- #
    def _on_handoff(self, msg) -> None:
        nxt = msg.payload["next"]
        if self._holds_token and self.state is not PeerState.CS:
            self._holds_token = False
            self._send(nxt, "token")
        else:
            self._pending_handoff = nxt
            if self.state is PeerState.CS:
                self._notify_pending()

    def _on_token(self, msg) -> None:
        if self._holds_token:
            raise ProtocolError(f"{self.name}: second token")
        self._holds_token = True
        if self.state is not PeerState.REQ:
            raise ProtocolError(f"{self.name}: token in {self.state.value}")
        self._grant()


register(AlgorithmInfo(
    name="direct-handoff",
    peer_class=DirectHandoffPeer,
    token_based=True,
    topology="star + direct hops",
    messages_per_cs="4",
    paper_section="examples/custom_algorithm.py",
))

result = run_experiment(ExperimentConfig(
    intra="naimi",
    inter="direct-handoff",   # <- the new algorithm, by name
    n_clusters=6, apps_per_cluster=3, n_cs=12, rho=18.0, seed=3,
))
print(f"composition       : {result.name}")
print(f"critical sections : {result.cs_count}")
print(f"obtaining time    : {result.obtaining.mean:.2f} ms "
      f"(std {result.obtaining.std:.2f})")
print(f"inter msgs per CS : {result.inter_messages_per_cs:.2f}")
print("\nThe safety checker ran on every CS: a custom algorithm that "
      "violated mutual exclusion would have aborted the run.")
