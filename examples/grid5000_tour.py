"""A tour of the simulated Grid'5000 platform (paper §4.1, Figure 3).

Prints the embedded RTT matrix, demonstrates how the latency hierarchy
shapes a single token round-trip, and shows why the paper's results
depend on *where* the token currently sits.

Run:  python examples/grid5000_tour.py
"""

import numpy as np

from repro.grid import (
    GRID5000_RTT_MS,
    GRID5000_SITES,
    grid5000_latency,
    grid5000_topology,
)
from repro.metrics import format_matrix
from repro.net import Network
from repro.sim import Simulator

print("Grid'5000 average RTT latencies (ms), paper Figure 3:")
print(format_matrix(GRID5000_SITES, GRID5000_RTT_MS))

m = GRID5000_RTT_MS
off = m[~np.eye(len(GRID5000_SITES), dtype=bool)]
i, j = divmod(int(np.argmax(m)), len(GRID5000_SITES))
print(f"\nLAN RTTs stay below {m.diagonal().max():.3f} ms, while WAN RTTs "
      f"range {off.min():.2f}-{off.max():.2f} ms")
print(f"worst path: {GRID5000_SITES[i]} -> {GRID5000_SITES[j]} "
      f"({m[i, j]:.1f} ms RTT — the pathological link the paper measured)")

# ----------------------------------------------------------------------
# One simulated request/token round-trip per destination site.
# ----------------------------------------------------------------------
topology = grid5000_topology(nodes_per_cluster=2)
sim = Simulator(seed=0)
net = Network(sim, topology, grid5000_latency(topology))

echoes = {}


def serve(msg):
    # Token holder side: bounce the "token" straight back.
    net.send(msg.dst, msg.src, "demo", "token", {"to": msg.payload["origin"]})


def receive(msg):
    echoes[msg.payload["to"]] = sim.now


for node in topology.nodes:
    net.register(node, "demo", serve if node % 2 else receive)

orsay_node = 0  # requester in orsay
for site_index in range(1, topology.n_clusters):
    holder = topology.cluster_nodes(site_index)[1]
    net.send(orsay_node, holder, "demo", "request",
             {"origin": site_index}, )
sim.run()

print("\nsimulated obtaining time for an orsay process when the token "
      "idles at each site\n(request one-way + token one-way):")
for site_index in range(1, topology.n_clusters):
    print(f"  token at {GRID5000_SITES[site_index]:<9}: "
          f"{echoes[site_index]:7.3f} ms")

print("\nThis spread is exactly why the paper measures the obtaining "
      "time's standard\ndeviation (Figure 5): with a heterogeneous WAN, "
      "the same request is cheap or\nexpensive depending on where the "
      "token happens to be.")
