"""Multi-level hierarchies (paper §6) with latency-derived zones.

The paper notes its two-level approach "can be easily extended to
multiple levels of algorithm hierarchy".  This example builds a
**three-level** composition over the Grid'5000 platform:

1. the zone layout is *derived from the paper's own RTT matrix*
   (Figure 3) by agglomerative clustering — WAN-close sites such as
   toulouse/bordeaux (3.1 ms) and grenoble/lyon (3.3 ms) share a zone;
2. Naimi-Tréhel runs inside clusters, inside zones, and at the top;
3. the run is compared with the plain two-level composition on
   top-level traffic.

Run:  python examples/multilevel_hierarchy.py
"""

from repro.core import Composition, MultilevelComposition
from repro.grid import (
    GRID5000_RTT_MS,
    GRID5000_SITES,
    derive_zones,
    grid5000_latency,
    grid5000_topology,
    zone_spread,
)
from repro.net import Network
from repro.sim import Simulator
from repro.workload import deploy_workload

zones = derive_zones(GRID5000_RTT_MS, 3)
print("zones derived from the Figure 3 latency matrix:")
for zi, members in enumerate(zones):
    names = ", ".join(GRID5000_SITES[s] for s in members)
    print(f"  zone {zi}: {names}")
spread = zone_spread(GRID5000_RTT_MS, zones)
print(f"mean RTT inside a zone : {spread['intra_mean_ms']:.1f} ms")
print(f"mean RTT between zones : {spread['inter_mean_ms']:.1f} ms "
      f"(separation {spread['separation']:.1f}x)\n")


def run(levels: str):
    sim = Simulator(seed=21)
    # 3 app processes per site + up to 2 coordinator slots.
    topology = grid5000_topology(nodes_per_cluster=5)
    net = Network(sim, topology, grid5000_latency(topology))
    if levels == "three":
        system = MultilevelComposition(
            sim, net, topology, zones, ["naimi", "naimi", "naimi"]
        )
        top_prefix = "l2/"
    else:
        system = Composition(sim, net, topology, intra="naimi", inter="naimi")
        top_prefix = "inter"
    apps, collector = deploy_workload(system, alpha_ms=10.0, rho=45.0, n_cs=10)
    sim.run()
    assert all(a.done for a in apps)
    top_msgs = sum(
        count for port, count in net.stats.by_port.items()
        if port.startswith(top_prefix)
    )
    return system.name, collector.obtaining_stats(), top_msgs, collector.cs_count


for levels in ("two", "three"):
    name, stats, top_msgs, cs = run(levels)
    print(f"{levels}-level ({name}):")
    print(f"  obtaining time     : {stats.mean:.1f} ms (std {stats.std:.1f})")
    print(f"  top-level messages : {top_msgs} for {cs} CS "
          f"({top_msgs / cs:.2f}/CS)\n")

print("The zone level absorbs token traffic between latency-close sites, "
      "so the\ntop-level (cross-zone) algorithm sees far fewer requests.")
