"""Quickstart: run one two-level composition on the simulated Grid'5000.

Builds the paper's default setup at a reduced scale — 9 sites, 4
application processes each, Naimi-Tréhel inside clusters and Martin's
ring between coordinators — and prints the paper's three metrics.

Run:  python examples/quickstart.py
"""

from repro import run_composition, run_flat

# rho = beta/alpha is the degree of parallelism; rho == N (here 36)
# is the boundary of the paper's "low parallelism" class.
N = 9 * 4
RHO = 1.0 * N

composed = run_composition(
    intra="naimi",          # tree algorithm inside every cluster
    inter="martin",         # ring algorithm between the 9 coordinators
    rho=RHO,
    apps_per_cluster=4,
    n_cs=20,                # critical sections per process
    seed=42,
)
flat = run_flat(            # the "original algorithm" baseline
    algorithm="naimi",
    rho=RHO,
    apps_per_cluster=4,
    n_cs=20,
    seed=42,
)

for result in (composed, flat):
    print(f"== {result.name} ==")
    print(f"  critical sections executed : {result.cs_count}")
    print(f"  obtaining time             : {result.obtaining.mean:.2f} ms "
          f"(std {result.obtaining.std:.2f} ms)")
    print(f"  inter-cluster messages/CS  : {result.inter_messages_per_cs:.2f}")
    print(f"  total messages/CS          : {result.messages_per_cs:.2f}")
    print()

gain = flat.obtaining.mean / composed.obtaining.mean
saving = 1 - composed.inter_messages_per_cs / flat.inter_messages_per_cs
print(f"The composition obtains the CS {gain:.2f}x faster and sends "
      f"{saving:.0%} fewer inter-cluster messages than the flat baseline.")
