"""Watching the token travel: CS timelines and cluster locality.

Runs the same contended workload under the composition and under the
flat algorithm, then draws each run's critical-section gantt (one row
per Grid'5000 site) and the token's journey at cluster granularity.
The composition's batching — long same-cluster bursts while the inter
token is home — is the visual counterpart of Figure 4(b)'s message
savings.

Run:  python examples/token_journey.py
"""

from repro.core import Composition, FlatMutex
from repro.grid import grid5000_latency, grid5000_topology
from repro.metrics import TimelineRecorder
from repro.net import Network
from repro.sim import Simulator
from repro.workload import deploy_workload


def run(kind: str) -> TimelineRecorder:
    sim = Simulator(seed=12)
    topology = grid5000_topology(nodes_per_cluster=3, n_sites=5)
    net = Network(sim, topology, grid5000_latency(topology))
    if kind == "composition":
        system = Composition(sim, net, topology, intra="naimi", inter="naimi")
    else:
        system = FlatMutex(sim, net, topology, algorithm="naimi")
    timeline = TimelineRecorder(sim.trace, topology, system.app_nodes)
    apps, _ = deploy_workload(system, alpha_ms=10.0, rho=4.0, n_cs=8)
    sim.run()
    assert all(a.done for a in apps)
    return timeline


for kind in ("composition", "flat"):
    timeline = run(kind)
    print(f"=== {kind} (naimi-naimi vs flat naimi, rho/N = 0.27) ===")
    print(timeline.render(width=66))
    runs = timeline.cluster_runs()
    longest = max(length for _, length in runs)
    print(f"token journey: {len(runs)} cluster visits for "
          f"{len(timeline.entry_clusters())} critical sections; "
          f"longest same-cluster burst = {longest}")
    print(f"locality ratio = {timeline.locality_ratio():.2f}")
    print()

print("Under the composition roughly half of all CS handovers stay "
      "inside one cluster\n(the coordinator drains the local queue "
      "before giving up the inter token); the\nflat tree hops to "
      "another site after almost every single critical section.")
