#!/usr/bin/env python
"""End-to-end smoke test of the experiment cache (used by CI).

Runs ``reproduce_all`` twice against one fresh cache directory:

1. **cold** — every cell misses, results are computed and stored;
2. **warm** — the same sweep again (the in-process sweep memo is
   cleared first, so results really come from disk).

Asserts that the warm pass scored at least one hit and zero misses,
that it was faster, and that every figure file the two passes wrote is
byte-for-byte identical — cached results must be indistinguishable
from computed ones.

Usage::

    python scripts/cache_smoke.py [--full] [--verify N]

Exit status: 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import filecmp
import os
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.cache import ExperimentCache  # noqa: E402
from repro.experiments import (  # noqa: E402
    PAPER_SCALE,
    QUICK_SCALE,
    clear_sweep_memo,
    reproduce_all,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper scale (minutes; default: quick)")
    parser.add_argument("--verify", type=int, default=0, metavar="N",
                        help="re-execute every N-th warm hit and compare")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.full else QUICK_SCALE

    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        cold_dir = os.path.join(tmp, "cold")
        warm_dir = os.path.join(tmp, "warm")

        cold_cache = ExperimentCache(cache_dir=cache_dir)
        t0 = time.perf_counter()
        cold_figures = reproduce_all(cold_dir, scale=scale, cache=cold_cache)
        cold_s = time.perf_counter() - t0
        print(f"cold: {cold_cache.stats.format()}  ({cold_s:.2f}s)")
        if cold_cache.stats.stores == 0:
            print("FAIL: cold pass stored nothing")
            return 1

        clear_sweep_memo()  # force the warm pass back to the disk store
        warm_cache = ExperimentCache(cache_dir=cache_dir,
                                     verify_every=args.verify)
        t0 = time.perf_counter()
        warm_figures = reproduce_all(warm_dir, scale=scale, cache=warm_cache)
        warm_s = time.perf_counter() - t0
        print(f"warm: {warm_cache.stats.format()}  ({warm_s:.2f}s, "
              f"{cold_s / max(warm_s, 1e-9):.1f}x faster)")

        failures = []
        if warm_cache.stats.hits < 1:
            failures.append("warm pass scored no cache hits")
        if warm_cache.stats.misses:
            failures.append(
                f"warm pass missed {warm_cache.stats.misses} time(s)"
            )
        if warm_cache.stats.verify_failures:
            failures.append(
                f"{warm_cache.stats.verify_failures} verified hit(s) "
                "did not match re-execution"
            )
        if sorted(cold_figures) != sorted(warm_figures):
            failures.append("cold and warm passes produced different figures")

        for name in sorted(os.listdir(cold_dir)):
            a, b = os.path.join(cold_dir, name), os.path.join(warm_dir, name)
            if not os.path.exists(b):
                failures.append(f"{name}: missing from warm output")
            elif name != "summary.json" and not filecmp.cmp(a, b, shallow=False):
                # summary.json legitimately differs (timings + cache stats)
                failures.append(f"{name}: cold and warm output differ")

        if failures:
            for line in failures:
                print(f"FAIL: {line}")
            return 1
        print(f"ok: {warm_cache.stats.hits} hit(s), "
              f"figure outputs byte-identical")
        return 0


if __name__ == "__main__":
    sys.exit(main())
