#!/usr/bin/env python
"""End-to-end smoke test of the experiment farm (used by CI).

Brings up the real thing — ``FarmServer`` with a two-worker subprocess
fleet over a fresh farm directory — and walks the full lifecycle:

1. **cold** — submit the fig4 sweep, SIGKILL one worker mid-run (its
   chunk lease expires and a peer re-claims it; the server monitor
   respawns the dead worker), fetch, and compare every result
   byte-for-byte against a serial single-process baseline;
2. **warm** — wipe the job queue and resubmit: the fleet re-claims every
   chunk and must serve the whole sweep from the shared store
   (zero misses), byte-identical to the cold pass;
3. **figures** — render fig4a through the HTTP cache tier
   (``HttpCache``, the ``--cache-url`` path) and compare the CSV
   byte-for-byte against the baseline render.

Usage::

    python scripts/farm_smoke.py [--full]

Exit status: 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.cache.store import ExperimentCache, canonical_dumps  # noqa: E402
from repro.experiments import (  # noqa: E402
    PAPER_SCALE,
    QUICK_SCALE,
    clear_sweep_memo,
    run_configs_cached,
)
from repro.experiments.export import figure_to_csv  # noqa: E402
from repro.experiments.figures import fig4a, figure_configs  # noqa: E402
from repro.farm import FarmClient, FarmServer, HttpCache  # noqa: E402
from repro.farm.worker import SLOW_MS_ENV  # noqa: E402

FIGURE = "fig4a"


def _wait(predicate, timeout_s, poll_s=0.05, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        got = predicate()
        if got:
            return got
        time.sleep(poll_s)
    raise TimeoutError(f"timed out waiting for {what}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper scale (minutes; default: quick)")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.full else QUICK_SCALE
    configs = figure_configs(FIGURE, scale)
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-farm-smoke-") as tmp:
        # -- serial baseline (single process, its own store) ----------- #
        baseline_cache = ExperimentCache(cache_dir=os.path.join(tmp, "serial"))
        t0 = time.perf_counter()
        baseline = run_configs_cached(configs, baseline_cache, max_workers=1)
        print(f"serial baseline: {len(baseline)} configs "
              f"({time.perf_counter() - t0:.2f}s)")
        clear_sweep_memo()
        baseline_csv = figure_to_csv(fig4a(scale, cache=baseline_cache))

        # -- the farm -------------------------------------------------- #
        # slow each config slightly so the kill provably lands mid-run
        os.environ[SLOW_MS_ENV] = "40"
        server = FarmServer(
            farm_dir=os.path.join(tmp, "farm"),
            workers=2,
            chunk_size=2,
            lease_timeout_s=1.0,
        )
        server.start()
        try:
            client = FarmClient(server.url, timeout_s=15.0)
            print(f"server up at {server.url}, "
                  f"workers={client.workers()}")

            # cold pass with an injected worker kill
            job = client.submit(configs)
            job_id = job["job_id"]
            _wait(lambda: client.status(job_id)["leases"] > 0,
                  30.0, what="a worker to claim a chunk")
            victim = client.workers()[0]
            os.kill(victim, signal.SIGKILL)
            print(f"cold: SIGKILLed worker pid={victim} mid-run")

            t0 = time.perf_counter()
            cold_results, cold_stats = client.fetch(
                job_id, poll_s=0.1, deadline_s=600.0
            )
            print(f"cold: {cold_stats.format()}  "
                  f"({time.perf_counter() - t0:.2f}s)")

            health = client.health()
            if health["respawns"] < 1:
                failures.append("server never respawned the killed worker")
            if cold_stats.hits + cold_stats.misses != len(configs):
                failures.append(
                    f"cold stats not conserved: {cold_stats.hits} hits + "
                    f"{cold_stats.misses} misses != {len(configs)}"
                )
            mismatched = sum(
                canonical_dumps(a) != canonical_dumps(b)
                for a, b in zip(cold_results, baseline)
            )
            if mismatched:
                failures.append(
                    f"cold: {mismatched} result(s) differ from serial"
                )

            # warm pass: wipe the queue, keep the store
            shutil.rmtree(server.store.jobs_dir)
            warm_job = client.submit(configs)
            t0 = time.perf_counter()
            warm_results, warm_stats = client.fetch(
                warm_job["job_id"], poll_s=0.1, deadline_s=600.0
            )
            print(f"warm: {warm_stats.format()}  "
                  f"({time.perf_counter() - t0:.2f}s)")
            if warm_stats.misses:
                failures.append(
                    f"warm pass missed {warm_stats.misses} time(s)"
                )
            if warm_stats.hits != len(configs):
                failures.append("warm pass was not served fully from cache")
            if any(
                canonical_dumps(a) != canonical_dumps(b)
                for a, b in zip(warm_results, cold_results)
            ):
                failures.append("warm results differ from cold results")

            # figures through the HTTP cache tier (the --cache-url path)
            clear_sweep_memo()
            http_cache = HttpCache(server.url, timeout_s=15.0)
            farm_csv = figure_to_csv(fig4a(scale, cache=http_cache))
            print(f"figure via HTTP tier: {http_cache.stats.format()}")
            if http_cache.stats.misses:
                failures.append(
                    f"figure render missed the HTTP tier "
                    f"{http_cache.stats.misses} time(s)"
                )
            if farm_csv != baseline_csv:
                failures.append(
                    f"{FIGURE}.csv differs between farm and serial render"
                )

            client.drain()
        finally:
            server.shutdown()
            os.environ.pop(SLOW_MS_ENV, None)

    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print(f"ok: {len(configs)} configs, worker kill healed, warm pass "
          f"all hits, {FIGURE}.csv byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
