#!/usr/bin/env python
"""Run the performance-benchmark suite and record the trajectory.

Usage (from the repository root)::

    python scripts/run_bench.py                  # quick mode, write benchmarks/results/BENCH_<stamp>.json
    python scripts/run_bench.py --full           # paper-scale (minutes)
    python scripts/run_bench.py --check latest   # also gate vs newest committed report
    python scripts/run_bench.py --check benchmarks/results/BENCH_20260807T000000Z.json --threshold 0.2
    python scripts/run_bench.py --out /tmp/b.json  # write the report elsewhere
    python scripts/run_bench.py --no-write       # measure only, e.g. while iterating

The regression gate normalizes events/sec by each report's
``machine_score`` so reports from different machines stay comparable; see
``docs/performance.md`` for how to read the output.

Exit status: 0 on success, 1 when the regression gate fails.
"""

from __future__ import annotations

import argparse
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for entry in (os.path.join(ROOT, "src"), ROOT):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf import (  # noqa: E402
    SCENARIOS,
    check_memory_budget,
    check_regression,
    latest_bench_file,
    load_report,
    machine_score,
    run_suite,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale scenarios (default: quick)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timings per scenario; best (min wall) is kept")
    parser.add_argument("--scenario", action="append", choices=SCENARIOS,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a BENCH_*.json file, or "
                             "'latest' for the newest committed report")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional events/sec regression "
                             "(default 0.20)")
    parser.add_argument("--out", metavar="PATH",
                        help="report destination: a file path, or a "
                             "directory to receive BENCH_<stamp>.json "
                             "(default: benchmarks/results/)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write a benchmark report")
    args = parser.parse_args(argv)

    mode = "full" if args.full else "quick"
    print(f"# benchmark suite ({mode} mode, repeats={args.repeats})")
    score = machine_score()
    print(f"machine_score: {score:,.0f} ops/s")
    results = run_suite(quick=not args.full, repeats=args.repeats,
                        scenarios=args.scenario)

    width = max(len(n) for n in results)
    header = (f"{'scenario':<{width}}  {'events':>9}  {'events/s':>11}  "
              f"{'msgs/s':>11}  {'wall s':>8}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        print(f"{name:<{width}}  {r['events']:>9,}  {r['events_per_s']:>11,.0f}  "
              f"{r['messages_per_s']:>11,.0f}  {r['wall_s']:>8.3f}")

    # Backend-equivalence gate: the tracked fig4 pair carries the
    # event-stream digest of each backend leg; any divergence means the
    # compiled backend is no longer bit-identical and the speedup number
    # is meaningless — fail before writing/checking anything else.
    interp = results.get("fig4_composition_interpreted")
    comp = results.get("fig4_composition_compiled")
    if interp and comp:
        if interp["digest"] != comp["digest"]:
            print("backend digest gate: FAIL — compiled diverged from "
                  "interpreted")
            print(f"  interpreted: {interp['digest']}")
            print(f"  compiled   : {comp['digest']}")
            return 1
        print(f"backend digest gate: ok ({str(interp['digest'])[:16]}...)")

    # Memory gauge: the scale-out scenarios carry a peak-RSS reading and
    # an absolute budget; a breach means O(N) memory regressed.
    mem_failures = check_memory_budget(results)
    gauged = [n for n, r in results.items() if "peak_rss_mb" in r]
    if mem_failures:
        print("memory budget gate: FAIL")
        for line in mem_failures:
            print(f"  {line}")
        return 1
    if gauged:
        peak = max(results[n]["peak_rss_mb"] for n in gauged)
        print(f"memory budget gate: ok (peak RSS {peak:,.1f} MB)")

    written = None
    if not args.no_write:
        written = write_report(results, mode, ROOT, score=score, out=args.out)
        print(f"wrote {os.path.relpath(written, ROOT)}")

    if args.check:
        base_path = args.check
        if base_path == "latest":
            base_path = latest_bench_file(ROOT, exclude=written)
            if base_path is None:
                print("no committed BENCH_*.json to compare against; "
                      "gate skipped")
                return 0
        baseline = load_report(base_path)
        current = {"machine_score": score, "scenarios": results}
        failures = check_regression(baseline, current, args.threshold)
        print(f"regression gate vs {os.path.basename(base_path)} "
              f"(threshold {args.threshold:.0%}):", end=" ")
        if failures:
            print("FAIL")
            for line in failures:
                print(f"  {line}")
            return 1
        print("ok")
        # informative: speedup on the acceptance microbench
        base = baseline.get("scenarios", {}).get("fig4_composition")
        cur = results.get("fig4_composition")
        if base and cur:
            print(f"fig4_composition speedup vs baseline: "
                  f"{cur['events_per_s'] / base['events_per_s']:.2f}x raw")
    return 0


if __name__ == "__main__":
    sys.exit(main())
