#!/usr/bin/env python
"""Run the performance-benchmark suite and record the trajectory.

Usage (from the repository root)::

    python scripts/run_bench.py                  # quick mode, write benchmarks/results/BENCH_<stamp>.json
    python scripts/run_bench.py --full           # paper-scale (minutes)
    python scripts/run_bench.py --check latest   # also gate vs newest committed report
    python scripts/run_bench.py --check benchmarks/results/BENCH_20260807T000000Z.json --threshold 0.2
    python scripts/run_bench.py --out /tmp/b.json  # write the report elsewhere
    python scripts/run_bench.py --no-write       # measure only, e.g. while iterating
    python scripts/run_bench.py --history        # events/s trajectory across all committed reports

The regression gate normalizes events/sec by each report's
``machine_score`` so reports from different machines stay comparable; see
``docs/performance.md`` for how to read the output.

Exit status: 0 on success, 1 when the regression gate fails.
"""

from __future__ import annotations

import argparse
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for entry in (os.path.join(ROOT, "src"), ROOT):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf import (  # noqa: E402
    SCENARIOS,
    check_memory_budget,
    check_regression,
    format_history,
    history_rows,
    latest_bench_file,
    load_report,
    machine_score,
    machine_score_probes,
    probe_spread,
    run_suite,
    write_report,
)

#: Digest-equality gate: each pair is (serial twin, variant leg); any
#: divergence means the variant is no longer bit-identical and its
#: speedup number is meaningless.
DIGEST_PAIRS = (
    ("fig4_composition_interpreted", "fig4_composition_compiled"),
    ("fig4_composition_interpreted", "fig4_composition_horizon"),
    ("fig4_twotier_1k", "fig4_twotier_1k_horizon"),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale scenarios (default: quick)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timings per scenario; best (min wall) is kept")
    parser.add_argument("--scenario", action="append", choices=SCENARIOS,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a BENCH_*.json file, or "
                             "'latest' for the newest committed report")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional events/sec regression "
                             "(default 0.20)")
    parser.add_argument("--out", metavar="PATH",
                        help="report destination: a file path, or a "
                             "directory to receive BENCH_<stamp>.json "
                             "(default: benchmarks/results/)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write a benchmark report")
    parser.add_argument("--history", action="store_true",
                        help="print the events/s trajectory across every "
                             "committed BENCH_*.json and exit")
    args = parser.parse_args(argv)

    if args.history:
        print(format_history(history_rows(ROOT), threshold=args.threshold))
        return 0

    mode = "full" if args.full else "quick"
    print(f"# benchmark suite ({mode} mode, repeats={args.repeats})")
    probes = machine_score_probes()
    score = machine_score(probes)
    spread = probe_spread(probes)
    print(f"machine_score: {score:,.0f} ops/s "
          f"(median of {len(probes)} probes, spread {spread:.1%})")
    results = run_suite(quick=not args.full, repeats=args.repeats,
                        scenarios=args.scenario)

    width = max(len(n) for n in results)
    header = (f"{'scenario':<{width}}  {'events':>9}  {'events/s':>11}  "
              f"{'msgs/s':>11}  {'wall s':>8}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        print(f"{name:<{width}}  {r['events']:>9,}  {r['events_per_s']:>11,.0f}  "
              f"{r['messages_per_s']:>11,.0f}  {r['wall_s']:>8.3f}")

    # Equivalence gate: each tracked pair carries the event-stream
    # digest of both legs; any divergence means the variant (compiled
    # dispatch, horizon windows) is no longer bit-identical and its
    # speedup number is meaningless — fail before writing anything else.
    for serial_name, variant_name in DIGEST_PAIRS:
        serial = results.get(serial_name)
        variant = results.get(variant_name)
        if not (serial and variant):
            continue
        if serial["digest"] != variant["digest"]:
            print(f"digest gate: FAIL — {variant_name} diverged from "
                  f"{serial_name}")
            print(f"  {serial_name}: {serial['digest']}")
            print(f"  {variant_name}: {variant['digest']}")
            return 1
        print(f"digest gate ({variant_name} vs {serial_name}): "
              f"ok ({str(serial['digest'])[:16]}...)")

    # Memory gauge: the scale-out scenarios carry a peak-RSS reading and
    # an absolute budget; a breach means O(N) memory regressed.
    mem_failures = check_memory_budget(results)
    gauged = [n for n, r in results.items() if "peak_rss_mb" in r]
    if mem_failures:
        print("memory budget gate: FAIL")
        for line in mem_failures:
            print(f"  {line}")
        return 1
    if gauged:
        peak = max(results[n]["peak_rss_mb"] for n in gauged)
        print(f"memory budget gate: ok (peak RSS {peak:,.1f} MB)")

    written = None
    if not args.no_write:
        written = write_report(results, mode, ROOT, score=score,
                               out=args.out, spread=spread)
        print(f"wrote {os.path.relpath(written, ROOT)}")

    if args.check:
        base_path = args.check
        if base_path == "latest":
            base_path = latest_bench_file(ROOT, exclude=written)
            if base_path is None:
                print("no committed BENCH_*.json to compare against; "
                      "gate skipped")
                return 0
        baseline = load_report(base_path)
        current = {"machine_score": score, "machine_score_spread": spread,
                   "scenarios": results}
        failures = check_regression(baseline, current, args.threshold)
        print(f"regression gate vs {os.path.basename(base_path)} "
              f"(threshold {args.threshold:.0%}):", end=" ")
        if failures:
            print("FAIL")
            for line in failures:
                print(f"  {line}")
            return 1
        print("ok")
        # informative: speedup on the acceptance microbench
        base = baseline.get("scenarios", {}).get("fig4_composition")
        cur = results.get("fig4_composition")
        if base and cur:
            print(f"fig4_composition speedup vs baseline: "
                  f"{cur['events_per_s'] / base['events_per_s']:.2f}x raw")
    return 0


if __name__ == "__main__":
    sys.exit(main())
