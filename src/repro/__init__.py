"""repro — reproduction of "A Composition Approach to Mutual Exclusion
Algorithms for Grid Applications" (Sopena, Legond-Aubry, Arantes, Sens,
ICPP 2007).

The library provides:

* a deterministic discrete-event simulator (:mod:`repro.sim`) with a
  latency-hierarchy network model (:mod:`repro.net`, :mod:`repro.grid`)
  standing in for the Grid'5000 testbed;
* the paper's three token-based mutual exclusion algorithms — Martin's
  ring, Naimi-Tréhel's tree, Suzuki-Kasami's broadcast — plus several
  extension/baseline algorithms (:mod:`repro.mutex`);
* the paper's contribution: a hierarchical *composition* of any intra-
  cluster algorithm with any inter-cluster algorithm through per-cluster
  coordinator processes (:mod:`repro.core`);
* workload, metric, verification and experiment layers that regenerate
  every figure of the paper's evaluation (:mod:`repro.workload`,
  :mod:`repro.metrics`, :mod:`repro.verify`, :mod:`repro.experiments`).

Quickstart::

    from repro import run_composition
    result = run_composition(intra="naimi", inter="martin", rho=180.0)
    print(result.obtaining_time.mean, result.inter_messages_per_cs)
"""

from .errors import (
    CompositionError,
    ConfigurationError,
    LivenessViolation,
    NetworkError,
    ProtocolError,
    ReproError,
    SafetyViolation,
    SimulationError,
    TopologyError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "NetworkError",
    "TopologyError",
    "ProtocolError",
    "CompositionError",
    "SafetyViolation",
    "LivenessViolation",
    "ConfigurationError",
    "__version__",
]


def __getattr__(name):
    # Lazy re-exports keep `import repro` light while offering a flat
    # convenience API once the heavier layers are needed.
    if name in {"run_composition", "run_flat", "ExperimentResult"}:
        from .experiments import runner

        return getattr(runner, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
