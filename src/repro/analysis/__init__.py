"""Static analysis for the reproduction's determinism contracts.

The simulator's central promise — one ``(configuration, seed)`` pair maps
to exactly one observable event stream (pinned by the golden
:class:`~repro.verify.digest.RunDigest` matrix) — and the paper's
composition-purity invariant ("the composed algorithms need **no
modification**", §3.1) are behavioural properties.  This package enforces
them *statically*, before a single event fires:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.engine` — an
  AST-based linter with repro-specific rules (RPR001-RPR008): no
  wall-clock reads, no stdlib ``random``, no unordered ``set``/``dict``
  iteration inside message handlers, no kernel re-entry from handlers, no
  coordinator imports from ``repro.mutex``, no mutable default arguments.
* :mod:`repro.analysis.effects` — a handler-effect extractor that walks
  each algorithm's AST into a per-message-kind send graph and
  cross-checks worst-case message counts against the paper's analytical
  models in :mod:`repro.experiments.theory`.
* :mod:`repro.analysis.sanitizer` — a schedule-race sanitizer that
  re-runs configurations under perturbed same-timestamp tie-breaking
  (:attr:`repro.experiments.config.ExperimentConfig.tie_seed`) and fails
  on any observable divergence.

Command line: ``python -m repro.analysis --help`` (see ``docs/analysis.md``).
"""

from .effects import (
    AlgorithmEffects,
    ConformanceFinding,
    check_conformance,
    extract_algorithm_effects,
)
from .engine import AnalysisReport, Baseline, Engine, Violation
from .rules import DEFAULT_RULES, Rule
from .sanitizer import (
    CanonicalDigest,
    SanitizerReport,
    default_sanitizer_matrix,
    sanitize_config,
    sanitize_matrix,
)

__all__ = [
    "AlgorithmEffects",
    "AnalysisReport",
    "Baseline",
    "CanonicalDigest",
    "ConformanceFinding",
    "DEFAULT_RULES",
    "Engine",
    "Rule",
    "SanitizerReport",
    "Violation",
    "check_conformance",
    "default_sanitizer_matrix",
    "extract_algorithm_effects",
    "sanitize_config",
    "sanitize_matrix",
]
