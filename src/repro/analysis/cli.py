"""``python -m repro.analysis`` — the review-time correctness gate.

Modes (combinable; all requested modes run, the exit code is the OR):

* default / ``--lint`` — run the RPR rules over the given paths
  (default ``src/repro``, falling back to the installed package);
* ``--conformance`` — static protocol-conformance checks over
  ``repro.mutex`` *and* the ``repro.compile`` fast tables (send-graph
  closure, worst-case bounds vs theory, interpreted/compiled handler
  equivalence);
* ``--sanitize`` — run the schedule-race sanitizer matrix (executes
  simulations; seconds, not milliseconds);
* ``--explore`` — exhaustive small-scope model checking: drive the real
  algorithms through every admissible interleaving at small scope and
  check safety / deadlock-freedom / eventual entry, cross-checking the
  interpreted and compiled backends state-for-state (see
  :mod:`repro.analysis.explore` and ``docs/analysis.md``);
* ``--replay FILE`` — re-execute a counterexample produced by
  ``--explore`` (optionally rendering it with ``--trace-out``);
* ``--check`` — shorthand for ``--lint --conformance`` (the CI gate).

``--json`` switches the combined output of all requested modes to one
machine-readable document (schema pinned by
``tests/analysis/test_cli.py``).

Exit codes: 0 clean, 1 violations/divergence found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .engine import Baseline, Engine

__all__ = ["main"]

#: bumped when the shape of the ``--json`` document changes
JSON_SCHEMA_VERSION = 1


def _default_paths() -> List[Path]:
    src = Path("src/repro")
    if src.is_dir():
        return [src]
    return [Path(__file__).resolve().parent.parent]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism lint, protocol conformance, schedule-race "
        "sanitizing and small-scope model checking for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument("--lint", action="store_true", help="run the RPR lint rules")
    parser.add_argument(
        "--conformance",
        action="store_true",
        help="run static protocol-conformance checks over repro.mutex "
        "and the repro.compile fast tables",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the schedule-race sanitizer matrix (runs simulations)",
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="run the small-scope model-checking matrix (runs simulations)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: --lint --conformance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted violations (stale entries are "
        "reported and fail the run)",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current violations as a baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="lint report format (text mode only; see --json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document combining every "
        "requested mode",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the RPR rules and exit"
    )
    parser.add_argument(
        "--tie-seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="tie seeds for --sanitize (default: 1 2 3)",
    )
    explore = parser.add_argument_group("explore options")
    explore.add_argument(
        "--explore-cells",
        metavar="SUBSTR",
        default=None,
        help="only run matrix cells whose name contains SUBSTR "
        "(e.g. 'flat:naimi', 'crash')",
    )
    explore.add_argument(
        "--explore-backend",
        choices=("interpreted", "compiled", "both"),
        default="both",
        help="backends to run eligible cells under (default: both, "
        "cross-checking their explored-state fingerprints)",
    )
    explore.add_argument(
        "--explore-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-exploration wall-clock budget (a cell that exhausts it "
        "is reported incomplete and fails)",
    )
    explore.add_argument(
        "--full-expansion",
        action="store_true",
        help="disable the sleep-set reduction (debug aid; explores the "
        "same states through every redundant interleaving)",
    )
    explore.add_argument(
        "--counterexamples",
        type=Path,
        default=None,
        metavar="DIR",
        help="write each violation as a replayable counterexample JSON "
        "under DIR",
    )
    replay = parser.add_argument_group("replay options")
    replay.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="FILE",
        help="re-execute a counterexample document step by step",
    )
    replay.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="with --replay: write a Chrome traceEvents rendering of the "
        "counterexample (load in ui.perfetto.dev)",
    )
    return parser


def _run_lint(
    args: argparse.Namespace, json_out: Optional[Dict[str, Any]]
) -> int:
    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}")
        return 2
    baseline: Optional[Baseline] = None
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"error: baseline file not found: {args.baseline}")
            return 2
        baseline = Baseline.load(args.baseline)
    engine = Engine()
    report = engine.check_paths(paths, baseline=baseline, root=Path.cwd())
    if args.write_baseline is not None:
        Baseline.from_violations(report.violations).save(args.write_baseline)
        print(
            f"wrote {len(report.violations)} suppression(s) to "
            f"{args.write_baseline} — fill in the reasons"
        )
        return 0
    status = 1 if (report.stale_suppressions or not report.ok) else 0
    if json_out is not None:
        json_out["lint"] = json.loads(report.to_json())
        json_out["lint"]["ok"] = status == 0
    else:
        print(report.to_json() if args.format == "json" else report.format())
    return status


def _run_conformance(json_out: Optional[Dict[str, Any]]) -> int:
    from .effects import check_compile_conformance, check_conformance

    findings, effects = check_conformance()
    compile_findings, fast = check_compile_conformance()
    all_findings = [*findings, *compile_findings]
    status = 0 if not all_findings else 1
    if json_out is not None:
        json_out["conformance"] = {
            "ok": status == 0,
            "algorithms": sorted(effects),
            "compiled_classes": sorted(fast),
            "findings": [
                {
                    "algorithm": f.algorithm,
                    "kind": f.kind,
                    "message": f.message,
                }
                for f in all_findings
            ],
        }
    else:
        for finding in all_findings:
            print(finding.format())
        print(
            f"conformance: {len(effects)} algorithm(s), "
            f"{len(fast)} compiled class(es) checked, "
            f"{len(all_findings)} finding(s)"
        )
    return status


def _run_sanitizer(
    tie_seeds: Optional[Sequence[int]], json_out: Optional[Dict[str, Any]]
) -> int:
    from .sanitizer import DEFAULT_TIE_SEEDS, sanitize_matrix

    quiet = json_out is not None
    report = sanitize_matrix(
        tie_seeds=tuple(tie_seeds) if tie_seeds else DEFAULT_TIE_SEEDS,
        progress=(lambda _msg: None) if quiet else print,
    )
    summary = report.format().splitlines()[-1]
    if json_out is not None:
        json_out["sanitize"] = {"ok": report.ok, "summary": summary}
    else:
        print(summary)
    return 0 if report.ok else 1


def _cell_slug(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in name)


def _run_explore(
    args: argparse.Namespace, json_out: Optional[Dict[str, Any]]
) -> int:
    from .explore import default_cells, run_matrix, write_counterexample

    cells = default_cells()
    if args.explore_cells:
        cells = [c for c in cells if args.explore_cells in c.describe()]
        if not cells:
            print(
                f"error: no matrix cell matches {args.explore_cells!r}; "
                f"cells: {', '.join(c.describe() for c in default_cells())}"
            )
            return 2
    backends = (
        ("interpreted", "compiled")
        if args.explore_backend == "both"
        else (args.explore_backend,)
    )
    report = run_matrix(
        cells,
        backends=backends,
        reduce=not args.full_expansion,
        wall_budget_s=args.explore_budget,
    )
    written: List[str] = []
    if args.counterexamples is not None:
        args.counterexamples.mkdir(parents=True, exist_ok=True)
        for cell in report.cells:
            for run in (cell.interpreted, cell.compiled):
                if run is None:
                    continue
                for i, violation in enumerate(run.violations):
                    name = (
                        f"{_cell_slug(run.scope.describe())}"
                        f"-{violation.property}-{i}.json"
                    )
                    path = args.counterexamples / name
                    write_counterexample(str(path), run.scope, violation)
                    written.append(str(path))
    if json_out is not None:
        doc = report.to_dict()
        doc["counterexamples_written"] = written
        json_out["explore"] = doc
    else:
        for cell in report.cells:
            runs = [cell.interpreted]
            if cell.compiled is not None:
                runs.append(cell.compiled)
            for run in runs:
                flags = "" if run.complete else " INCOMPLETE"
                print(
                    f"explore: {run.scope.describe():44s} "
                    f"states={run.states} transitions={run.transitions} "
                    f"reduction={run.reduction_ratio:.1f}x "
                    f"violations={len(run.violations)}{flags}"
                )
                for violation in run.violations:
                    print(
                        f"  {violation.property}: {violation.message} "
                        f"(schedule length {len(violation.schedule)})"
                    )
            if cell.backends_agree is not None:
                verdict = "agree" if cell.backends_agree else "DIVERGE"
                print(
                    f"  backends {verdict} on explored-state fingerprint "
                    f"({cell.scope.describe()})"
                )
        for path in written:
            print(f"  counterexample written: {path}")
        total_states = sum(c.interpreted.states for c in report.cells)
        print(
            f"explore: {len(report.cells)} cell(s), {total_states} "
            f"interpreted state(s), {report.violations} violation(s) — "
            f"{'ok' if report.ok else 'FAIL'}"
        )
    return 0 if report.ok else 1


def _run_replay(
    args: argparse.Namespace, json_out: Optional[Dict[str, Any]]
) -> int:
    from ..errors import ReproError
    from .explore import load_counterexample, replay, write_chrome_trace

    try:
        scope, violation = load_counterexample(str(args.replay))
        steps = replay(scope, violation.schedule)
    except (OSError, ReproError, KeyError, ValueError, TypeError) as exc:
        print(f"replay failed: {exc}")
        return 1
    if args.trace_out is not None:
        write_chrome_trace(str(args.trace_out), scope, violation, steps=steps)
    if json_out is not None:
        json_out["replay"] = {
            "ok": True,
            "cell": scope.describe(),
            "property": violation.property,
            "steps": [s.to_dict() for s in steps],
            "trace_out": (
                None if args.trace_out is None else str(args.trace_out)
            ),
        }
    else:
        print(
            f"replay: {scope.describe()} — {violation.property}: "
            f"{violation.message}"
        )
        for step in steps:
            action = "(initial)" if step.action is None else repr(step.action)
            cs = ",".join(map(str, step.cs_nodes)) or "-"
            req = ",".join(map(str, step.req_nodes)) or "-"
            print(f"  [{step.index:3d}] {action:40s} cs={cs} req={req}")
        if args.trace_out is not None:
            print(f"  trace written: {args.trace_out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from .rules import DEFAULT_RULES

        for cls in DEFAULT_RULES:
            print(f"{cls.id}  {cls.summary}")
        return 0

    explicit = (
        args.conformance or args.sanitize or args.explore
        or args.replay is not None
    )
    run_lint = args.lint or args.check or not explicit
    run_conformance = args.conformance or args.check
    json_out: Optional[Dict[str, Any]] = (
        {"schema": "repro.analysis", "version": JSON_SCHEMA_VERSION}
        if args.json
        else None
    )
    status = 0
    if run_lint:
        status = max(status, _run_lint(args, json_out))
    if status != 2 and run_conformance:
        status = max(status, _run_conformance(json_out))
    if status != 2 and args.sanitize:
        status = max(status, _run_sanitizer(args.tie_seeds, json_out))
    if status != 2 and args.explore:
        status = max(status, _run_explore(args, json_out))
    if status != 2 and args.replay is not None:
        status = max(status, _run_replay(args, json_out))
    if json_out is not None and status != 2:
        json_out["ok"] = status == 0
        print(json.dumps(json_out, indent=2))
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
