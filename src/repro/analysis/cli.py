"""``python -m repro.analysis`` — the review-time correctness gate.

Modes (combinable; all requested modes run, the exit code is the OR):

* default / ``--lint`` — run the RPR rules over the given paths
  (default ``src/repro``, falling back to the installed package);
* ``--conformance`` — static protocol-conformance checks over
  ``repro.mutex`` (send-graph closure + worst-case bounds vs theory);
* ``--sanitize`` — run the schedule-race sanitizer matrix (executes
  simulations; seconds, not milliseconds);
* ``--check`` — shorthand for ``--lint --conformance`` (the CI gate).

Exit codes: 0 clean, 1 violations/divergence found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import Baseline, Engine

__all__ = ["main"]


def _default_paths() -> List[Path]:
    src = Path("src/repro")
    if src.is_dir():
        return [src]
    return [Path(__file__).resolve().parent.parent]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism lint, protocol conformance and "
        "schedule-race sanitizing for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument("--lint", action="store_true", help="run the RPR lint rules")
    parser.add_argument(
        "--conformance",
        action="store_true",
        help="run static protocol-conformance checks over repro.mutex",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the schedule-race sanitizer matrix (runs simulations)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: --lint --conformance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted violations (stale entries are "
        "reported and fail the run)",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current violations as a baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="lint report format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the RPR rules and exit"
    )
    parser.add_argument(
        "--tie-seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="tie seeds for --sanitize (default: 1 2 3)",
    )
    return parser


def _run_lint(args: argparse.Namespace) -> int:
    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}")
        return 2
    baseline: Optional[Baseline] = None
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"error: baseline file not found: {args.baseline}")
            return 2
        baseline = Baseline.load(args.baseline)
    engine = Engine()
    report = engine.check_paths(paths, baseline=baseline, root=Path.cwd())
    if args.write_baseline is not None:
        Baseline.from_violations(report.violations).save(args.write_baseline)
        print(
            f"wrote {len(report.violations)} suppression(s) to "
            f"{args.write_baseline} — fill in the reasons"
        )
        return 0
    print(report.to_json() if args.format == "json" else report.format())
    if report.stale_suppressions:
        return 1
    return 0 if report.ok else 1


def _run_conformance() -> int:
    from .effects import check_conformance

    findings, effects = check_conformance()
    for finding in findings:
        print(finding.format())
    print(
        f"conformance: {len(effects)} algorithm(s) checked, "
        f"{len(findings)} finding(s)"
    )
    return 0 if not findings else 1


def _run_sanitizer(tie_seeds: Optional[Sequence[int]]) -> int:
    from .sanitizer import DEFAULT_TIE_SEEDS, sanitize_matrix

    report = sanitize_matrix(
        tie_seeds=tuple(tie_seeds) if tie_seeds else DEFAULT_TIE_SEEDS,
        progress=print,
    )
    print(report.format().splitlines()[-1])
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from .rules import DEFAULT_RULES

        for cls in DEFAULT_RULES:
            print(f"{cls.id}  {cls.summary}")
        return 0

    run_lint = args.lint or args.check or not (args.conformance or args.sanitize)
    run_conformance = args.conformance or args.check
    status = 0
    if run_lint:
        status = max(status, _run_lint(args))
    if status != 2 and run_conformance:
        status = max(status, _run_conformance())
    if status != 2 and args.sanitize:
        status = max(status, _run_sanitizer(args.tie_seeds))
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
