"""Static handler-effect extraction and protocol conformance.

Walks each algorithm class's AST into a **send graph**: which message
kinds each protocol phase (``_do_request`` / ``_do_release``) and each
``_on_<kind>`` handler emits, with per-site multiplicities (a unicast
counts 1, a ``_broadcast`` or a send inside a loop counts ``n-1``).
From the graph it derives a *static worst-case* per-CS message count
``W(n)`` — an over-approximation that treats every conditional branch as
taken and caps forwarding chains (kinds on an emission cycle, e.g. a
``request`` that handlers re-forward) at ``n-1`` hops, since no peer
forwards the same logical message twice per CS in any of these
protocols.

Three checks fall out (:func:`check_conformance`):

* **graph closure** — every kind the class sends has an ``_on_<kind>``
  handler and vice versa (no dead or unhandled message kinds);
* **bound conformance** — ``W(n)`` stays within the algorithm's declared
  static envelope (:data:`STATIC_BOUNDS`); a handler growing a new
  broadcast silently changes the complexity class and fails here;
* **theory consistency** — the paper's *average* per-CS count
  (:mod:`repro.experiments.theory`) never exceeds the static worst case,
  pinning the two models to each other.

Everything is AST-only: algorithms are never imported, let alone run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AlgorithmEffects",
    "ConformanceFinding",
    "FastEffects",
    "SendSite",
    "STATIC_BOUNDS",
    "check_compile_conformance",
    "check_conformance",
    "extract_algorithm_effects",
    "extract_fast_effects",
    "find_algorithm_classes",
    "find_compiled_classes",
]


@dataclass(frozen=True)
class SendSite:
    """One ``self._send`` / ``self._broadcast`` call site."""

    kind: str  # literal message kind, or "<dynamic>"
    method: str
    line: int
    broadcast: bool
    in_loop: bool

    @property
    def multiplicity_is_n(self) -> bool:
        """Whether this site emits up to ``n-1`` messages per execution."""
        return self.broadcast or self.in_loop


def _emission_multiset(
    sites: Sequence[SendSite],
) -> Dict[str, Tuple[int, int]]:
    """Kind -> (flat_count, per_n_count) over ``sites``: total emissions
    = ``flat + per_n * (n-1)``."""
    out: Dict[str, Tuple[int, int]] = {}
    for site in sites:
        if site.kind == "<dynamic>":
            continue
        flat, per_n = out.get(site.kind, (0, 0))
        if site.multiplicity_is_n:
            per_n += 1
        else:
            flat += 1
        out[site.kind] = (flat, per_n)
    return out


@dataclass
class AlgorithmEffects:
    """The extracted send graph of one algorithm class."""

    class_name: str
    path: str
    #: message kind -> handler method name (``_on_<kind>``)
    handlers: Dict[str, str] = field(default_factory=dict)
    #: phase/handler method -> transitively reachable send sites
    sends: Dict[str, Tuple[SendSite, ...]] = field(default_factory=dict)
    #: phase/handler method -> whether its call closure can enter the CS
    #: (reaches ``self._grant``); the model checker's visibility oracle
    grants: Dict[str, bool] = field(default_factory=dict)
    dynamic_sites: Tuple[SendSite, ...] = ()

    # ------------------------------------------------------------------ #
    @property
    def sent_kinds(self) -> Set[str]:
        return {
            s.kind
            for sites in self.sends.values()
            for s in sites
            if s.kind != "<dynamic>"
        }

    @property
    def handled_kinds(self) -> Set[str]:
        return set(self.handlers)

    def emissions(self, source: str) -> Dict[str, Tuple[int, int]]:
        """Kind -> (flat_count, per_n_count) emitted from ``source``:
        total emissions = ``flat + per_n * (n-1)``."""
        return _emission_multiset(self.sends.get(source, ()))

    # ------------------------------------------------------------------ #
    def cyclic_kinds(self) -> Set[str]:
        """Kinds on an emission cycle (``k`` handler re-emits ``k``, or a
        longer loop such as Maekawa's locked/relinquish ping-pong)."""
        kinds = sorted(self.sent_kinds | self.handled_kinds)
        edges: Dict[str, Set[str]] = {k: set() for k in kinds}
        for k in kinds:
            handler = self.handlers.get(k)
            if handler is None:
                continue
            edges[k].update(self.emissions(handler))
        # Transitive closure on a handful of kinds.
        reach: Dict[str, Set[str]] = {k: set(edges[k]) for k in kinds}
        changed = True
        while changed:
            changed = False
            for k in kinds:
                add = set()
                for j in reach[k]:
                    add |= reach.get(j, set())
                if not add <= reach[k]:
                    reach[k] |= add
                    changed = True
        return {k for k in kinds if k in reach[k]}

    def worst_case_messages(self, n: int) -> float:
        """Static worst-case per-CS message count at ``n`` peers.

        Over-approximate by construction: every branch counts, every
        loop/broadcast counts ``n-1``, and every kind on an emission
        cycle is capped at ``n-1`` total messages per CS.
        """
        if n < 2:
            return 0.0
        cap = float(n - 1)
        cyclic = self.cyclic_kinds()
        kinds = sorted(self.sent_kinds | self.handled_kinds)

        # Phase (seed) emissions from request + release.
        seeds: Dict[str, float] = {}
        for phase in ("_do_request", "_do_release"):
            for kind, (flat, per_n) in self.emissions(phase).items():
                seeds[kind] = seeds.get(kind, 0.0) + flat + per_n * cap

        # Boolean reachability: which kinds ever hit the wire at all.
        reachable: Set[str] = set(seeds)
        changed = True
        while changed:
            changed = False
            for k in sorted(reachable):
                handler = self.handlers.get(k)
                if handler is None:
                    continue
                emitted = set(self.emissions(handler)) - reachable
                if emitted:
                    reachable |= emitted
                    changed = True

        # A reachable kind on an emission cycle is pinned at the chain
        # cap: no peer forwards the same logical message twice per CS, so
        # <= n-1 copies regardless of how the cycle is entered.
        totals: Dict[str, float] = dict(seeds)
        for k in cyclic & reachable:
            totals[k] = cap

        def contribution(k: str) -> float:
            return cap if k in cyclic else totals.get(k, 0.0)

        # The remaining (acyclic) kinds form a DAG, so |kinds| rounds of
        # recomputation reach the fixpoint.
        for _ in range(len(kinds) + 1):
            new: Dict[str, float] = dict(seeds)
            for k in cyclic & reachable:
                new[k] = cap
            for k in kinds:
                if k not in reachable:
                    continue
                handler = self.handlers.get(k)
                receipts = contribution(k)
                if handler is None or receipts == 0.0:
                    continue
                for kind, (flat, per_n) in self.emissions(handler).items():
                    if kind in cyclic:
                        continue  # already pinned at the cap
                    new[kind] = new.get(kind, 0.0) + (flat + per_n * cap) * receipts
            if new == totals:
                break
            totals = new
        return sum(totals.values())


# --------------------------------------------------------------------- #
# extraction
# --------------------------------------------------------------------- #
def find_algorithm_classes(
    paths: Sequence[Path],
) -> Dict[str, Tuple[Path, ast.ClassDef]]:
    """``algorithm_name -> (file, class node)`` for every class in
    ``paths`` that declares a literal ``algorithm_name`` attribute."""
    found: Dict[str, Tuple[Path, ast.ClassDef]] = {}
    for path in sorted(paths):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "algorithm_name"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    found[stmt.value.value] = (path, node)
    return found


def _direct_sends(fn: ast.FunctionDef) -> List[SendSite]:
    """``self._send`` / ``self._broadcast`` call sites in one method, with
    loop-nesting recorded (a send inside any loop may run ``n-1`` times)."""
    sites: List[SendSite] = []

    def walk(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(
                child, (ast.For, ast.AsyncFor, ast.While)
            )
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id == "self"
                and child.func.attr in ("_send", "_broadcast")
            ):
                broadcast = child.func.attr == "_broadcast"
                kind_arg_index = 0 if broadcast else 1
                kind = "<dynamic>"
                if len(child.args) > kind_arg_index:
                    arg = child.args[kind_arg_index]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        kind = arg.value
                sites.append(
                    SendSite(
                        kind=kind,
                        method=fn.name,
                        line=child.lineno,
                        broadcast=broadcast,
                        in_loop=child_in_loop,
                    )
                )
            walk(child, child_in_loop)

    walk(fn, False)
    return sites


def extract_algorithm_effects(path: Path, cls: ast.ClassDef) -> AlgorithmEffects:
    """Build the send graph of one algorithm class.

    Each handler/phase's sends are the transitive closure over direct
    ``self.<helper>()`` calls (so ``_do_release -> _send_token ->
    _send("token")`` is attributed to ``_do_release``); other ``_on_*``
    handlers are not followed — they are accounted through the message
    graph itself, not the call graph.
    """
    methods: Dict[str, ast.FunctionDef] = {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    direct: Dict[str, List[SendSite]] = {
        name: _direct_sends(fn) for name, fn in methods.items()
    }
    calls: Dict[str, Set[str]] = {}
    for name, fn in methods.items():
        called: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                called.add(node.func.attr)
        calls[name] = called

    def closure(seed: str) -> Tuple[Tuple[SendSite, ...], bool]:
        sites: List[SendSite] = []
        grants = False
        visited: Set[str] = set()
        stack = [seed]
        while stack:
            name = stack.pop()
            if name in visited or name not in methods:
                continue
            visited.add(name)
            sites.extend(direct.get(name, ()))
            if "_grant" in calls.get(name, ()):
                grants = True
            for callee in sorted(calls.get(name, ())):
                if callee.startswith("_on_") and callee != seed:
                    continue  # handlers are message-graph edges
                stack.append(callee)
        return tuple(sorted(sites, key=lambda s: (s.line, s.kind))), grants

    effects = AlgorithmEffects(class_name=cls.name, path=str(path))
    seeds = ["_do_request", "_do_release"] + sorted(
        name for name in methods if name.startswith("_on_") and name != "_on_message"
    )
    dynamic: List[SendSite] = []
    for seed in seeds:
        if seed not in methods:
            continue
        sites, grants = closure(seed)
        effects.sends[seed] = sites
        effects.grants[seed] = grants
        dynamic.extend(s for s in sites if s.kind == "<dynamic>")
        if seed.startswith("_on_"):
            effects.handlers[seed[len("_on_"):]] = seed
    effects.dynamic_sites = tuple(dict.fromkeys(dynamic))
    return effects


# --------------------------------------------------------------------- #
# compiled fast-handler extraction (repro.compile)
# --------------------------------------------------------------------- #
@dataclass
class FastEffects:
    """The extracted send graph of one compiled (fast-path) peer class.

    The compiled classes hand-inline the interpreted protocol: message
    sends go through ``self._fsend`` (a cached
    :meth:`~repro.compile.network.CompiledNetwork.fast_send`), a bare
    local alias ``fsend`` in broadcast loops, and ``_fast_*`` helpers.
    The extractor recognises all three forms so the send-kind multiset of
    every ``_fast_on_<kind>`` handler (and of the inlined ``request_cs``/
    ``release_cs`` entry points) can be compared against the interpreted
    protocol — the static half of the interpreted/compiled equivalence
    gate (lint rule RPR009 and ``--conformance``).
    """

    class_name: str
    path: str
    #: textual base-class names (pairs the class to its interpreted peer)
    base_names: Tuple[str, ...] = ()
    #: message kind -> fast handler method name (``_fast_on_<kind>``)
    handlers: Dict[str, str] = field(default_factory=dict)
    #: entry point / fast handler -> transitively reachable send sites
    sends: Dict[str, Tuple[SendSite, ...]] = field(default_factory=dict)
    dynamic_sites: Tuple[SendSite, ...] = ()

    @property
    def handled_kinds(self) -> Set[str]:
        return set(self.handlers)

    def emissions(self, source: str) -> Dict[str, Tuple[int, int]]:
        """Kind -> (flat, per_n) multiset, same shape as
        :meth:`AlgorithmEffects.emissions`."""
        return _emission_multiset(self.sends.get(source, ()))


#: Fast-path send forms: positional index of the message-kind argument.
#: All forms share ``Network.send``'s positional signature
#: ``(src, dst, port, kind, payload, size)``.
_FAST_KIND_INDEX = 3


def _direct_fast_sends(fn: ast.FunctionDef) -> List[SendSite]:
    """``self._fsend`` / bare ``fsend`` / ``self.net.fast_send`` call
    sites in one method, with loop nesting recorded."""
    sites: List[SendSite] = []

    def is_fast_send(call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id == "fsend"  # local alias in broadcast loops
        if not isinstance(func, ast.Attribute):
            return False
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            return func.attr == "_fsend"
        return func.attr == "fast_send"  # self.net.fast_send(...)

    def walk(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(
                child, (ast.For, ast.AsyncFor, ast.While)
            )
            if isinstance(child, ast.Call) and is_fast_send(child):
                kind = "<dynamic>"
                if len(child.args) > _FAST_KIND_INDEX:
                    arg = child.args[_FAST_KIND_INDEX]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        kind = arg.value
                sites.append(
                    SendSite(
                        kind=kind,
                        method=fn.name,
                        line=child.lineno,
                        broadcast=False,
                        in_loop=child_in_loop,
                    )
                )
            walk(child, child_in_loop)

    walk(fn, False)
    return sites


def find_compiled_classes(
    paths: Sequence[Path],
) -> Dict[str, Tuple[Path, ast.ClassDef]]:
    """``class_name -> (file, class node)`` for every class in ``paths``
    that defines at least one ``_fast_on_<kind>`` handler."""
    found: Dict[str, Tuple[Path, ast.ClassDef]] = {}
    for path in sorted(paths):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name.startswith("_fast_on_")
                for stmt in node.body
            ):
                found[node.name] = (path, node)
    return found


def _base_names(cls: ast.ClassDef) -> Tuple[str, ...]:
    names: List[str] = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def extract_fast_effects(path: Path, cls: ast.ClassDef) -> FastEffects:
    """Build the send graph of one compiled peer class.

    Mirrors :func:`extract_algorithm_effects`: each seed's sends are the
    transitive closure over direct ``self.<helper>()`` calls, with other
    ``_fast_on_*`` / ``_on_*`` handlers excluded (message-graph edges,
    not call-graph edges).  Seeds are the inlined ``request_cs`` /
    ``release_cs`` entry points plus every ``_fast_on_<kind>``.
    """
    methods: Dict[str, ast.FunctionDef] = {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    direct: Dict[str, List[SendSite]] = {
        name: _direct_fast_sends(fn) for name, fn in methods.items()
    }
    calls: Dict[str, Set[str]] = {}
    for name, fn in methods.items():
        called: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                called.add(node.func.attr)
        calls[name] = called

    def closure(seed: str) -> Tuple[SendSite, ...]:
        sites: List[SendSite] = []
        visited: Set[str] = set()
        stack = [seed]
        while stack:
            name = stack.pop()
            if name in visited or name not in methods:
                continue
            visited.add(name)
            sites.extend(direct.get(name, ()))
            for callee in sorted(calls.get(name, ())):
                if callee != seed and (
                    callee.startswith("_on_") or callee.startswith("_fast_on_")
                ):
                    continue  # handlers are message-graph edges
                stack.append(callee)
        return tuple(sorted(sites, key=lambda s: (s.line, s.kind)))

    effects = FastEffects(
        class_name=cls.name, path=str(path), base_names=_base_names(cls)
    )
    seeds = ["request_cs", "release_cs"] + sorted(
        name for name in methods if name.startswith("_fast_on_")
    )
    dynamic: List[SendSite] = []
    for seed in seeds:
        if seed not in methods:
            continue
        sites = closure(seed)
        effects.sends[seed] = sites
        dynamic.extend(s for s in sites if s.kind == "<dynamic>")
        if seed.startswith("_fast_on_"):
            effects.handlers[seed[len("_fast_on_"):]] = seed
    effects.dynamic_sites = tuple(dict.fromkeys(dynamic))
    return effects


# --------------------------------------------------------------------- #
# conformance
# --------------------------------------------------------------------- #
#: Declared static worst-case envelopes ``W(n) <= bound(n)``.  These are
#: bounds on the *extractor's over-approximation* (every branch taken,
#: cycles capped at n-1), not on the tighter true protocol cost — see
#: each note.  Tightening an algorithm loosens nothing; a handler that
#: starts broadcasting, or a new forwarding loop, breaks the envelope.
STATIC_BOUNDS: Dict[str, Tuple[str, object]] = {
    # requests chain around the ring (<= n-1), token chases back (<= n-1);
    # matches the paper's 2(x+1) with x <= n-1
    "martin": ("2(n-1)", lambda n: 2 * (n - 1)),
    # request forwards along `last` pointers (cycle-capped at n-1); the
    # token edge is seeded by release *and* by the idle-root grant branch
    # of _on_request, each counted once per chain hop -> (n-1) + n.  The
    # true cost is O(log n) average / n worst — the envelope bounds the
    # branch-insensitive over-approximation, not the protocol.
    "naimi": ("2n - 1", lambda n: 2 * n - 1),
    # one request broadcast (n-1) + a token per receipt's idle-holder
    # branch + the release hand-off -> (n-1) + n; true cost is n
    "suzuki": ("2n - 1", lambda n: 2 * n - 1),
    # request up the tree and token down, both cycle-capped at n-1
    "raymond": ("2(n-1)", lambda n: 2 * (n - 1)),
    # request broadcast + a reply per receiver (immediate branch) + the
    # deferred replies flushed at release; true cost is 2(n-1)
    "ricart-agrawala": ("3(n-1)", lambda n: 3 * (n - 1)),
    # request broadcast + ack per receiver + release broadcast — the
    # over-approximation is exact here
    "lamport": ("3(n-1)", lambda n: 3 * (n - 1)),
    # every arbiter helper branch of every handler counted, the
    # locked/relinquish ping-pong cycle-capped; true cost is O(sqrt n)
    # (quorum size is a runtime construct the AST cannot see)
    "maekawa": ("12(n-1) + 6", lambda n: 12 * (n - 1) + 6),
    # request/grant/waiting/release with both local-serve branches
    "centralized": ("8", lambda n: 8.0),
    # naimi-shaped; the priority queue rides inside the token payload
    "priority-naimi": ("2n - 1", lambda n: 2 * n - 1),
}

#: theory.py names -> registry names used by the extractor
_THEORY_NAMES = {"martin": "martin", "naimi": "naimi", "suzuki": "suzuki"}

_CHECK_SIZES = (2, 3, 5, 9, 17)


@dataclass(frozen=True)
class ConformanceFinding:
    """One conformance failure (or informational note)."""

    algorithm: str
    kind: str  # "graph" | "bound" | "theory" | "dynamic"
    message: str

    def format(self) -> str:
        return f"{self.algorithm}: [{self.kind}] {self.message}"


def check_conformance(
    mutex_dir: Optional[Path] = None,
) -> Tuple[List[ConformanceFinding], Dict[str, AlgorithmEffects]]:
    """Run all static protocol-conformance checks over ``repro.mutex``.

    Returns ``(findings, effects_by_algorithm)``; an empty findings list
    means every algorithm conforms.
    """
    if mutex_dir is None:
        mutex_dir = Path(__file__).resolve().parent.parent / "mutex"
    classes = find_algorithm_classes(sorted(mutex_dir.glob("*.py")))
    findings: List[ConformanceFinding] = []
    all_effects: Dict[str, AlgorithmEffects] = {}
    for name, (path, cls) in sorted(classes.items()):
        effects = extract_algorithm_effects(path, cls)
        all_effects[name] = effects
        findings.extend(_check_one(name, effects))
    return findings, all_effects


def _check_one(name: str, effects: AlgorithmEffects) -> Iterator[ConformanceFinding]:
    # 1. dynamic sends are unverifiable
    for site in effects.dynamic_sites:
        yield ConformanceFinding(
            name,
            "dynamic",
            f"non-literal message kind at {effects.path}:{site.line} "
            f"({site.method}) — the send graph cannot be verified",
        )
    # 2. graph closure
    unhandled = sorted(effects.sent_kinds - effects.handled_kinds)
    if unhandled:
        yield ConformanceFinding(
            name,
            "graph",
            f"sent kind(s) with no _on_<kind> handler: {unhandled}",
        )
    orphaned = sorted(effects.handled_kinds - effects.sent_kinds)
    if orphaned:
        yield ConformanceFinding(
            name,
            "graph",
            f"handler(s) for kind(s) nobody sends: {orphaned}",
        )
    # 3. declared static envelope
    declared = STATIC_BOUNDS.get(name)
    if declared is None:
        yield ConformanceFinding(
            name,
            "bound",
            "no declared static bound in repro.analysis.effects.STATIC_BOUNDS "
            "— add one for every registered algorithm",
        )
        return
    label, bound = declared
    for n in _CHECK_SIZES:
        w = effects.worst_case_messages(n)
        limit = float(bound(n))  # type: ignore[operator]
        if w > limit + 1e-9:
            yield ConformanceFinding(
                name,
                "bound",
                f"static worst case W({n}) = {w:g} exceeds the declared "
                f"envelope {label} = {limit:g} — a handler grew new "
                f"message traffic (update the envelope only with a "
                f"matching theory/docs change)",
            )
            break
    # 4. theory consistency (average <= static worst case)
    theory_name = _THEORY_NAMES.get(name)
    if theory_name is not None:
        from ..experiments.theory import ALGORITHM_MODELS

        model = ALGORITHM_MODELS[theory_name]
        for n in _CHECK_SIZES:
            avg = float(model.messages(n))
            w = effects.worst_case_messages(n)
            if avg > w + 1e-9:
                yield ConformanceFinding(
                    name,
                    "theory",
                    f"theory.py average messages({n}) = {avg:g} exceeds the "
                    f"static worst case {w:g} — the analytical model and "
                    f"the implementation have diverged",
                )
                break


# --------------------------------------------------------------------- #
# compiled-backend conformance (repro.compile fast tables)
# --------------------------------------------------------------------- #
#: Compiled entry point -> the interpreted seed it inlines.
_FAST_SEED_MAP = {"request_cs": "_do_request", "release_cs": "_do_release"}


def _format_multiset(ms: Dict[str, Tuple[int, int]]) -> str:
    if not ms:
        return "{}"
    parts = []
    for kind in sorted(ms):
        flat, per_n = ms[kind]
        terms = []
        if flat:
            terms.append(str(flat))
        if per_n:
            terms.append(f"{per_n}*(n-1)")
        parts.append(f"{kind}: {' + '.join(terms) or '0'}")
    return "{" + ", ".join(parts) + "}"


def check_compile_conformance(
    compile_dir: Optional[Path] = None,
    mutex_dir: Optional[Path] = None,
) -> Tuple[List[ConformanceFinding], Dict[str, FastEffects]]:
    """Static conformance of the ``repro.compile`` fast tables.

    For every compiled peer class (any class defining a
    ``_fast_on_<kind>`` handler) paired — through its base-class names —
    with an interpreted algorithm class in ``repro.mutex``:

    * **envelope closure** — every ``_fast_on_<kind>`` must correspond to
      a kind in the interpreted algorithm's declared envelope (its
      ``_on_<kind>`` handler set), and every envelope kind must have a
      fast handler (no partial fast tables);
    * **effect equivalence** — each fast handler (and each inlined
      ``request_cs``/``release_cs`` entry point) must emit the exact
      send-kind multiset of its interpreted counterpart;
    * **bound conformance** — the fast send graph, substituted into the
      algorithm's message graph, must stay within the declared
      :data:`STATIC_BOUNDS` envelope.

    A compiled class whose bases match no algorithm class is itself a
    finding: an unpaired fast table cannot be equivalence-checked.
    """
    here = Path(__file__).resolve().parent.parent
    if compile_dir is None:
        compile_dir = here / "compile"
    if mutex_dir is None:
        mutex_dir = here / "mutex"

    algo_classes = find_algorithm_classes(sorted(mutex_dir.glob("*.py")))
    interp_by_class: Dict[str, Tuple[str, AlgorithmEffects]] = {}
    for algo_name, (path, cls) in algo_classes.items():
        interp_by_class[cls.name] = (
            algo_name, extract_algorithm_effects(path, cls)
        )

    findings: List[ConformanceFinding] = []
    all_fast: Dict[str, FastEffects] = {}
    compiled = find_compiled_classes(sorted(compile_dir.glob("*.py")))
    for cls_name, (path, cls) in sorted(compiled.items()):
        fast = extract_fast_effects(path, cls)
        all_fast[cls_name] = fast
        paired = [b for b in fast.base_names if b in interp_by_class]
        if not paired:
            findings.append(ConformanceFinding(
                cls_name,
                "fast-graph",
                f"compiled class at {path} defines fast handlers "
                f"{sorted(fast.handled_kinds)} but none of its bases "
                f"{list(fast.base_names)} is a known algorithm class — "
                "the fast table cannot be equivalence-checked",
            ))
            continue
        algo_name, interp = interp_by_class[paired[0]]
        label = f"{algo_name}/{cls_name}"
        for site in fast.dynamic_sites:
            findings.append(ConformanceFinding(
                label,
                "dynamic",
                f"non-literal message kind at {fast.path}:{site.line} "
                f"({site.method}) — the fast send graph cannot be "
                "verified",
            ))
        extra = sorted(fast.handled_kinds - interp.handled_kinds)
        if extra:
            findings.append(ConformanceFinding(
                label,
                "fast-graph",
                f"fast-table kind(s) {extra} missing from the declared "
                f"envelope (interpreted {interp.class_name} handles "
                f"{sorted(interp.handled_kinds)})",
            ))
        missing = sorted(interp.handled_kinds - fast.handled_kinds)
        if missing:
            findings.append(ConformanceFinding(
                label,
                "fast-graph",
                f"envelope kind(s) {missing} have no _fast_on_<kind> "
                "handler — a partial fast table silently falls back to "
                "interpreted dispatch",
            ))
        # Effect equivalence, handler by handler then entry points.
        pairs = [
            (fast.handlers[k], interp.handlers[k])
            for k in sorted(fast.handled_kinds & interp.handled_kinds)
        ]
        for fast_seed, interp_seed in pairs + [
            (f, i) for f, i in _FAST_SEED_MAP.items() if f in fast.sends
        ]:
            got = fast.emissions(fast_seed)
            want = interp.emissions(interp_seed)
            if got != want:
                findings.append(ConformanceFinding(
                    label,
                    "fast-effect",
                    f"{fast_seed} emits {_format_multiset(got)} but the "
                    f"interpreted {interp_seed} emits "
                    f"{_format_multiset(want)} — the hand-inlined fast "
                    "path drifted from the protocol",
                ))
        # Bound conformance over the substituted send graph.
        declared = STATIC_BOUNDS.get(algo_name)
        if declared is not None:
            synth = AlgorithmEffects(
                class_name=cls_name, path=str(path),
                handlers=dict(interp.handlers),
            )
            for seed in ("_do_request", "_do_release"):
                fast_seed = next(
                    (f for f, i in _FAST_SEED_MAP.items() if i == seed), seed
                )
                synth.sends[seed] = fast.sends.get(
                    fast_seed, interp.sends.get(seed, ())
                )
            for kind, handler in interp.handlers.items():
                fast_handler = fast.handlers.get(kind)
                synth.sends[handler] = (
                    fast.sends[fast_handler]
                    if fast_handler is not None
                    else interp.sends.get(handler, ())
                )
            bound_label, bound = declared
            for n in _CHECK_SIZES:
                w = synth.worst_case_messages(n)
                limit = float(bound(n))  # type: ignore[operator]
                if w > limit + 1e-9:
                    findings.append(ConformanceFinding(
                        label,
                        "bound",
                        f"compiled static worst case W({n}) = {w:g} "
                        f"exceeds the declared envelope {bound_label} = "
                        f"{limit:g}",
                    ))
                    break
    return findings, all_fast
