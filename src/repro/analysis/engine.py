"""Linter engine: file walking, suppression handling, reporting.

The engine is deliberately free of any :mod:`repro` *runtime* imports —
it parses source files with :mod:`ast` and never executes them, so it can
lint a broken tree (that is the point of a review-time gate).

Suppressions come in two forms:

* **inline allows** — ``# repro: allow[RPR003] <reason>`` on the
  offending line (or alone on the line above) suppresses the named
  rule(s) there.  This is the preferred mechanism: the justification
  lives next to the code it justifies.
* **baseline file** — a JSON file of known violations (``--baseline``),
  matched by ``(rule, path, context)`` so entries survive unrelated line
  drift.  Meant for adopting a new rule over a large tree; stale entries
  are reported so the baseline can only shrink.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Engine",
    "ModuleInfo",
    "Suppression",
    "Violation",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: dotted enclosing scope, e.g. ``"LamportPeer._try_enter"``
    context: str = ""

    def format(self) -> str:
        where = f" [{self.context}]" if self.context else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{where}"


class ModuleInfo:
    """A parsed source file plus the lookup tables rules need."""

    def __init__(self, path: Path, source: str, display_path: str = "") -> None:
        self.path = path
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.module = module_name_for(path)
        self._allows = self._collect_allows()
        self._scopes = self._collect_scopes()

    # ------------------------------------------------------------------ #
    def _collect_allows(self) -> Dict[int, Set[str]]:
        allows: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            m = _ALLOW_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                allows.setdefault(lineno, set()).update(rules)
                # A comment-only allow line covers the next line too.
                if line.lstrip().startswith("#"):
                    allows.setdefault(lineno + 1, set()).update(rules)
        return allows

    def allowed(self, rule: str, line: int) -> bool:
        return rule in self._allows.get(line, ())

    # ------------------------------------------------------------------ #
    def _collect_scopes(self) -> List[Tuple[int, int, str]]:
        scopes: List[Tuple[int, int, str]] = []

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    name = f"{prefix}.{child.name}" if prefix else child.name
                    end = getattr(child, "end_lineno", child.lineno) or child.lineno
                    scopes.append((child.lineno, end, name))
                    walk(child, name)
                else:
                    walk(child, prefix)

        walk(self.tree, "")
        return scopes

    def scope_at(self, line: int) -> str:
        """Dotted name of the deepest class/function enclosing ``line``."""
        best = ""
        best_start = -1
        for start, end, name in self._scopes:
            if start <= line <= end and start > best_start:
                best, best_start = name, start
        return best


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from a file path.

    Uses the *last* ``repro`` path component as the package root (so both
    ``src/repro/mutex/base.py`` and fixture trees like
    ``fixtures/src/repro/mutex/bad.py`` map to ``repro.mutex.*``).
    Returns the bare stem for files outside any ``repro`` tree.
    """
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts:
        root = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[root:-1])
        if stem != "__init__":
            dotted.append(stem)
        return ".".join(dotted)
    return stem


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Suppression:
    """One baseline entry; ``path`` is matched as a trailing path suffix
    so baselines work from any checkout root."""

    rule: str
    path: str
    context: str = ""
    reason: str = ""

    def matches(self, violation: Violation) -> bool:
        if self.rule != violation.rule or self.context != violation.context:
            return False
        want = Path(self.path).as_posix()
        have = Path(violation.path).as_posix()
        return have == want or have.endswith("/" + want)


class Baseline:
    """A set of accepted violations loaded from / saved to JSON."""

    def __init__(self, suppressions: Iterable[Suppression] = ()) -> None:
        self.suppressions: List[Suppression] = list(suppressions)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        entries = data.get("suppressions", []) if isinstance(data, dict) else data
        return cls(
            Suppression(
                rule=e["rule"],
                path=e["path"],
                context=e.get("context", ""),
                reason=e.get("reason", ""),
            )
            for e in entries
        )

    @classmethod
    def from_violations(
        cls, violations: Iterable[Violation], reason: str = "grandfathered"
    ) -> "Baseline":
        return cls(
            Suppression(rule=v.rule, path=v.path, context=v.context, reason=reason)
            for v in violations
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "suppressions": [
                {
                    "rule": s.rule,
                    "path": s.path,
                    "context": s.context,
                    "reason": s.reason,
                }
                for s in self.suppressions
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def partition(
        self, violations: Sequence[Violation]
    ) -> Tuple[List[Violation], List[Violation], List[Suppression]]:
        """Split into (unsuppressed, suppressed) and list stale entries."""
        used: Set[int] = set()
        kept: List[Violation] = []
        dropped: List[Violation] = []
        for v in violations:
            for i, s in enumerate(self.suppressions):
                if s.matches(v):
                    used.add(i)
                    dropped.append(v)
                    break
            else:
                kept.append(v)
        stale = [s for i, s in enumerate(self.suppressions) if i not in used]
        return kept, dropped, stale


# --------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------- #
@dataclass
class AnalysisReport:
    """The outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    stale_suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def format(self) -> str:
        out: List[str] = []
        out.extend(err for err in self.parse_errors)
        out.extend(v.format() for v in self.violations)
        if self.stale_suppressions:
            out.append("")
            out.append("stale baseline entries (fixed or moved — remove them):")
            out.extend(
                f"  {s.rule} {s.path} [{s.context}]" for s in self.stale_suppressions
            )
        summary = (
            f"{self.files_checked} file(s) checked: "
            f"{len(self.violations)} violation(s), "
            f"{len(self.suppressed)} suppressed"
        )
        out.append(summary)
        return "\n".join(out)

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "violations": [v.__dict__ for v in self.violations],
                "suppressed": [v.__dict__ for v in self.suppressed],
                "stale_suppressions": [s.__dict__ for s in self.stale_suppressions],
                "parse_errors": self.parse_errors,
            },
            indent=2,
        )


def iter_python_files(paths: Sequence["Path | str"]) -> Iterator[Path]:
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


class Engine:
    """Runs a rule set over a file tree and applies suppressions."""

    def __init__(self, rules: Optional[Sequence[object]] = None) -> None:
        if rules is None:
            from .rules import DEFAULT_RULES

            rules = [cls() for cls in DEFAULT_RULES]
        self.rules = list(rules)

    def check_paths(
        self,
        paths: Sequence[Path],
        baseline: Optional[Baseline] = None,
        root: Optional[Path] = None,
    ) -> AnalysisReport:
        report = AnalysisReport()
        raw: List[Violation] = []
        for path in iter_python_files(paths):
            display = path
            if root is not None:
                try:
                    display = path.relative_to(root)
                except ValueError:
                    pass
            try:
                mod = ModuleInfo(path, path.read_text(), str(display))
            except SyntaxError as exc:  # a broken tree must still lint
                report.parse_errors.append(f"{display}: syntax error: {exc}")
                continue
            report.files_checked += 1
            for violation in self._check_module(mod):
                if mod.allowed(violation.rule, violation.line):
                    report.suppressed.append(violation)
                else:
                    raw.append(violation)
        if baseline is not None:
            kept, dropped, stale = baseline.partition(raw)
            report.violations.extend(kept)
            report.suppressed.extend(dropped)
            report.stale_suppressions.extend(stale)
        else:
            report.violations.extend(raw)
        report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return report

    def _check_module(self, mod: ModuleInfo) -> Iterator[Violation]:
        for rule in self.rules:
            if not rule.applies(mod):
                continue
            for line, col, message in rule.check(mod):
                yield Violation(
                    rule=rule.id,
                    path=mod.display_path,
                    line=line,
                    col=col,
                    message=message,
                    context=mod.scope_at(line),
                )
