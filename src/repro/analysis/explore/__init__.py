"""Bounded exhaustive protocol exploration (a small-scope model checker).

This package drives the *real*, unmodified :mod:`repro.mutex` algorithms
— under either the interpreted or the :mod:`repro.compile` backend —
through a controlled scheduler that owns every message delivery and
CS request, and exhaustively explores every admissible interleaving at
small scope.  A sleep-set dynamic partial-order reduction prunes
redundant interleavings without losing a single reachable state, so the
three checked properties stay exact:

* **safety** — at most one node in its critical section, ever;
* **deadlock-freedom** — no reachable state with outstanding requests
  and nothing enabled;
* **eventual entry** — no reachable terminal loop that starves a
  requester (exact for deadlock-shaped starvation; best-effort for
  livelocks, see :mod:`repro.analysis.explore.explorer`).

Entry points: :func:`explore` checks one :class:`ExploreScope` cell;
:func:`run_matrix` runs the default {naimi, suzuki, martin} x
{flat, composition} matrix under both backends and cross-checks their
explored-state fingerprints; :mod:`repro.analysis.explore.schedule`
serializes violations into replayable JSON counterexamples.  All of it
is wired into ``python -m repro.analysis --explore``.
"""

from .cells import CellResult, MatrixReport, default_cells, run_matrix
from .explorer import ExploreReport, Violation, explore
from .schedule import (
    ReplayStep,
    chrome_trace,
    counterexample_to_dict,
    load_counterexample,
    replay,
    write_chrome_trace,
    write_counterexample,
)
from .world import ExplorationError, ExploreScope, World

__all__ = [
    "CellResult",
    "ExplorationError",
    "ExploreReport",
    "ExploreScope",
    "MatrixReport",
    "ReplayStep",
    "Violation",
    "World",
    "chrome_trace",
    "counterexample_to_dict",
    "default_cells",
    "explore",
    "load_counterexample",
    "replay",
    "run_matrix",
    "write_chrome_trace",
    "write_counterexample",
]
