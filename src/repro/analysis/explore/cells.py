"""The default verification matrix and its cross-backend runner.

Six fault-free cells cover {naimi, suzuki, martin} x {flat, composition}
(composition cells run the algorithm at both levels), each at a scope
tuned so the sleep-set reduction demonstrably prunes >= 10x of the naive
schedule enumeration while staying within a few seconds of wall clock.
One crash cell exercises the crash-stop + recovery path (flat naimi,
crashing the initial token holder at every possible point of the
schedule).

Fault-free cells run under both the interpreted and the compiled
backend and must explore the *identical* state set (order-insensitive
fingerprint equality) — the dynamic counterpart of the static RPR009
handler-equivalence lint.  Crash cells run interpreted only, mirroring
``compile_system``'s refusal to promote crash-enabled runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from .explorer import ExploreReport, explore
from .world import ExploreScope

__all__ = ["CellResult", "MatrixReport", "default_cells", "run_matrix"]

#: Scopes chosen so every fault-free cell is exhaustive in seconds with
#: a reduction ratio >= 10 (measured; see docs/analysis.md).  The
#: three-requester workload keeps the interleaving width meaningful
#: without the factorial blow-up of a fourth concurrent requester.
_THREE = (1, 2, 4)


def default_cells(crash: bool = True) -> List[ExploreScope]:
    """The default model-checking matrix (backend-agnostic scopes)."""
    cells = [
        ExploreScope(
            system="flat", intra="naimi",
            nodes_per_cluster=3, requests_per_node=2, requesters=_THREE,
        ),
        ExploreScope(
            system="flat", intra="suzuki",
            nodes_per_cluster=3, requests_per_node=1, requesters=_THREE,
        ),
        ExploreScope(
            system="flat", intra="martin",
            nodes_per_cluster=3, requests_per_node=1,
        ),
        ExploreScope(
            system="composition", intra="naimi", inter="naimi",
            nodes_per_cluster=3, requests_per_node=2, requesters=_THREE,
        ),
        ExploreScope(
            system="composition", intra="suzuki", inter="suzuki",
            nodes_per_cluster=3, requests_per_node=1, requesters=_THREE,
        ),
        ExploreScope(
            system="composition", intra="martin", inter="martin",
            nodes_per_cluster=3, requests_per_node=1, requesters=_THREE,
        ),
    ]
    if crash:
        cells.append(
            ExploreScope(
                system="flat", intra="naimi",
                nodes_per_cluster=2, requests_per_node=1, crash_node=1,
            )
        )
    return cells


@dataclasses.dataclass
class CellResult:
    """One matrix cell: interpreted run, optional compiled run, and the
    cross-backend fingerprint verdict."""

    scope: ExploreScope
    interpreted: ExploreReport
    compiled: Optional[ExploreReport] = None
    #: None when the cell runs interpreted-only (crash / mutant cells)
    backends_agree: Optional[bool] = None

    @property
    def ok(self) -> bool:
        if not self.interpreted.ok:
            return False
        if self.compiled is not None:
            return self.compiled.ok and bool(self.backends_agree)
        return True

    def to_dict(self) -> dict:
        return {
            "cell": self.scope.describe(),
            "ok": self.ok,
            "backends_agree": self.backends_agree,
            "interpreted": self.interpreted.to_dict(),
            "compiled": (
                None if self.compiled is None else self.compiled.to_dict()
            ),
        }


@dataclasses.dataclass
class MatrixReport:
    cells: List[CellResult]

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def violations(self) -> int:
        total = 0
        for cell in self.cells:
            total += len(cell.interpreted.violations)
            if cell.compiled is not None:
                total += len(cell.compiled.violations)
        return total

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def run_matrix(
    cells: Optional[Sequence[ExploreScope]] = None,
    *,
    backends: Sequence[str] = ("interpreted", "compiled"),
    reduce: bool = True,
    max_states: int = 250_000,
    max_transitions: int = 2_000_000,
    wall_budget_s: Optional[float] = None,
) -> MatrixReport:
    """Run every cell under each applicable backend.

    ``wall_budget_s`` bounds each individual exploration; a cell that
    exhausts it reports ``complete=False`` (and therefore fails).
    """
    if cells is None:
        cells = default_cells()
    results: List[CellResult] = []
    for scope in cells:
        base = dataclasses.replace(scope, backend="interpreted")
        kwargs: Dict = dict(
            reduce=reduce,
            max_states=max_states,
            max_transitions=max_transitions,
            wall_budget_s=wall_budget_s,
        )
        interpreted = explore(base, **kwargs)
        compilable = (
            "compiled" in backends
            and scope.crash_node is None
            and scope.peer_factory is None
        )
        if not compilable:
            results.append(CellResult(scope=base, interpreted=interpreted))
            continue
        compiled = explore(
            dataclasses.replace(scope, backend="compiled"), **kwargs
        )
        results.append(
            CellResult(
                scope=base,
                interpreted=interpreted,
                compiled=compiled,
                backends_agree=(
                    interpreted.state_fingerprint == compiled.state_fingerprint
                ),
            )
        )
    return MatrixReport(cells=results)
