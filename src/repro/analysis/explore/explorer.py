"""The bounded model checker: exhaustive DFS with sleep-set DPOR.

:func:`explore` drives one :class:`~repro.analysis.explore.world.World`
scope through *every* admissible interleaving of its enabled actions,
deduplicating states by canonical fingerprint and pruning redundant
interleavings with sleep sets (see :mod:`.reduction`).  The search is
stateless-replay based: the explorer keeps a single live world and
rebuilds prefixes on backtrack, so memory holds only fingerprints and
the DFS stack, never world snapshots.

Three properties are checked:

* **safety** — at most one live application peer in the CS, verified on
  every state (composition counts application peers across clusters;
  coordinators holding an intra or inter CS are infrastructure and
  excluded, exactly as in the paper's hierarchy);
* **deadlock-freedom** — no quiescent state (no enabled action) with a
  peer still requesting;
* **eventual entry** — no reachable cycle the system can stay in
  forever while some peer remains requesting (checked post-hoc on the
  explored graph's strongly connected components; exact for the
  deadlock form of starvation, best-effort for livelocks since sleep
  sets may prune some cycle chords — see ``docs/analysis.md``).

A violation yields a minimal counterexample: the shortest action
schedule (BFS over the explored graph) from the initial state, directly
replayable through :mod:`repro.analysis.explore.schedule`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ...errors import ReproError
from .reduction import build_envelopes, independent, visibility_oracle
from .world import Action, ExplorationError, ExploreScope, World

__all__ = ["ExploreReport", "Violation", "explore"]

#: Saturation bound for naive-schedule counting (the number of distinct
#: maximal schedules grows factorially; the report only needs "how many
#: runs would naive enumeration take", capped).
_SATURATE = 10**18


@dataclasses.dataclass(frozen=True)
class Violation:
    """One property violation with its replayable counterexample."""

    #: "safety" | "deadlock" | "starvation" | "protocol-error"
    property: str
    message: str
    #: minimal schedule from the initial state to the violation
    schedule: Tuple[Action, ...]
    #: for starvation: the cycle the system can loop in forever
    loop: Tuple[Action, ...] = ()

    def to_dict(self) -> dict:
        return {
            "property": self.property,
            "message": self.message,
            "schedule": [list(a) for a in self.schedule],
            "loop": [list(a) for a in self.loop],
        }


@dataclasses.dataclass
class ExploreReport:
    """Everything one exploration learned about one cell."""

    scope: ExploreScope
    states: int
    transitions: int
    #: sum over states of |enabled| — what full expansion would execute
    enabled_total: int
    #: transitions skipped by the sleep-set reduction
    sleep_pruned: int
    #: distinct maximal schedules covered (saturating count)
    schedules_covered: int
    #: state visits a naive (no-dedup, no-reduction) enumeration would
    #: perform over the same graph (saturating count)
    naive_visits: int
    max_depth: int
    #: False when a state/transition/wall-clock bound stopped the search
    complete: bool
    violations: List[Violation]
    #: order-insensitive digest of the explored state set; equal across
    #: backends when interpreted and compiled semantics agree
    state_fingerprint: str
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.complete and not self.violations

    @property
    def reduction_ratio(self) -> float:
        if self.states == 0:
            return 1.0
        return self.naive_visits / self.states

    def to_dict(self) -> dict:
        return {
            "cell": self.scope.describe(),
            "scope": self.scope.to_dict(),
            "ok": self.ok,
            "complete": self.complete,
            "states": self.states,
            "transitions": self.transitions,
            "enabled_total": self.enabled_total,
            "sleep_pruned": self.sleep_pruned,
            "schedules_covered": self.schedules_covered,
            "naive_visits": self.naive_visits,
            "reduction_ratio": round(self.reduction_ratio, 2),
            "max_depth": self.max_depth,
            "state_fingerprint": self.state_fingerprint,
            "violations": [v.to_dict() for v in self.violations],
            "elapsed_s": round(self.elapsed_s, 3),
        }


# --------------------------------------------------------------------- #
# stateless replay
# --------------------------------------------------------------------- #
class _Replayer:
    """Owns the single live world; rebuilds prefixes on backtrack.

    Stateless replay keeps memory flat (fingerprints + DFS stack only);
    ``deepcopy``-snapshot checkpointing was measured 2.4x *slower* than
    rebuild-and-replay at this scope, so the world graph is never
    copied.
    """

    def __init__(self, scope: ExploreScope) -> None:
        self.scope = scope
        self.world: Optional[World] = None
        self.path: Tuple[Action, ...] = ()
        self.rebuilds = 0

    def world_at(self, prefix: Tuple[Action, ...]) -> World:
        if self.world is not None:
            if self.path == prefix:
                return self.world
            if (
                len(prefix) > len(self.path)
                and prefix[: len(self.path)] == self.path
            ):
                for action in prefix[len(self.path):]:
                    self.world.apply(action)
                self.path = prefix
                return self.world
        self.rebuilds += 1
        world = World(self.scope)
        envelopes = build_envelopes(world)
        if envelopes is not None:
            world.set_envelopes(envelopes)
        self.world = world
        self.path = ()
        for action in prefix:
            world.apply(action)
        self.path = prefix
        return world

    def advanced(self, action: Action) -> None:
        """Record that the live world just applied ``action``."""
        self.path = self.path + (action,)

    def invalidate(self) -> None:
        """The live world threw mid-action; its state is unusable."""
        self.world = None
        self.path = ()


@dataclasses.dataclass
class _Frame:
    state: int
    prefix: Tuple[Action, ...]
    todo: List[Action]
    index: int
    base_sleep: FrozenSet[Action]
    started: List[Action]


# --------------------------------------------------------------------- #
# the search
# --------------------------------------------------------------------- #
def explore(
    scope: ExploreScope,
    *,
    reduce: bool = True,
    stop_on_violation: bool = True,
    max_states: int = 250_000,
    max_transitions: int = 2_000_000,
    wall_budget_s: Optional[float] = None,
) -> ExploreReport:
    """Exhaustively explore one cell and report states + violations."""
    import time  # wall budget only, never simulated time

    scope.validate()
    if scope.peer_factory is not None or not scope.fifo_flows:
        # Mutant handlers are invisible to the static oracles, and
        # indexed (non-FIFO) deliveries shift names across states;
        # both force full expansion — sound, just unreduced.
        reduce = False

    started_at = time.monotonic()  # repro: allow[RPR001] wall budget for the search, outside any simulation
    replayer = _Replayer(scope)
    world = replayer.world_at(())

    state_ids: Dict[str, int] = {}
    sleep_store: List[Set[Action]] = []
    explored_from: List[Set[Action]] = []
    enabled_lists: List[Tuple[Action, ...]] = []
    req_sets: List[Tuple[int, ...]] = []
    edges: List[List[Tuple[Action, int]]] = []
    violations: List[Violation] = []
    transitions = 0
    enabled_total = 0
    sleep_pruned = 0
    max_depth = 0
    complete = True

    def order_enabled(w: World) -> Tuple[Action, ...]:
        acts = w.enabled()
        visible = visibility_oracle(w)
        # Possibly-granting actions first: counterexamples stay short
        # and the DFS reaches CS states early.  Stable within classes.
        return tuple(sorted(acts, key=lambda a: (not visible(a), a)))

    def register(w: World, prefix: Tuple[Action, ...]) -> Tuple[int, bool]:
        """Intern the live world's state; returns (id, is_new)."""
        nonlocal enabled_total
        digest = w.digest()
        known = state_ids.get(digest)
        if known is not None:
            return known, False
        sid = len(enabled_lists)
        state_ids[digest] = sid
        enabled = order_enabled(w)
        enabled_lists.append(enabled)
        enabled_total += len(enabled)
        req = w.req_nodes()
        req_sets.append(req)
        sleep_store.append(set())
        explored_from.append(set())
        edges.append([])
        cs = w.cs_nodes()
        if len(cs) > 1:
            violations.append(
                Violation(
                    "safety",
                    f"mutual exclusion violated: nodes {list(cs)} are in "
                    "the critical section simultaneously",
                    prefix,
                )
            )
        elif not enabled and req:
            violations.append(
                Violation(
                    "deadlock",
                    f"quiescent state with nodes {list(req)} still "
                    "requesting and no message in flight",
                    prefix,
                )
            )
        return sid, True

    root_id, _ = register(world, ())
    stack: List[_Frame] = [
        _Frame(
            state=root_id,
            prefix=(),
            todo=list(enabled_lists[root_id]),
            index=0,
            base_sleep=frozenset(),
            started=[],
        )
    ]

    while stack:
        if violations and stop_on_violation:
            break
        if (
            len(enabled_lists) > max_states
            or transitions > max_transitions
            or (
                wall_budget_s is not None
                and time.monotonic() - started_at > wall_budget_s  # repro: allow[RPR001] wall budget
            )
        ):
            complete = False
            break
        frame = stack[-1]
        if frame.index >= len(frame.todo):
            stack.pop()
            continue
        action = frame.todo[frame.index]
        frame.index += 1
        if reduce:
            child_sleep = frozenset(
                b
                for b in frozenset(frame.started) | frame.base_sleep
                if independent(action, b)
            )
        else:
            child_sleep = frozenset()
        frame.started.append(action)
        explored_from[frame.state].add(action)

        current = replayer.world_at(frame.prefix)
        try:
            current.apply(action)
        except ReproError as exc:
            replayer.invalidate()
            violations.append(
                Violation(
                    "protocol-error",
                    f"{type(exc).__name__}: {exc}",
                    frame.prefix + (action,),
                )
            )
            continue
        replayer.advanced(action)
        transitions += 1
        path = frame.prefix + (action,)
        max_depth = max(max_depth, len(path))

        child_id, is_new = register(current, path)
        edges[frame.state].append((action, child_id))
        if is_new:
            sleep_store[child_id] = set(child_sleep)
            enabled = enabled_lists[child_id]
            todo = [a for a in enabled if a not in child_sleep]
            sleep_pruned += len(enabled) - len(todo)
            stack.append(
                _Frame(
                    state=child_id,
                    prefix=path,
                    todo=todo,
                    index=0,
                    base_sleep=child_sleep,
                    started=[],
                )
            )
        elif reduce:
            stored = sleep_store[child_id]
            if not child_sleep >= stored:
                # Revisit with a smaller sleep set: transitions slept on
                # the first visit may no longer be covered elsewhere —
                # re-explore exactly those (Godefroid's state-matching
                # rule for sleep sets).
                missing = [
                    a
                    for a in enabled_lists[child_id]
                    if a in stored and a not in child_sleep
                ]
                merged = stored & child_sleep
                sleep_store[child_id] = set(merged)
                sleep_pruned -= len(missing)
                if missing:
                    stack.append(
                        _Frame(
                            state=child_id,
                            prefix=path,
                            todo=missing,
                            index=0,
                            base_sleep=frozenset(merged),
                            started=list(explored_from[child_id]),
                        )
                    )

    # ---------------------------------------------------------------- #
    # post-hoc analyses on the explored graph
    # ---------------------------------------------------------------- #
    n_states = len(enabled_lists)
    if complete and not (violations and stop_on_violation):
        starving = _starvation_sccs(edges, req_sets, enabled_lists)
        for scc_states, node in starving:
            prefix = _shortest_path(edges, 0, scc_states[0])
            loop = _cycle_within(edges, set(scc_states), scc_states[0])
            violations.append(
                Violation(
                    "starvation",
                    f"node {node} remains requesting around a reachable "
                    "cycle the system can repeat forever",
                    tuple(prefix),
                    tuple(loop),
                )
            )

    schedules, visits = _path_counts(edges, enabled_lists)
    fingerprint = _set_fingerprint(state_ids)
    violations = _minimised(violations, edges, state_ids, scope)
    return ExploreReport(
        scope=scope,
        states=n_states,
        transitions=transitions,
        enabled_total=enabled_total,
        sleep_pruned=sleep_pruned,
        schedules_covered=schedules,
        naive_visits=visits,
        max_depth=max_depth,
        complete=complete,
        violations=violations,
        state_fingerprint=fingerprint,
        elapsed_s=time.monotonic() - started_at,  # repro: allow[RPR001] report timing only
    )


# --------------------------------------------------------------------- #
# graph helpers
# --------------------------------------------------------------------- #
def _set_fingerprint(state_ids: Dict[str, int]) -> str:
    import hashlib

    blob = "\n".join(sorted(state_ids)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _shortest_path(
    edges: Sequence[Sequence[Tuple[Action, int]]], src: int, dst: int
) -> List[Action]:
    """Shortest action schedule from ``src`` to ``dst`` (BFS)."""
    if src == dst:
        return []
    parent: Dict[int, Tuple[int, Action]] = {src: (-1, ())}
    queue = deque([src])
    while queue:
        state = queue.popleft()
        for action, child in edges[state]:
            if child in parent:
                continue
            parent[child] = (state, action)
            if child == dst:
                path: List[Action] = []
                cursor = dst
                while cursor != src:
                    prev, act = parent[cursor]
                    path.append(act)
                    cursor = prev
                path.reverse()
                return path
            queue.append(child)
    raise ExplorationError(f"state {dst} unreachable from {src}")


def _cycle_within(
    edges: Sequence[Sequence[Tuple[Action, int]]],
    members: Set[int],
    start: int,
) -> List[Action]:
    """An action cycle through ``start`` staying inside ``members``."""
    parent: Dict[int, Tuple[int, Action]] = {}
    queue = deque([start])
    seen = {start}
    while queue:
        state = queue.popleft()
        for action, child in edges[state]:
            if child not in members:
                continue
            if child == start:
                path = [action]
                cursor = state
                while cursor != start:
                    prev, act = parent[cursor]
                    path.append(act)
                    cursor = prev
                path.reverse()
                return path
            if child not in seen:
                seen.add(child)
                parent[child] = (state, action)
                queue.append(child)
    return []


def _tarjan_sccs(
    edges: Sequence[Sequence[Tuple[Action, int]]]
) -> List[List[int]]:
    """Iterative Tarjan; components are emitted in reverse topological
    order of the condensation."""
    n = len(edges)
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    scc_stack: List[int] = []
    components: List[List[int]] = []
    counter = [1]

    for root in range(n):
        if visited[root]:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            state, child_idx = work.pop()
            if child_idx == 0:
                visited[state] = True
                index[state] = low[state] = counter[0]
                counter[0] += 1
                scc_stack.append(state)
                on_stack[state] = True
            advanced = False
            for i in range(child_idx, len(edges[state])):
                child = edges[state][i][1]
                if not visited[child]:
                    work.append((state, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    low[state] = min(low[state], index[child])
            if advanced:
                continue
            if low[state] == index[state]:
                component = []
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == state:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[state])
    return components


def _starvation_sccs(
    edges: Sequence[Sequence[Tuple[Action, int]]],
    req_sets: Sequence[Tuple[int, ...]],
    enabled_lists: Sequence[Tuple[Action, ...]],
) -> List[Tuple[List[int], int]]:
    """Bottom, nontrivial SCCs in which some node requests forever."""
    components = _tarjan_sccs(edges)
    comp_of: Dict[int, int] = {}
    for ci, members in enumerate(components):
        for state in members:
            comp_of[state] = ci
    out: List[Tuple[List[int], int]] = []
    for ci, members in enumerate(components):
        nontrivial = len(members) > 1 or any(
            child == members[0] for _a, child in edges[members[0]]
        )
        if not nontrivial:
            continue
        bottom = all(
            comp_of[child] == ci
            for state in members
            for _a, child in edges[state]
        )
        if not bottom:
            continue
        always_req: Set[int] = set(req_sets[members[0]])
        for state in members[1:]:
            always_req &= set(req_sets[state])
        if always_req:
            out.append((sorted(members), min(always_req)))
    return out


def _path_counts(
    edges: Sequence[Sequence[Tuple[Action, int]]],
    enabled_lists: Sequence[Tuple[Action, ...]],
) -> Tuple[int, int]:
    """(distinct maximal schedules, naive state visits), saturating.

    Naive enumeration replays every schedule from the root, touching one
    state per step: its cost is the total number of root-anchored paths,
    which the explored graph encodes as a path-count DP over the SCC
    condensation (cycles saturate — a naive enumerator would never
    terminate on them).
    """
    components = _tarjan_sccs(edges)
    comp_of: Dict[int, int] = {}
    for ci, members in enumerate(components):
        for state in members:
            comp_of[state] = ci
    # reverse topological -> process in topological order
    order = list(reversed(range(len(components))))
    paths = [0] * len(components)
    cyclic = [len(c) > 1 for c in components]
    for ci, members in enumerate(components):
        if not cyclic[ci]:
            state = members[0]
            cyclic[ci] = any(child == state for _a, child in edges[state])
    if edges:
        paths[comp_of[0]] = 1
    schedules = 0
    visits = 0
    for ci in order:
        members = components[ci]
        if paths[ci] == 0:
            continue
        if cyclic[ci]:
            paths[ci] = _SATURATE
        visits = min(_SATURATE, visits + paths[ci] * len(members))
        terminal = all(
            not enabled_lists[state] for state in members
        )
        if terminal:
            schedules = min(_SATURATE, schedules + paths[ci])
        for state in members:
            for _action, child in edges[state]:
                cj = comp_of[child]
                if cj != ci:
                    paths[cj] = min(_SATURATE, paths[cj] + paths[ci])
    return schedules, visits


def _minimised(
    violations: List[Violation],
    edges: Sequence[Sequence[Tuple[Action, int]]],
    state_ids: Dict[str, int],
    scope: ExploreScope,
) -> List[Violation]:
    """Shorten each counterexample to the BFS-shortest schedule."""
    if not violations:
        return violations
    # Map each violation's witness prefix back to a state by replaying
    # only when the witness ends in a state (safety/deadlock/starvation);
    # protocol errors keep their witness (the failing action is last).
    out: List[Violation] = []
    for violation in violations:
        if violation.property == "protocol-error" or not violation.schedule:
            out.append(violation)
            continue
        try:
            target = _replay_to_state(violation.schedule, scope, state_ids)
        except ReproError:
            out.append(violation)
            continue
        if target is None:
            out.append(violation)
            continue
        short = _shortest_path(edges, 0, target)
        if len(short) < len(violation.schedule):
            violation = dataclasses.replace(violation, schedule=tuple(short))
        out.append(violation)
    return out


def _replay_to_state(
    schedule: Tuple[Action, ...],
    scope: ExploreScope,
    state_ids: Dict[str, int],
) -> Optional[int]:
    world = World(scope)
    for action in schedule:
        world.apply(action)
    return state_ids.get(world.digest())
