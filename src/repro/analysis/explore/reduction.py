"""Partial-order reduction oracles for the explorer.

The explorer performs a *sleep-set* dynamic partial-order reduction
(Godefroid): when two enabled actions are independent, only one of their
two interleavings is executed — the other is put to sleep, because the
state it leads to is reached (and fully explored) through the sibling
branch.  Sleep sets prune redundant *transitions* while still visiting
every reachable state, which keeps all reachability properties (mutual
exclusion, deadlock-freedom) exact and makes the explored state set
identical across backends by construction.

Independence is structural, derived from how the controlled world
executes actions (:mod:`repro.analysis.explore.world`):

* an action runs the handler/entry code of exactly one *node* and its
  synchronous continuation on that node;
* the only shared structures it touches are the per-flow FIFO queues —
  it pops the head of its own flow (a delivery) and appends to flows
  keyed by its node as source.

Hence two actions at *different* nodes commute: their state writes are
disjoint and their queue appends target disjoint flows (appends behind a
pending head do not move the head).  Crash and recovery actions touch
global membership and every queue, so they are dependent on everything.

The static send graphs from :mod:`repro.analysis.effects` feed two
further oracles:

* :func:`build_envelopes` — the per-port declared send envelope the
  world checks on every captured message (a conformance-in-the-loop
  guard: a handler emitting an undeclared kind aborts the exploration
  as a protocol error rather than silently growing the state space);
* :func:`visibility_oracle` — whether delivering a kind at a node may
  enter the CS (``grants``) or drive a coordinator automaton; the
  explorer orders such actions first so counterexample schedules stay
  short.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..effects import check_conformance
from .world import Action, World

__all__ = [
    "action_node",
    "build_envelopes",
    "independent",
    "visibility_oracle",
]


def action_node(action: Action) -> Optional[int]:
    """The node whose code an action executes (``None`` = global)."""
    kind = action[0]
    if kind == "deliver":
        return action[2]  # the destination runs the handler
    if kind in ("request", "release", "crash"):
        return action[1]
    return None  # recover


def independent(a: Action, b: Action) -> bool:
    """Unconditional (all-states) independence of two actions."""
    na = action_node(a)
    nb = action_node(b)
    if na is None or nb is None or a[0] == "crash" or b[0] == "crash":
        # crash/recover rewrite membership and queues globally
        return False
    return na != nb


_EFFECTS_CACHE: Optional[Dict[str, object]] = None


def _effects_by_algorithm() -> Dict[str, object]:
    global _EFFECTS_CACHE
    if _EFFECTS_CACHE is None:
        _, _EFFECTS_CACHE = check_conformance()
    return _EFFECTS_CACHE


def build_envelopes(world: World) -> Optional[Dict[str, frozenset]]:
    """Per-port declared send-kind sets for the world's algorithms, or
    ``None`` when a port runs an algorithm unknown to the static
    analysis (mutant fixtures)."""
    if world.scope.peer_factory is not None:
        return None
    effects = _effects_by_algorithm()
    envelopes: Dict[str, frozenset] = {}
    for port, (algorithm, _members) in world.port_members.items():
        eff = effects.get(algorithm)
        if eff is None:
            return None
        envelopes[port] = frozenset(eff.sent_kinds)
    return envelopes


def visibility_oracle(world: World) -> Callable[[Action], bool]:
    """A predicate: may this action enter a critical section (or drive a
    coordinator automaton)?  Used to order exploration, not to prune."""
    if world.scope.peer_factory is not None:
        return lambda action: True
    effects = _effects_by_algorithm()
    grants_by_port: Dict[str, Dict[str, bool]] = {}
    for port, (algorithm, _members) in world.port_members.items():
        eff = effects.get(algorithm)
        if eff is None:
            return lambda action: True
        grants_by_port[port] = {
            kind: bool(eff.grants.get(handler, True))
            for kind, handler in eff.handlers.items()
        }
    coordinator_nodes = world.coordinator_nodes

    def visible(action: Action) -> bool:
        kind = action[0]
        if kind != "deliver":
            return True
        dst, port = action[2], action[3]
        if dst in coordinator_nodes:
            return True
        queue = world.pending.get((action[1], dst, port))
        if not queue:
            return True
        head = queue[0][0]
        return grants_by_port.get(port, {}).get(head.kind, True)

    return visible
