"""Replayable counterexample schedules.

A violation found by the explorer is only useful if it can be handed to
a human and re-executed deterministically.  This module pins the full
recipe into one JSON document:

* the exploration scope (enough to rebuild the exact
  :class:`~repro.analysis.explore.world.World`),
* the violated property and its message,
* the minimal schedule — the exact sequence of request/release/deliver/
  crash/recover actions from the initial state to the violation (plus,
  for starvation, the loop the system can cycle in forever),
* a best-effort mapping onto :class:`repro.experiments.ExperimentConfig`
  fields, so the same cell can be re-run under the normal simulator for
  side-by-side comparison.

:func:`replay` re-executes the schedule step by step against a fresh
world and returns the per-step snapshots; :func:`chrome_trace` renders
the replay as a Chrome ``traceEvents`` document (the same format as
:mod:`repro.obs.export`, loadable in https://ui.perfetto.dev) with one
process per node and one complete span per action, so a counterexample
can be scrubbed through visually.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from ...errors import ReproError
from .explorer import Violation
from .world import Action, ExploreScope, World

__all__ = [
    "ReplayStep",
    "chrome_trace",
    "counterexample_to_dict",
    "load_counterexample",
    "replay",
    "write_chrome_trace",
    "write_counterexample",
]

#: Bump on any incompatible change to the counterexample document.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# serialization


def _experiment_mapping(scope: ExploreScope) -> Dict[str, Any]:
    """Best-effort projection of an exploration scope onto the fields of
    :class:`repro.experiments.ExperimentConfig` (the explorer's workload
    is bounded-requests rather than Poisson, so ``n_cs`` carries the
    per-node request budget)."""
    return {
        "system": scope.system,
        "intra": scope.intra,
        "inter": scope.inter if scope.system == "composition" else scope.intra,
        "n_clusters": scope.n_clusters,
        "apps_per_cluster": max(1, scope.nodes_per_cluster - 1),
        "n_cs": scope.requests_per_node,
        "fifo": scope.fifo_flows,
        "seed": 0,
    }


def counterexample_to_dict(
    scope: ExploreScope, violation: Violation
) -> Dict[str, Any]:
    """The complete, self-describing counterexample document."""
    return {
        "schema": "repro.explore.counterexample",
        "version": SCHEMA_VERSION,
        "cell": scope.describe(),
        "scope": scope.to_dict(),
        "property": violation.property,
        "message": violation.message,
        "schedule": [list(a) for a in violation.schedule],
        "loop": [list(a) for a in violation.loop],
        "experiment_config": _experiment_mapping(scope),
    }


def write_counterexample(
    out: Union[str, IO[str]], scope: ExploreScope, violation: Violation
) -> None:
    doc = counterexample_to_dict(scope, violation)
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    else:
        json.dump(doc, out, indent=2)


def _parse_action(raw: List[Any]) -> Action:
    if not raw or not isinstance(raw[0], str):
        raise ReproError(f"malformed schedule action: {raw!r}")
    return tuple(raw)  # type: ignore[return-value]


def load_counterexample(
    source: Union[str, IO[str]],
) -> Tuple[ExploreScope, Violation]:
    """Parse a counterexample document back into (scope, violation).

    Mutant-fixture counterexamples (``peer_factory`` set at explore
    time) are rejected: the factory is code, not data, and cannot be
    round-tripped through JSON.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        doc = json.load(source)
    if doc.get("schema") != "repro.explore.counterexample":
        raise ReproError("not a repro.explore.counterexample document")
    if doc.get("version") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported counterexample schema version {doc.get('version')!r}"
        )
    raw_scope = dict(doc["scope"])
    if raw_scope.pop("peer_factory", None) is not None:
        raise ReproError(
            "counterexample was produced with a peer_factory override; "
            "replay it in-process via the fixture that generated it"
        )
    if raw_scope.get("requesters") is not None:
        raw_scope["requesters"] = tuple(raw_scope["requesters"])
    scope = ExploreScope(**raw_scope)
    violation = Violation(
        property=doc["property"],
        message=doc["message"],
        schedule=tuple(_parse_action(a) for a in doc["schedule"]),
        loop=tuple(_parse_action(a) for a in doc.get("loop", [])),
    )
    return scope, violation


# ---------------------------------------------------------------------------
# replay


class ReplayStep:
    """One executed action and the world snapshot after it."""

    __slots__ = ("index", "action", "cs_nodes", "req_nodes", "enabled")

    def __init__(
        self,
        index: int,
        action: Optional[Action],
        world: World,
    ) -> None:
        self.index = index
        self.action = action
        self.cs_nodes = world.cs_nodes()
        self.req_nodes = world.req_nodes()
        self.enabled = world.enabled()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "action": None if self.action is None else list(self.action),
            "cs_nodes": sorted(self.cs_nodes),
            "req_nodes": sorted(self.req_nodes),
            "enabled": [list(a) for a in self.enabled],
        }


def replay(
    scope: ExploreScope,
    schedule: Tuple[Action, ...],
    *,
    world: Optional[World] = None,
) -> List[ReplayStep]:
    """Re-execute a schedule deterministically from the initial state.

    Returns one :class:`ReplayStep` per position: index 0 is the initial
    state (``action=None``); step ``i`` (>=1) is the snapshot after
    ``schedule[i-1]``.  An action that is not currently enabled raises
    :class:`~repro.core.errors.ReproError` — the document does not match
    the code it is replayed against.
    """
    if world is None:
        world = World(scope)
    steps = [ReplayStep(0, None, world)]
    for i, action in enumerate(schedule):
        if action not in world.enabled():
            raise ReproError(
                f"schedule step {i} ({action!r}) is not enabled; "
                f"enabled: {world.enabled()!r}"
            )
        world.apply(action)
        steps.append(ReplayStep(i + 1, action, world))
    return steps


# ---------------------------------------------------------------------------
# Chrome trace export

#: Synthetic per-step duration (µs).  The explorer is untimed — spacing
#: the actions evenly keeps the trace scrubber readable.
_STEP_US = 1000.0


def _action_span(action: Action) -> Tuple[int, str, Dict[str, Any]]:
    """(pid, name, args) for one schedule action."""
    kind = action[0]
    if kind == "deliver":
        src, dst, port = action[1], action[2], action[3]
        return dst, f"deliver {src}->{dst} [{port}]", {
            "src": src, "dst": dst, "port": port,
        }
    if kind in ("request", "release", "crash"):
        return action[1], f"{kind} @{action[1]}", {"node": action[1]}
    return 0, kind, {}


def chrome_trace(
    scope: ExploreScope,
    violation: Violation,
    *,
    steps: Optional[List[ReplayStep]] = None,
) -> Dict[str, Any]:
    """Render a counterexample as a Chrome ``traceEvents`` document.

    One process per node (named with its explorer role), thread 0 for
    the schedule actions, thread 1 marking CS occupancy after each step.
    The format matches :mod:`repro.obs.export` so both kinds of trace
    load into the same viewer.
    """
    if steps is None:
        steps = replay(scope, violation.schedule)
    world = World(scope)
    events: List[Dict[str, Any]] = []
    coordinators = world.coordinator_nodes
    for node in sorted(world.topology.nodes):
        role = " [coordinator]" if node in coordinators else ""
        events.append({
            "ph": "M", "pid": node, "tid": 0, "name": "process_name",
            "args": {"name": f"node {node}{role}"},
        })
        events.append({
            "ph": "M", "pid": node, "tid": 0, "name": "thread_name",
            "args": {"name": "schedule"},
        })
        events.append({
            "ph": "M", "pid": node, "tid": 1, "name": "thread_name",
            "args": {"name": "critical section"},
        })
    full = tuple(violation.schedule) + tuple(violation.loop)
    for i, action in enumerate(full):
        pid, name, args = _action_span(action)
        args["step"] = i
        if i >= len(violation.schedule):
            args["loop"] = True
        events.append({
            "ph": "X", "pid": pid, "tid": 0, "name": name,
            "ts": i * _STEP_US, "dur": _STEP_US * 0.9, "args": args,
        })
    for step in steps[1:]:
        for node in step.cs_nodes:
            events.append({
                "ph": "X", "pid": node, "tid": 1, "name": "in CS",
                "ts": (step.index - 1) * _STEP_US, "dur": _STEP_US,
                "args": {"step": step.index - 1},
            })
    events.append({
        "ph": "i", "pid": 0, "tid": 0, "s": "g",
        "name": f"VIOLATION: {violation.property}",
        "ts": len(violation.schedule) * _STEP_US,
        "args": {"message": violation.message},
    })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    out: Union[str, IO[str]],
    scope: ExploreScope,
    violation: Violation,
    *,
    steps: Optional[List[ReplayStep]] = None,
) -> None:
    doc = chrome_trace(scope, violation, steps=steps)
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
    else:
        json.dump(doc, out)
