"""Controlled-scheduler world for the bounded model checker.

A :class:`World` builds one of the repo's real mutex systems — the very
same :class:`~repro.core.composition.Composition` / ``FlatMutex`` classes
the simulator runs, unmodified — on top of a :class:`ControlledTransport`
whose delivery interception hands every sent message to the explorer
instead of the latency model.  The explorer then owns the schedule: the
only sources of nondeterminism are the *actions* it chooses to fire,

* ``("request", n)`` — application node ``n`` calls ``request_cs``,
* ``("release", n)`` — node ``n`` leaves its critical section,
* ``("deliver", src, dst, port)`` — deliver the FIFO head of one flow,
* ``("crash", n)`` — crash-stop node ``n`` (at most once per run),
* ``("recover",)`` — membership reset + replay over the survivors,

and every handler runs synchronously to quiescence (``drain_current``)
before the next action, so a world state is exactly one point of the
protocol's reachable interleaving space.

States are summarised by :meth:`World.fingerprint` — the canonical tuple
of every peer's :meth:`~repro.mutex.base.MutexPeer.fingerprint`, every
coordinator automaton state, the pending message queues and the remaining
CS budgets — and hashed with :meth:`World.digest` for deduplication.  The
fingerprint is backend-independent by construction (numpy scalars are
canonicalised), which is what lets the explorer assert that interpreted
and compiled backends cover the identical state set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import numbers
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ...errors import ReproError
from ...core.composition import Composition, FlatMutex, MutexSystem
from ...mutex.base import MutexPeer, PeerState
from ...net.latency import ConstantLatency
from ...net.message import Message
from ...net.network import Network
from ...net.topology import uniform_topology
from ...sim.kernel import Simulator

__all__ = [
    "Action",
    "ControlledTransport",
    "ExplorationError",
    "ExploreScope",
    "World",
]

#: An explorer action — one of the tuples documented in the module
#: docstring.  Hashable and totally ordered within each action kind, so
#: enabled sets, sleep sets and schedules are all deterministic.
Action = Tuple

#: A directed message flow: ``(src, dst, port)``.  Per-flow FIFO order is
#: the faithful model of the simulator's jitter-free runs (equal
#: latencies preserve per-link send order).
Flow = Tuple[int, int, str]

_SYSTEMS = ("flat", "composition")
_BACKENDS = ("interpreted", "compiled")


class ExplorationError(ReproError):
    """The explorer was driven outside its supported envelope."""


@dataclasses.dataclass(frozen=True)
class ExploreScope:
    """One model-checking cell: a system configuration plus bounds.

    The checker is *bounded*: each application node performs at most
    ``requests_per_node`` critical sections.  Within that bound the
    exploration is exhaustive over every admissible interleaving of
    message deliveries and CS requests/releases.
    """

    system: str = "composition"
    intra: str = "naimi"
    inter: str = "naimi"
    n_clusters: int = 2
    nodes_per_cluster: int = 2
    requests_per_node: int = 1
    #: Restrict the requesting workload to these application nodes
    #: (None = every app node requests).  Non-requesters still relay
    #: messages; the knob tunes per-cell interleaving width.
    requesters: Optional[Tuple[int, ...]] = None
    backend: str = "interpreted"
    #: Deliver flows in per-link FIFO order (one enabled action per
    #: flow).  Switching this off explores reorderings within a link —
    #: outside the simulator's jitter-free semantics, and incompatible
    #: with sleep-set reduction (the explorer forces full expansion).
    fifo_flows: bool = True
    #: Crash-stop this node (once, at any point of the schedule); a
    #: single ``("recover",)`` action becomes available afterwards.
    crash_node: Optional[int] = None
    #: Override peer construction (mutant fixtures).  Implies ``flat``
    #: system, interpreted backend, and disables reduction + the static
    #: send-envelope check (the mutant is invisible to static analysis).
    peer_factory: Optional[Callable] = None
    label: str = ""

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        if self.system not in _SYSTEMS:
            raise ExplorationError(f"unknown system {self.system!r}")
        if self.backend not in _BACKENDS:
            raise ExplorationError(f"unknown backend {self.backend!r}")
        if self.n_clusters < 1 or self.nodes_per_cluster < 2:
            raise ExplorationError(
                "need >= 1 cluster of >= 2 nodes (coordinator slot + app)"
            )
        if self.requests_per_node < 1:
            raise ExplorationError("requests_per_node must be >= 1")
        if self.peer_factory is not None:
            if self.system != "flat":
                raise ExplorationError("peer_factory requires system='flat'")
            if self.backend != "interpreted":
                raise ExplorationError("peer_factory cells run interpreted")
            if self.crash_node is not None:
                raise ExplorationError("peer_factory cells cannot crash")
        if self.crash_node is not None and self.system != "flat":
            raise ExplorationError(
                "crash cells are supported for the flat system only "
                "(coordinator failover is driven by repro.core.recovery "
                "controllers, outside the explorer's synchronous envelope)"
            )

    def describe(self) -> str:
        if self.label:
            return self.label
        algo = (
            self.intra
            if self.system == "flat"
            else f"{self.intra}-{self.inter}"
        )
        tag = f"{self.system}:{algo}:{self.n_clusters}x{self.nodes_per_cluster}"
        tag += f":r{self.requests_per_node}"
        if self.requesters is not None:
            tag += f":q{','.join(str(n) for n in self.requesters)}"
        tag += f":{self.backend}"
        if self.crash_node is not None:
            tag += f":crash{self.crash_node}"
        return tag

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d.pop("peer_factory")
        if self.peer_factory is not None:
            d["peer_factory"] = getattr(
                self.peer_factory, "__name__", repr(self.peer_factory)
            )
        return d


class ControlledTransport(Network):
    """A :class:`~repro.net.network.Network` whose deliveries are owned
    by the explorer (the interceptor is installed before the system is
    built, so no message ever reaches the latency model).

    ``fast_send`` aliases the plain interpreted ``send`` so compiled
    peers — whose ``_bind_state`` caches ``net.fast_send`` — run their
    compiled handler bodies on top of the controlled schedule.  That is
    the whole point of the cross-backend check: same schedule, compiled
    state transitions, identical fingerprints required.
    """

    fast_send = Network.send


class World:
    """One live instance of a scoped system under explorer control."""

    def __init__(self, scope: ExploreScope) -> None:
        scope.validate()
        self.scope = scope
        self.sim = Simulator(seed=0)
        self.topology = uniform_topology(scope.n_clusters, scope.nodes_per_cluster)
        self.net = ControlledTransport(self.sim, self.topology, ConstantLatency(0.1))
        #: pending[(src, dst, port)] -> FIFO queue of captured messages,
        #: paired with their canonical (kind, payload) form — computed
        #: once at capture so state fingerprinting is O(pending) lookups
        self.pending: Dict[Flow, Deque[Tuple[Message, Tuple]]] = {}
        self.lost = 0
        self.down: Set[int] = set()
        self.crash_used = False
        self.recover_used = False
        #: declared send envelope per port (kind set), None = unchecked
        self._envelopes: Optional[Dict[str, frozenset]] = None
        self.net.set_delivery_intercept(self._capture)

        self.system: MutexSystem
        if scope.system == "composition":
            self.system = Composition(
                self.sim, self.net, self.topology,
                intra=scope.intra, inter=scope.inter,
            )
        else:
            self.system = FlatMutex(
                self.sim, self.net, self.topology,
                algorithm=scope.intra,
                peer_factory=scope.peer_factory,
                name=(None if scope.peer_factory is None else scope.label or None),
            )
        self._collect_peers()
        self.app_nodes: Tuple[int, ...] = self.system.app_nodes
        if scope.crash_node is not None and scope.crash_node not in self.app_nodes:
            raise ExplorationError(
                f"crash_node {scope.crash_node} is not an application node "
                f"{self.app_nodes}"
            )
        requesters = (
            self.app_nodes
            if scope.requesters is None
            else tuple(scope.requesters)
        )
        if not set(requesters) <= set(self.app_nodes):
            raise ExplorationError(
                f"requesters {requesters} not all application nodes "
                f"{self.app_nodes}"
            )
        self.budget: Dict[int, int] = {
            n: (scope.requests_per_node if n in requesters else 0)
            for n in self.app_nodes
        }
        if scope.backend == "compiled":
            self._promote()
        self._drain()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _collect_peers(self) -> None:
        peers: List[MutexPeer] = []
        self.port_members: Dict[str, Tuple[str, Tuple[int, ...]]] = {}
        if isinstance(self.system, Composition):
            for ci, instance in enumerate(self.system.intra_instances):
                peers.extend(instance)
                self.port_members[f"intra/{ci}"] = (
                    self.system.intra_name,
                    self.topology.cluster_nodes(ci),
                )
            peers.extend(self.system.inter_peers)
            self.port_members["inter"] = (
                self.system.inter_name,
                self.topology.coordinator_nodes,
            )
            self.coordinators = list(self.system.coordinators)
            self.coordinator_nodes = frozenset(
                c.lower.node for c in self.coordinators
            )
        else:
            assert isinstance(self.system, FlatMutex)
            peers = [self.system.peer_for(n) for n in self.system.app_nodes]
            self.port_members["flat"] = (
                self.system.algorithm_name,
                self.system.app_nodes,
            )
            self.coordinators = []
            self.coordinator_nodes = frozenset()
        self.peers: List[MutexPeer] = sorted(
            peers, key=lambda p: (p.port, p.node)
        )

    def _promote(self) -> None:
        """Swap every peer (and coordinator) onto the compiled fast path.

        :func:`repro.compile.peers.compile_system` refuses plain networks
        by design (it wants the fused :class:`CompiledNetwork`); the
        explorer instead performs the same in-place ``__class__`` swap
        over the :class:`ControlledTransport`, whose ``fast_send`` alias
        satisfies the compiled peers' binding contract.
        """
        from ...compile.peers import (
            _PEER_MAP,
            CompiledCoordinator,
            _rebind_callbacks,
        )

        promoted = 0
        for peer in self.peers:
            compiled = _PEER_MAP.get(type(peer))
            if compiled is None:
                continue
            peer.__class__ = compiled
            peer._bind_state()
            promoted += 1
        if promoted == 0:
            raise ExplorationError(
                f"no compiled peer class for scope {self.scope.describe()!r}"
            )
        for coord in self.coordinators:
            coord.__class__ = CompiledCoordinator
            _rebind_callbacks(coord.lower.on_pending_request, coord)
            _rebind_callbacks(coord.lower.on_granted, coord)
            _rebind_callbacks(coord.upper.on_pending_request, coord)
            _rebind_callbacks(coord.upper.on_granted, coord)

    # ------------------------------------------------------------------ #
    # message capture
    # ------------------------------------------------------------------ #
    def set_envelopes(self, envelopes: Dict[str, frozenset]) -> None:
        """Arm the static send-envelope check: every captured message
        kind must appear in its port's declared send graph (from
        :mod:`repro.analysis.effects`)."""
        self._envelopes = envelopes

    def _capture(self, msg: Message) -> None:
        if self._envelopes is not None:
            allowed = self._envelopes.get(msg.port)
            if allowed is not None and msg.kind not in allowed:
                raise ExplorationError(
                    f"message kind {msg.kind!r} on port {msg.port!r} is "
                    f"outside the declared send envelope {sorted(allowed)}"
                )
        if msg.dst in self.down:
            self.lost += 1
            return
        flow = (msg.src, msg.dst, msg.port)
        canonical = (msg.kind, _canon(msg.payload))
        self.pending.setdefault(flow, deque()).append((msg, canonical))

    def _drain(self) -> None:
        self.sim.drain_current()
        if self.sim.pending:
            raise ExplorationError(
                "future-scheduled kernel events (timers?) are outside the "
                "explorer's synchronous envelope; disable retry timers at "
                "explore scope"
            )

    # ------------------------------------------------------------------ #
    # enabled actions
    # ------------------------------------------------------------------ #
    def enabled(self) -> List[Action]:
        acts: List[Action] = []
        for n in self.app_nodes:
            if n in self.down:
                continue
            peer = self.system.peer_for(n)
            if peer.state is PeerState.NO_REQ and self.budget[n] > 0:
                acts.append(("request", n))
            elif peer.in_cs:
                acts.append(("release", n))
        for flow in sorted(self.pending):
            queue = self.pending[flow]
            if not queue:
                continue
            if self.scope.fifo_flows:
                acts.append(("deliver", *flow))
            else:
                acts.extend(("deliver", *flow, i) for i in range(len(queue)))
        if self.scope.crash_node is not None and not self.crash_used:
            acts.append(("crash", self.scope.crash_node))
        if self.down and not self.recover_used:
            acts.append(("recover",))
        return acts

    # ------------------------------------------------------------------ #
    # applying actions
    # ------------------------------------------------------------------ #
    def apply(self, action: Action) -> None:
        kind = action[0]
        if kind == "request":
            node = action[1]
            if node in self.down or self.budget.get(node, 0) <= 0:
                raise ExplorationError(f"request not enabled at node {node}")
            self.budget[node] -= 1
            self.system.peer_for(node).request_cs()
        elif kind == "release":
            self.system.peer_for(action[1]).release_cs()
        elif kind == "deliver":
            flow = (action[1], action[2], action[3])
            queue = self.pending.get(flow)
            if not queue:
                raise ExplorationError(f"no pending message on flow {flow}")
            index = action[4] if len(action) > 4 else 0
            msg = queue[index][0]
            del queue[index]
            if not queue:
                del self.pending[flow]
            self.net.deliver_intercepted(msg)
        elif kind == "crash":
            self._crash(action[1])
        elif kind == "recover":
            self._recover()
        else:
            raise ExplorationError(f"unknown action {action!r}")
        self._drain()

    def _crash(self, node: int) -> None:
        if self.crash_used or node in self.down:
            raise ExplorationError(f"crash not enabled at node {node}")
        self.crash_used = True
        self.down.add(node)
        for flow in [f for f in self.pending if f[1] == node]:
            self.lost += len(self.pending[flow])
            del self.pending[flow]

    def _recover(self) -> None:
        """Membership reset over the survivors (the flat-system recovery
        path from :mod:`repro.core.recovery`): drop the crashed epoch's
        in-flight messages, re-seat the token via ``elect_holder`` +
        the per-algorithm resetter, then replay every surviving
        requester through the unmodified ``_do_request`` path."""
        from ...core.recovery import _RESETTERS, elect_holder

        if not self.down or self.recover_used:
            raise ExplorationError("recover not enabled")
        algorithm = self.port_members["flat"][0]
        resetter = _RESETTERS.get(algorithm)
        if resetter is None:
            raise ExplorationError(
                f"no membership resetter for algorithm {algorithm!r}"
            )
        self.recover_used = True
        # Epoch fence: recovery assumes the old epoch's messages are
        # gone (the controller quiesces before resetting; the explorer
        # models the fence as a drop of all in-flight messages).
        self.lost += sum(len(q) for q in self.pending.values())
        self.pending.clear()
        live = [p for p in self.peers if p.node not in self.down]
        elected = elect_holder(live)
        resetter(live, [p.node for p in live], elected.node)
        for peer in live:
            if peer.state is PeerState.REQ:
                peer._do_request()

    # ------------------------------------------------------------------ #
    # observations
    # ------------------------------------------------------------------ #
    def live_app_peers(self) -> List[MutexPeer]:
        return [
            self.system.peer_for(n)
            for n in self.app_nodes
            if n not in self.down
        ]

    def cs_nodes(self) -> Tuple[int, ...]:
        return tuple(p.node for p in self.live_app_peers() if p.in_cs)

    def req_nodes(self) -> Tuple[int, ...]:
        return tuple(
            p.node for p in self.live_app_peers() if p.state is PeerState.REQ
        )

    # ------------------------------------------------------------------ #
    # canonical state fingerprint
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> Tuple:
        parts: List[Tuple] = [
            (peer.port, _canon(peer.fingerprint())) for peer in self.peers
        ]
        parts.extend(
            ("coordinator", c.lower.node, c.state.name)
            for c in self.coordinators
        )
        flows = tuple(
            (flow, tuple(canonical for _m, canonical in self.pending[flow]))
            for flow in sorted(self.pending)
            if self.pending[flow]
        )
        parts.append(("pending", flows))
        parts.append(("budget", tuple(sorted(self.budget.items()))))
        parts.append(
            ("faults", tuple(sorted(self.down)), self.crash_used, self.recover_used)
        )
        return tuple(parts)

    def digest(self) -> str:
        blob = repr(self.fingerprint()).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


def _canon(value):
    """Canonicalise a payload/fingerprint value across backends: numpy
    scalars become Python ints/floats, containers become sorted tuples."""
    # Exact-type fast paths first: fingerprints are overwhelmingly
    # plain ints/bools/strings/tuples and this function is the hottest
    # spot of the whole exploration.
    kind = type(value)
    if kind is int or kind is bool or kind is str or value is None:
        return value
    if kind is float:
        return value
    if kind is tuple or kind is list:
        return tuple(_canon(v) for v in value)
    if kind is dict:
        return tuple(sorted((_canon(k), _canon(v)) for k, v in value.items()))
    if isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, dict):
        return tuple(sorted((_canon(k), _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, deque)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_canon(v) for v in value))
    raise ExplorationError(
        f"cannot canonicalise payload value of type {type(value).__name__}"
    )
