"""The repro-specific lint rules (RPR001-RPR009).

Each rule guards one facet of the determinism / composition-purity
contract (see ``docs/analysis.md`` for the rationale and the suppression
workflow):

========  ==========================================================
RPR001    no wall-clock reads inside ``src/repro``
RPR002    no stdlib ``random`` / numpy global RNG (use ``repro.sim.rng``)
RPR003    no unordered ``set``/``dict.values()``/``dict.keys()``
          iteration inside handler-reachable methods of ``repro.mutex``
          and ``repro.core`` (wrap in ``sorted()`` or allowlist)
RPR004    handlers must not drive the kernel (``Simulator.run``/``step``
          or clock writes) from inside an event
RPR005    composition purity: ``repro.mutex`` must not import
          ``repro.core`` (coordinator/composition internals)
RPR006    no mutable default arguments
RPR007    figure/suite/scalability sweeps must go through the
          cache-aware entry points — no direct
          ``run_experiment``/``run_many`` calls in
          ``repro.experiments.{figures,suites,scalability}``
RPR008    no hand-written per-kind dispatch inside ``repro.compile`` —
          handler resolution must come from the generated tables
          (``dispatch_table``/``fast_table``), not string-built
          ``getattr``, ``kind ==`` ladders or literal kind→handler maps
RPR009    compiled-handler equivalence: every ``_fast_on_<kind>`` in
          ``repro.compile`` must pair (via its base classes) with an
          interpreted ``_on_<kind>`` handler and emit the identical
          send-kind effect multiset — fast tables must not drift from
          the interpreted protocol
========  ==========================================================

Rules yield ``(line, col, message)`` triples; the engine attaches paths,
enclosing scopes and suppression handling.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import ModuleInfo

__all__ = [
    "DEFAULT_RULES",
    "Rule",
    "WallClockRule",
    "StdlibRandomRule",
    "UnorderedIterationRule",
    "KernelReentryRule",
    "CompositionPurityRule",
    "MutableDefaultRule",
    "CacheBypassRule",
    "HandDispatchRule",
    "FastHandlerDriftRule",
]

Finding = Tuple[int, int, str]


class Rule:
    """Base class: subclasses define ``id``, ``summary`` and ``check``."""

    id: str = ""
    summary: str = ""

    def applies(self, mod: ModuleInfo) -> bool:
        return True

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------------- #
# import-origin resolution (shared)
# --------------------------------------------------------------------- #
def import_origins(tree: ast.Module) -> Dict[str, str]:
    """Map local names to their imported dotted origins.

    ``import time as t`` -> ``{"t": "time"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    Only module-level and function-level imports are resolved; the map is
    flat (good enough for flagging known call targets).
    """
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origins[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                origins[local] = f"{node.module}.{alias.name}"
    return origins


def resolve_call_origin(
    func: ast.AST, origins: Dict[str, str]
) -> Optional[str]:
    """Dotted origin of a call target, or ``None`` if unresolvable.

    ``t.perf_counter`` with ``{"t": "time"}`` resolves to
    ``time.perf_counter``; a bare imported name resolves through the map.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = origins.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def resolve_relative_module(mod: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module or ""
    package = mod.module.split(".")
    if mod.path.stem != "__init__":
        package = package[:-1]
    if node.level > 1:
        package = package[: -(node.level - 1)] if node.level - 1 <= len(package) else []
    base = ".".join(package)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base


# --------------------------------------------------------------------- #
# RPR001 — wall clock
# --------------------------------------------------------------------- #
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    id = "RPR001"
    summary = (
        "no wall-clock reads in src/repro — simulated time comes from "
        "Simulator.now; wall-clock inside the simulation breaks RunDigest "
        "determinism"
    )

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module.startswith("repro")

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        origins = import_origins(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_origin(node.func, origins)
            if origin in _WALL_CLOCK:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {origin}() — use simulated time "
                    f"(Simulator.now) or justify with an allow comment",
                )


# --------------------------------------------------------------------- #
# RPR002 — unseeded randomness
# --------------------------------------------------------------------- #
#: numpy.random module-level (global state) draw functions
_NP_GLOBAL = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "exponential",
    "standard_normal",
    "binomial",
    "poisson",
    "lognormal",
}


class StdlibRandomRule(Rule):
    id = "RPR002"
    summary = (
        "no stdlib random / numpy global RNG — every random draw must come "
        "from a named repro.sim.rng.RngRegistry stream"
    )

    def applies(self, mod: ModuleInfo) -> bool:
        # repro.sim.rng is the sanctioned wrapper.
        return mod.module.startswith("repro") and mod.module != "repro.sim.rng"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        origins = import_origins(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        yield (
                            node.lineno,
                            node.col_offset,
                            "import of stdlib random — use "
                            "repro.sim.rng.RngRegistry streams",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module and node.module.split(".")[0] == "random":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "import from stdlib random — use "
                        "repro.sim.rng.RngRegistry streams",
                    )
            elif isinstance(node, ast.Call):
                origin = resolve_call_origin(node.func, origins)
                if origin is None:
                    continue
                parts = origin.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "numpy"
                    and parts[1] == "random"
                    and parts[2] in _NP_GLOBAL
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"numpy global-RNG call {origin}() — draw from a "
                        f"named RngRegistry stream instead",
                    )


# --------------------------------------------------------------------- #
# handler reachability (shared by RPR003/RPR004)
# --------------------------------------------------------------------- #
#: method-name seeds considered protocol entry points
_HANDLER_SEEDS = ("_on_", "on_message")
_HANDLER_EXACT = {"_do_request", "_do_release", "_on_message"}


def handler_reachable_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Methods reachable from message handlers via ``self.<m>()`` calls.

    Seeds are ``_on_*`` handlers plus the request/release entry points;
    the closure follows direct ``self.method()`` calls so helpers like
    ``_try_enter`` (Lamport) or ``_arbiter_request`` (Maekawa) are
    covered without annotating anything.
    """
    methods: Dict[str, ast.FunctionDef] = {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    calls: Dict[str, Set[str]] = {}
    for name, fn in methods.items():
        called: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                called.add(node.func.attr)
        calls[name] = called
    seeds = [
        name
        for name in methods
        if name.startswith(_HANDLER_SEEDS[0])
        or name in _HANDLER_EXACT
        or name == _HANDLER_SEEDS[1]
    ]
    reachable: Set[str] = set()
    stack = list(seeds)
    while stack:
        name = stack.pop()
        if name in reachable or name not in methods:
            continue
        reachable.add(name)
        stack.extend(calls.get(name, ()))
    return {name: methods[name] for name in reachable}


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _unordered_hazards(expr: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """Yield unordered-iteration hazards inside ``expr``, skipping any
    subtree already wrapped in ``sorted(...)``."""
    if _is_sorted_call(expr):
        return
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in ("values", "keys"):
            yield expr, f".{expr.func.attr}()"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            yield expr, f"{expr.func.id}(...)"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        yield expr, "set literal"
    for child in ast.iter_child_nodes(expr):
        yield from _unordered_hazards(child)


class UnorderedIterationRule(Rule):
    id = "RPR003"
    summary = (
        "no unordered set/dict-view iteration in handler-reachable methods "
        "of repro.mutex / repro.core — wrap in sorted() or allowlist with "
        "a determinism proof"
    )

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module.startswith(("repro.mutex", "repro.core"))

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for cls in mod.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            for name, fn in sorted(handler_reachable_methods(cls).items()):
                yield from self._check_method(fn)

    def _check_method(self, fn: ast.FunctionDef) -> Iterator[Finding]:
        iter_exprs: List[ast.AST] = []
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iter_exprs.extend(gen.iter for gen in node.generators)
        seen: Set[Tuple[int, int]] = set()
        for expr in iter_exprs:
            for hazard, what in _unordered_hazards(expr):
                key = (hazard.lineno, hazard.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield (
                    hazard.lineno,
                    hazard.col_offset,
                    f"iteration over unordered {what} in handler-reachable "
                    f"method {fn.name}() — event order must not depend on "
                    f"hash order; wrap in sorted() or allowlist",
                )


# --------------------------------------------------------------------- #
# RPR004 — kernel re-entry from handlers
# --------------------------------------------------------------------- #
def _mentions_sim(node: ast.AST) -> bool:
    """Whether an attribute-chain receiver is (or hangs off) a simulator:
    ``sim``, ``self.sim``, ``self._sim``, ``peer.sim`` ..."""
    while isinstance(node, ast.Attribute):
        if node.attr in ("sim", "_sim"):
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("sim", "_sim")


class KernelReentryRule(Rule):
    id = "RPR004"
    summary = (
        "handlers must not call Simulator.run/step or write the kernel "
        "clock — the kernel is not reentrant and handler-driven time "
        "travel breaks event ordering"
    )

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module.startswith(("repro.mutex", "repro.core"))

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for cls in mod.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            for name, fn in sorted(handler_reachable_methods(cls).items()):
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("run", "step")
                        and _mentions_sim(node.func.value)
                    ):
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"kernel re-entry: .{node.func.attr}() on a "
                            f"Simulator from handler-reachable {fn.name}()",
                        )
                    elif isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and target.attr == "_now"
                                and _mentions_sim(target.value)
                            ):
                                yield (
                                    node.lineno,
                                    node.col_offset,
                                    f"clock write (._now) from "
                                    f"handler-reachable {fn.name}()",
                                )


# --------------------------------------------------------------------- #
# RPR005 — composition purity
# --------------------------------------------------------------------- #
class CompositionPurityRule(Rule):
    id = "RPR005"
    summary = (
        "repro.mutex must not import repro.core — the paper's invariant is "
        "that composed algorithms work *unmodified*, so algorithms cannot "
        "know about coordinator/composition internals"
    )

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module.startswith("repro.mutex")

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            resolved: List[str] = []
            if isinstance(node, ast.Import):
                resolved = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = resolve_relative_module(mod, node)
                # `from ..core import coordinator` names the submodule in
                # the alias list; qualify each alias for the check.
                resolved = [base] + [
                    f"{base}.{alias.name}" for alias in node.names if alias.name != "*"
                ]
            for target in resolved:
                if target == "repro.core" or target.startswith("repro.core."):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"composition-purity violation: import of {target} "
                        f"from {mod.module}",
                    )
                    break


# --------------------------------------------------------------------- #
# RPR006 — mutable defaults
# --------------------------------------------------------------------- #
_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
    "bytearray",
}


class MutableDefaultRule(Rule):
    id = "RPR006"
    summary = (
        "no mutable default arguments — a shared default mutated by one "
        "actor leaks state across peers and runs"
    )

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module.startswith("repro")

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {node.name}() — "
                        f"default to None and construct inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            return name in _MUTABLE_CALLS
        return False


# --------------------------------------------------------------------- #
# RPR007 — cache bypass in sweep modules
# --------------------------------------------------------------------- #
class CacheBypassRule(Rule):
    id = "RPR007"
    summary = (
        "figure/suite sweeps must go through the cache-aware entry points "
        "(run_configs_cached / stream_configs_cached / the sweep helpers) — "
        "a direct run_experiment/run_many call silently bypasses the "
        "experiment cache and re-executes every cell"
    )

    #: modules whose job is sweeping the experiment matrix
    _TARGET_MODULES = (
        "repro.experiments.figures",
        "repro.experiments.suites",
        "repro.experiments.scalability",
    )
    #: the cache-oblivious runner entry points
    _BYPASS_SUFFIXES = ("run_experiment", "run_many")

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module in self._TARGET_MODULES

    def _origins(self, mod: ModuleInfo) -> Dict[str, str]:
        """Import-origin map with *relative* imports resolved too
        (``from .runner import run_many`` → ``repro.experiments.runner.run_many``)."""
        origins = import_origins(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                base = resolve_relative_module(mod, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    origins[local] = f"{base}.{alias.name}" if base else alias.name
        return origins

    def _is_bypass(self, origin: Optional[str]) -> bool:
        if origin is None:
            return False
        parts = origin.split(".")
        # Any repro-origin name ending in run_experiment/run_many: the
        # sweep modules have no legitimate direct caller of either.
        return parts[-1] in self._BYPASS_SUFFIXES and parts[0] == "repro"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        origins = self._origins(mod)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_origin(node.func, origins)
            if self._is_bypass(origin):
                name = origin.split(".")[-1] if origin else "?"
                yield (
                    node.lineno,
                    node.col_offset,
                    f"direct {name}() call bypasses the experiment cache — "
                    f"route the sweep through run_configs_cached()/"
                    f"stream_configs_cached() (or justify with an allow "
                    f"comment / baseline entry)",
                )


# --------------------------------------------------------------------- #
# RPR008 — hand-written dispatch in the compiled backend
# --------------------------------------------------------------------- #
class HandDispatchRule(Rule):
    id = "RPR008"
    summary = (
        "no hand-written per-kind dispatch in repro.compile — handler "
        "resolution must come from the generated tables (dispatch_table/"
        "fast_table), so that table conformance checks see every route; a "
        "string-built getattr, a kind== ladder or a literal kind→handler "
        "map silently bypasses them"
    )

    #: the one module allowed to resolve handlers by name: it *builds*
    #: the tables everything else must go through
    _GENERATOR = "repro.compile.tables"
    _HANDLER_PREFIXES = ("_on_", "_fast_on_")

    def applies(self, mod: ModuleInfo) -> bool:
        return (
            mod.module.startswith("repro.compile")
            and mod.module != self._GENERATOR
        )

    # -- helpers ------------------------------------------------------- #
    def _is_handler_name_expr(self, node: ast.AST) -> bool:
        """Whether an expression builds a handler attribute name: a
        constant ``"_on_x"``, an f-string or ``+``-concat mentioning the
        handler prefix."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.startswith(self._HANDLER_PREFIXES)
        if isinstance(node, ast.JoinedStr):
            return any(
                isinstance(part, ast.Constant)
                and isinstance(part.value, str)
                and "_on_" in part.value
                for part in node.values
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._is_handler_name_expr(node.left) or (
                self._is_handler_name_expr(node.right)
            )
        return False

    @staticmethod
    def _is_kind_name(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Name) and node.id == "kind"
        ) or (
            isinstance(node, ast.Attribute) and node.attr == "kind"
        )

    def _is_handler_ref(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr.startswith(
            self._HANDLER_PREFIXES
        )

    # -- check --------------------------------------------------------- #
    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            # 1. string-built handler resolution: getattr(x, f"_on_{kind}")
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and self._is_handler_name_expr(node.args[1])
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "string-built handler lookup via getattr() — resolve "
                    "handlers through the generated dispatch_table()/"
                    "fast_table() instead",
                )
            # 2. per-kind branching: if kind == "request": ...
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                operands = [node.left, *node.comparators]
                if any(self._is_kind_name(o) for o in operands) and any(
                    isinstance(o, ast.Constant) and isinstance(o.value, str)
                    for o in operands
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "per-kind string comparison — dispatch through the "
                        "generated tables instead of a kind== ladder",
                    )
            # 3. hand-rolled kind→handler map: {"request": self._on_request}
            elif isinstance(node, ast.Dict):
                handler_entries = [
                    (k, v)
                    for k, v in zip(node.keys, node.values)
                    if k is not None
                    and isinstance(k, ast.Constant)
                    and isinstance(k.value, str)
                    and self._is_handler_ref(v)
                ]
                if handler_entries:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "literal kind→handler map — build dispatch maps "
                        "with dispatch_table()/fast_table() so conformance "
                        "checks cover them",
                    )


class FastHandlerDriftRule(Rule):
    id = "RPR009"
    summary = (
        "compiled-handler drift: every _fast_on_<kind> must pair with an "
        "interpreted _on_<kind> handler (via the compiled class's bases) "
        "and emit the identical send-kind effect multiset — a fast table "
        "that drifts from the interpreted protocol silently changes the "
        "algorithm under the compiled backend"
    )

    #: mutex-dir path -> interpreted effects keyed by class name,
    #: shared across the linted compile files of one tree
    _interp_cache: Dict[str, Dict[str, object]] = {}

    def applies(self, mod: ModuleInfo) -> bool:
        return mod.module.startswith("repro.compile") and any(
            isinstance(node, ast.ClassDef)
            and any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name.startswith("_fast_on_")
                for stmt in node.body
            )
            for node in mod.tree.body
        )

    def _interp_effects(self, mod: ModuleInfo) -> Dict[str, object]:
        """Interpreted algorithm effects, keyed by class name, from the
        ``mutex`` package sibling to this file's ``compile`` package.

        Resolving relative to the linted file (rather than the installed
        ``repro.mutex``) lets fixture trees carry their own interpreted
        reference, and guarantees the comparison is against the sources
        actually sitting next to the fast tables.
        """
        from .effects import extract_algorithm_effects, find_algorithm_classes

        mutex_dir = mod.path.resolve().parent.parent / "mutex"
        key = str(mutex_dir)
        cached = self._interp_cache.get(key)
        if cached is None:
            cached = {}
            if mutex_dir.is_dir():
                for _algo, (path, cls) in find_algorithm_classes(
                    sorted(mutex_dir.glob("*.py"))
                ).items():
                    cached[cls.name] = extract_algorithm_effects(path, cls)
            self._interp_cache[key] = cached
        return cached

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        from .effects import _format_multiset, extract_fast_effects

        interp_by_class = self._interp_effects(mod)
        if not interp_by_class:
            # No interpreted tree next to this compile package — nothing
            # to drift from (and nothing to certify); stay silent rather
            # than flagging every fixture that only ships fast tables.
            return
        for node in mod.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            fast = extract_fast_effects(mod.path, node)
            if not fast.handlers:
                continue
            paired = [b for b in fast.base_names if b in interp_by_class]
            if not paired:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"compiled class {node.name} defines fast handlers "
                    f"{sorted(fast.handled_kinds)} but none of its bases "
                    f"{list(fast.base_names)} is a known algorithm class "
                    "— the fast table cannot be equivalence-checked",
                )
                continue
            interp = interp_by_class[paired[0]]
            for kind in sorted(fast.handled_kinds):
                fast_handler = fast.handlers[kind]
                line, col = self._handler_pos(node, fast_handler)
                interp_handler = interp.handlers.get(kind)  # type: ignore[attr-defined]
                if interp_handler is None:
                    yield (
                        line,
                        col,
                        f"{node.name}.{fast_handler} has no interpreted "
                        f"_on_{kind} counterpart in "
                        f"{interp.class_name}",  # type: ignore[attr-defined]
                    )
                    continue
                got = fast.emissions(fast_handler)
                want = interp.emissions(interp_handler)  # type: ignore[attr-defined]
                if got != want:
                    yield (
                        line,
                        col,
                        f"{node.name}.{fast_handler} emits "
                        f"{_format_multiset(got)} but interpreted "
                        f"{interp.class_name}.{interp_handler} emits "  # type: ignore[attr-defined]
                        f"{_format_multiset(want)} — send-kind effect "
                        "multisets must be identical",
                    )

    @staticmethod
    def _handler_pos(cls: ast.ClassDef, handler: str) -> Tuple[int, int]:
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == handler
            ):
                return stmt.lineno, stmt.col_offset
        return cls.lineno, cls.col_offset


DEFAULT_RULES = (
    WallClockRule,
    StdlibRandomRule,
    UnorderedIterationRule,
    KernelReentryRule,
    CompositionPurityRule,
    MutableDefaultRule,
    CacheBypassRule,
    HandDispatchRule,
    FastHandlerDriftRule,
)
