"""Schedule-race sanitizer: perturbed tie-breaking must change nothing.

The kernel orders same-timestamp events FIFO by scheduling sequence.
That order is an *implementation convenience*, not a protocol guarantee:
in the modelled system, events at the same simulated instant on
different nodes are concurrent, so no observable behaviour may depend on
which fires first.  A handler that does depend on it harbours a latent
event-ordering race — invisible to the golden digests (which pin one
fixed order) until an unrelated change shifts sequence numbers.

The sanitizer re-runs a configuration under several
:attr:`~repro.experiments.config.ExperimentConfig.tie_seed` values
(each deterministically permutes the same-timestamp tie-break, see
:class:`repro.sim.kernel.Simulator`) and compares **canonical digests**:
a SHA-256 over the observable event stream in which records sharing a
timestamp are hashed in sorted order.  Two runs that differ only in the
interleaving *within* an instant therefore hash identically; any
divergence — an event with different content, time, or multiplicity —
is a real race and fails the run.  The ordinary order-sensitive
:class:`~repro.verify.digest.RunDigest` is tracked alongside and
reported as informational ``reordered`` (same behaviour, different
within-instant trace order — expected at jitter 0).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..experiments.config import ExperimentConfig
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecord

__all__ = [
    "CanonicalDigest",
    "ConfigSanitizeResult",
    "SanitizerReport",
    "default_sanitizer_matrix",
    "sanitize_config",
    "sanitize_matrix",
]

#: tie seeds used when the caller does not choose
DEFAULT_TIE_SEEDS: Tuple[int, ...] = (1, 2, 3)

#: trace kinds covered by the digest (same set as RunDigest)
_KINDS = ("send", "cs_enter", "cs_exit")


class CanonicalDigest:
    """SHA-256 over a run's observable events, canonicalised per instant.

    Same coverage as :class:`~repro.verify.digest.RunDigest` (``send``,
    ``cs_enter``, ``cs_exit``) but records sharing a timestamp are
    buffered and hashed in sorted serialised order, making the digest
    invariant under same-instant reordering — exactly the equivalence
    the schedule-race sanitizer needs.
    """

    def __init__(self, sim: Simulator) -> None:
        self._hash = hashlib.sha256()
        self.events = 0
        self._pending_time: Optional[float] = None
        self._pending: List[bytes] = []
        for kind in _KINDS:
            sim.trace.subscribe(kind, self._on_record)

    def _serialise(self, rec: TraceRecord) -> bytes:
        parts = [rec.kind]
        for key in sorted(rec.fields):
            value = rec.fields[key]
            if isinstance(value, dict):
                value = sorted(value.items(), key=repr)
            parts.append(f"{key}={value!r}")
        return "\x1f".join(parts).encode()

    def _on_record(self, rec: TraceRecord) -> None:
        self.events += 1
        time = rec.fields.get("time")
        if time != self._pending_time:
            self._flush()
            self._pending_time = time
        self._pending.append(self._serialise(rec))

    def _flush(self) -> None:
        for blob in sorted(self._pending):
            self._hash.update(blob)
            self._hash.update(b"\x1e")
        self._pending.clear()

    @property
    def hexdigest(self) -> str:
        """Digest of everything observed so far (flushes the current
        instant, so only read once the run is over)."""
        self._flush()
        return self._hash.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CanonicalDigest events={self.events}>"


# --------------------------------------------------------------------- #
# running one configuration
# --------------------------------------------------------------------- #
def _run_with_digests(config: ExperimentConfig) -> Tuple[str, str, int]:
    """Run ``config`` with both digests attached.

    Returns ``(canonical_hexdigest, raw_hexdigest, events)``.  Imports
    stay local so importing :mod:`repro.analysis` for pure linting does
    not pull the whole experiment stack.
    """
    from ..experiments.runner import build_platform, build_system
    from ..net.network import Network
    from ..verify.digest import RunDigest
    from ..workload.scenario import deploy_workload

    config.validate()
    sim = Simulator(seed=config.seed, tie_seed=config.tie_seed)
    canonical = CanonicalDigest(sim)
    raw = RunDigest(sim)
    topology, latency = build_platform(config)
    if config.batch_jitter:
        latency.enable_batched_jitter()
    net = Network(sim, topology, latency, fifo=config.fifo)
    system = build_system(sim, net, topology, config)

    remaining = {"count": len(system.app_nodes)}

    def app_done(_app: object) -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            sim.stop()

    apps, _collector = deploy_workload(
        system,
        alpha_ms=config.alpha_ms,
        rho=config.rho,
        n_cs=config.n_cs,
        distribution=config.distribution,
        on_done=app_done,
    )
    deadline = (
        config.deadline_ms
        if config.deadline_ms is not None
        else config.default_deadline()
    )
    sim.run(until=deadline)
    unfinished = [a.name for a in apps if not a.done]
    if unfinished:
        raise ReproError(
            f"sanitizer run {config.describe()} (tie_seed={config.tie_seed}) "
            f"did not complete: {len(unfinished)} app(s) unfinished — a "
            f"tie-break perturbation must never cost liveness"
        )
    return canonical.hexdigest, raw.hexdigest, canonical.events


@dataclass(frozen=True)
class ConfigSanitizeResult:
    """Sanitizer outcome for one configuration."""

    config: ExperimentConfig
    baseline_digest: str
    #: tie_seed -> canonical digest
    perturbed: Dict[int, str]
    #: tie seeds whose *raw* (order-sensitive) digest differed — benign
    #: same-instant reordering, reported for visibility
    reordered: Tuple[int, ...]

    @property
    def diverged(self) -> Tuple[int, ...]:
        return tuple(
            seed
            for seed, digest in sorted(self.perturbed.items())
            if digest != self.baseline_digest
        )

    @property
    def ok(self) -> bool:
        return not self.diverged

    def format(self) -> str:
        status = "ok" if self.ok else f"DIVERGED under tie seeds {self.diverged}"
        extra = f", reordered-only under {self.reordered}" if self.reordered else ""
        return f"{self.config.describe()}: {status}{extra}"


def sanitize_config(
    config: ExperimentConfig,
    tie_seeds: Sequence[int] = DEFAULT_TIE_SEEDS,
) -> ConfigSanitizeResult:
    """Run ``config`` under FIFO and each perturbed tie-break order and
    compare canonical digests."""
    base = config.with_(tie_seed=None)
    base_canonical, base_raw, _ = _run_with_digests(base)
    perturbed: Dict[int, str] = {}
    reordered: List[int] = []
    for seed in tie_seeds:
        canonical, raw, _ = _run_with_digests(config.with_(tie_seed=int(seed)))
        perturbed[int(seed)] = canonical
        if raw != base_raw:
            reordered.append(int(seed))
    return ConfigSanitizeResult(
        config=base,
        baseline_digest=base_canonical,
        perturbed=perturbed,
        reordered=tuple(reordered),
    )


# --------------------------------------------------------------------- #
# the standard matrix
# --------------------------------------------------------------------- #
def default_sanitizer_matrix(
    n_clusters: int = 3,
    apps_per_cluster: int = 3,
    n_cs: int = 4,
    jitter: float = 0.0,
    seed: int = 17,
) -> List[ExperimentConfig]:
    """The ``{naimi, suzuki, martin} x {flat, composition}`` matrix at a
    sanitizer-friendly scale.

    Jitter defaults to 0 — constant latencies maximise same-timestamp
    collisions, which is where tie-break perturbation actually bites.
    """
    configs: List[ExperimentConfig] = []
    for algo in ("naimi", "suzuki", "martin"):
        for system in ("flat", "composition"):
            configs.append(
                ExperimentConfig(
                    system=system,
                    intra=algo,
                    inter="naimi",
                    platform="grid5000",
                    n_clusters=n_clusters,
                    apps_per_cluster=apps_per_cluster,
                    n_cs=n_cs,
                    rho=float(n_clusters * apps_per_cluster),
                    jitter=jitter,
                    seed=seed,
                )
            )
    return configs


@dataclass(frozen=True)
class SanitizerReport:
    """Aggregated sanitizer outcome over a config matrix."""

    results: Tuple[ConfigSanitizeResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def divergent(self) -> Tuple[ConfigSanitizeResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def format(self) -> str:
        lines = [r.format() for r in self.results]
        verdict = (
            "schedule-race sanitizer: no divergence"
            if self.ok
            else f"schedule-race sanitizer: {len(self.divergent)} config(s) DIVERGED"
        )
        lines.append(verdict)
        return "\n".join(lines)


def sanitize_matrix(
    configs: Optional[Sequence[ExperimentConfig]] = None,
    tie_seeds: Sequence[int] = DEFAULT_TIE_SEEDS,
    progress: Optional[Callable[[str], None]] = None,
) -> SanitizerReport:
    """Sanitize every config (default: :func:`default_sanitizer_matrix`)."""
    if configs is None:
        configs = default_sanitizer_matrix()
    results: List[ConfigSanitizeResult] = []
    for config in configs:
        result = sanitize_config(config, tie_seeds)
        results.append(result)
        if progress is not None:
            progress(result.format())
    return SanitizerReport(results=tuple(results))
