"""repro.cache — persistent, content-addressed experiment-result cache.

Reproducing the paper's figures re-runs the same (configuration, seed)
cells hundreds of times across figure suites, acceptance tests and
benchmarks.  Every run is deterministic — the golden-digest matrix pins
that — so a result computed once can be reused *verifiably*: entries
are keyed by the canonical configuration serialization plus a
fingerprint of every behaviour-relevant source module, and a sampled
``verify`` mode re-executes hits to prove the store honest.

See ``docs/performance.md`` (caching section) for the key derivation,
the invalidation rules, and when **not** to cache.
"""

from .keys import (
    CACHE_SCHEMA_VERSION,
    DIGEST_RELEVANT_PACKAGES,
    canonical_json,
    code_fingerprint,
    config_key,
)
from .store import (
    DEFAULT_CACHE_DIR,
    DEFAULT_MAX_BYTES,
    CacheSpec,
    CacheStats,
    ExperimentCache,
    cache_from_env,
    resolve_cache,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DIGEST_RELEVANT_PACKAGES",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "CacheSpec",
    "CacheStats",
    "ExperimentCache",
    "cache_from_env",
    "canonical_json",
    "code_fingerprint",
    "config_key",
    "resolve_cache",
]
