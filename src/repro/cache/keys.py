"""Cache key material: canonical serialization and the code fingerprint.

A cache entry is addressed by two independent components:

* the **configuration key** — a canonical JSON rendering of every
  behaviour-determining :class:`~repro.experiments.config.ExperimentConfig`
  field (the seed is a field, so it participates; fields tagged
  ``metadata={"cache_key": False}``, such as the equivalence-gated
  ``backend``, are excluded).  Canonical means: object keys sorted,
  no whitespace, tuples rendered as JSON arrays, floats rendered by
  ``repr`` (the shortest round-trip form, stable across CPython 3.x).
  ``tests/cache/test_keys.py`` pins the exact rendering so it cannot
  silently drift between Python versions;
* the **code fingerprint** — a digest over the source text of every
  module that can influence a run's behaviour (``sim``, ``net``,
  ``mutex``, ``core``, ``grid``, ``workload`` — the same closure the
  golden :class:`~repro.verify.digest.RunDigest` matrix pins).  Editing
  any of those files changes the fingerprint and therefore invalidates
  every cached result automatically; entries written under older
  fingerprints are left behind for the LRU sweep to collect.

Nothing here imports from :mod:`repro.experiments`, so the experiments
layer can depend on this module without a cycle.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DIGEST_RELEVANT_PACKAGES",
    "canonical_json",
    "config_key",
    "code_fingerprint",
]

#: Bumped whenever the pickled payload layout changes (e.g. a new field
#: on ``ExperimentResult``); participates in the fingerprint so stale
#: payload shapes can never be unpickled into current code.
CACHE_SCHEMA_VERSION = 1

#: Packages whose source text determines simulated behaviour — the same
#: closure the golden-digest equivalence matrix certifies.  The
#: ``experiments`` package itself is deliberately excluded: it only wires
#: runs together, and schema-level drift is covered by
#: :data:`CACHE_SCHEMA_VERSION`.
DIGEST_RELEVANT_PACKAGES = ("sim", "net", "mutex", "core", "grid", "workload")


def _canonical(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite float {value!r} is not cacheable")
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping, ASCII-only: stable everywhere.
        import json

        return json.dumps(value, ensure_ascii=True)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted((str(k), v) for k, v in value.items())
        body = ",".join(f"{_canonical(k)}:{_canonical(v)}" for k, v in items)
        return "{" + body + "}"
    if is_dataclass(value) and not isinstance(value, type):
        return canonical_json(value)
    raise TypeError(f"uncacheable value of type {type(value).__name__}: {value!r}")


def canonical_json(config: Any) -> str:
    """Canonical JSON for a dataclass instance (or plain value).

    Field order never matters (keys are sorted), nested tuples become
    JSON arrays, and float rendering is the ``repr`` shortest round-trip
    form — so the same configuration always produces the same bytes.

    Dataclass fields declaring ``metadata={"cache_key": False}`` are
    skipped: they mark knobs that provably cannot change a run's results
    (e.g. ``ExperimentConfig.backend``, whose equivalence the golden
    RunDigest matrix certifies), so including them would split the key
    space without ever changing a cached value.
    """
    if is_dataclass(config) and not isinstance(config, type):
        payload = {
            f.name: getattr(config, f.name)
            for f in fields(config)
            if f.metadata.get("cache_key", True)
        }
        return _canonical(payload)
    return _canonical(config)


def config_key(config: Any) -> str:
    """SHA-256 hex digest of a configuration's canonical serialization.

    Uses ``config.cache_key()`` when the object provides one (so the
    config class stays the single owner of its serialization), falling
    back to :func:`canonical_json`.
    """
    key_fn = getattr(config, "cache_key", None)
    text = key_fn() if callable(key_fn) else canonical_json(config)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_fingerprint: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """Digest of every digest-relevant source file (cached per process).

    Walks :data:`DIGEST_RELEVANT_PACKAGES` under the installed
    ``repro`` package, hashing relative path and file bytes in sorted
    order, plus :data:`CACHE_SCHEMA_VERSION`.  Any edit to the simulated
    world changes the fingerprint, so the cache invalidates itself.
    """
    global _fingerprint
    if _fingerprint is not None and not refresh:
        return _fingerprint
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    h.update(f"schema={CACHE_SCHEMA_VERSION}".encode())
    for package in DIGEST_RELEVANT_PACKAGES:
        base = root / package
        if not base.is_dir():  # stubbed-out trees still get a stable key
            h.update(f"missing:{package}".encode())
            continue
        for path in sorted(base.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
    _fingerprint = h.hexdigest()[:16]
    return _fingerprint
