"""Retry-with-backoff for transient store and transport errors.

Shared-filesystem caches and the farm's HTTP tier both fail
*transiently*: NFS returns ``ESTALE`` during a rename storm, a cache
proxy restarts between two requests, a directory scan races an
eviction.  Retrying a handful of times with exponential backoff turns
those blips into latency instead of lost work.

The backoff schedule is deterministic (no jitter): the repro tree bans
unseeded randomness (RPR002), and the callers here are coarse-grained
enough — one retry per *chunk*, not per message — that synchronized
retries are not a realistic thundering-herd concern.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, Type, TypeVar

__all__ = ["DEFAULT_ATTEMPTS", "DEFAULT_BASE_DELAY_S", "with_retries"]

T = TypeVar("T")

#: Total attempts (first try included).
DEFAULT_ATTEMPTS = 4

#: First retry delay; doubles per attempt (0.05, 0.1, 0.2, ...).
DEFAULT_BASE_DELAY_S = 0.05


def with_retries(
    fn: Callable[[], T],
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay_s: float = DEFAULT_BASE_DELAY_S,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
) -> T:
    """Call ``fn`` until it succeeds, up to ``attempts`` times.

    Retries only exceptions in ``retry_on`` (``OSError`` by default —
    the transient-filesystem family); anything else propagates
    immediately.  The final failure propagates unwrapped so callers see
    the real error, not a retry wrapper.
    """
    if attempts < 1:
        raise ValueError("with_retries needs attempts >= 1")
    delay = base_delay_s
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)
            delay *= 2.0
    raise AssertionError("unreachable")  # pragma: no cover
