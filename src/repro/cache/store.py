"""The persistent, content-addressed experiment-result store.

Layout (one directory tree per code fingerprint, so editing any
digest-relevant module simply starts a fresh subtree and the old one
ages out through the LRU sweep)::

    .repro-cache/
      <fingerprint>/<key[:2]>/<key>.pkl

Each blob is a pickled ``{"key": <canonical config json>, "result":
ExperimentResult}`` pair; ``get`` re-checks the stored canonical key
against the requested configuration so a hash collision (or a
canonicalization bug) degrades to a miss, never to a wrong result.

Concurrency contract
--------------------
Many processes (the warm worker pool, several sweeps, CI shards) may
share one cache directory:

* **writes are atomic** — blobs are written to a temporary file in the
  destination directory and published with ``os.replace``, so a reader
  can never observe a half-written entry;
* **reads are self-healing** — any failure to load a blob (truncated
  file, unpicklable bytes, stale schema) deletes the entry and counts a
  miss, so corruption costs a recomputation, not an exception;
* **eviction is advisory** — racing deletes are tolerated
  (``FileNotFoundError`` is ignored); recency comes from file mtimes,
  which ``get`` refreshes on every hit.

Verification
------------
With ``verify_every=N``, every N-th hit is *re-executed* by the caller
and compared field-for-field against the cached result
(:meth:`ExperimentCache.record_verification`); runs are deterministic,
so any mismatch means a stale or corrupted entry, which is replaced and
counted.  The experiments layer drives this (the store never runs
simulations itself).
"""

from __future__ import annotations

import io
import os
import pickle
import re
import tempfile
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .keys import code_fingerprint, config_key

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "CacheStats",
    "CacheSpec",
    "ExperimentCache",
    "cache_from_env",
    "canonical_dumps",
    "resolve_cache",
]

#: Default on-disk location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default LRU size cap (bytes).  Quick-scale results are a few KiB
#: each; paper-scale sweeps with observability reports run larger.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Eviction drains to this fraction of the cap so every put near the
#: cap does not trigger a fresh directory scan.
_EVICT_TO = 0.8

#: Path components accepted by the raw blob API (fingerprints and
#: SHA-256 config keys are hex, but stay permissive for test doubles).
#: The leading character may not be a dot, so ``.``/``..`` (and hidden
#: files) are rejected; ``/`` is excluded entirely.
_SAFE_COMPONENT = re.compile(r"[A-Za-z0-9_-][A-Za-z0-9_.-]{0,127}")


class _CanonicalPickler(pickle._Pickler):  # noqa: SLF001 - pure-Python pickler
    """Pickler with string memoization disabled.

    Ordinary pickling records every string in the memo and emits a
    back-reference (``BINGET``) when the *same object* reappears, so the
    byte stream depends on identity sharing — which differs between a
    result computed in-process (its strings alias the caller's config
    literals) and the same result computed by a farm worker from an
    *unpickled* config.  Skipping the memo for strings makes the blob a
    pure function of the value: equal results serialize to equal bytes
    no matter which process produced them, which is what lets the farm
    promise byte-identical results and the content-addressed store
    deduplicate honestly.
    """

    def memoize(self, obj: Any) -> None:
        if type(obj) is str:
            return
        super().memoize(obj)


def canonical_dumps(obj: Any) -> bytes:
    """Pickle ``obj`` into identity-independent canonical bytes."""
    buf = io.BytesIO()
    _CanonicalPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


@dataclass
class CacheStats:
    """Hit/miss/eviction/verification counters for one cache handle.

    Counters are per-:class:`ExperimentCache` instance (per process);
    the on-disk store itself is shared and unaware of them.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0
    verified: int = 0
    verify_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.corrupt += other.corrupt
        self.verified += other.verified
        self.verify_failures += other.verify_failures

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def as_dict(self) -> Dict[str, int]:
        """Plain-int dict form, for JSON done-markers and farm status."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CacheStats":
        """Inverse of :meth:`as_dict`; unknown keys are rejected loudly."""
        return cls(**{k: int(v) for k, v in data.items()})

    def format(self) -> str:
        parts = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), {self.evictions} evicted"
        )
        if self.corrupt:
            parts += f", {self.corrupt} corrupt"
        if self.verified or self.verify_failures:
            parts += (
                f", {self.verified} verified"
                f" ({self.verify_failures} failed)"
            )
        return f"cache: {parts}"


@dataclass(frozen=True)
class CacheSpec:
    """Picklable description of a cache, for shipping to worker processes.

    ``fingerprint`` carries the parent's already-computed code
    fingerprint so each worker process does not re-hash the source tree
    per chunk; ``None`` recomputes (the pre-farm behaviour).
    """

    cache_dir: str
    max_bytes: int = DEFAULT_MAX_BYTES
    verify_every: int = 0
    fingerprint: Optional[str] = None

    def open(self) -> "ExperimentCache":
        return ExperimentCache(
            cache_dir=self.cache_dir,
            max_bytes=self.max_bytes,
            verify_every=self.verify_every,
            fingerprint=self.fingerprint,
        )


class ExperimentCache:
    """Content-addressed persistent store for experiment results."""

    def __init__(
        self,
        cache_dir: "str | os.PathLike[str] | None" = None,
        max_bytes: Optional[int] = None,
        verify_every: int = 0,
        fingerprint: Optional[str] = None,
    ) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        if max_bytes is None:
            env_cap = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
            max_bytes = int(env_cap) if env_cap.isdigit() else DEFAULT_MAX_BYTES
        if verify_every < 0:
            raise ValueError("verify_every must be >= 0")
        self.root = Path(cache_dir)
        self.max_bytes = max_bytes
        self.verify_every = verify_every
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()
        #: Running size estimate so every put does not rescan the tree;
        #: None until the first put pays for one full scan.  Advisory
        #: only (concurrent writers each keep their own): the authority
        #: is the rescan inside :meth:`_evict_if_needed`.
        self._approx_bytes: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> CacheSpec:
        return CacheSpec(
            cache_dir=str(self.root),
            max_bytes=self.max_bytes,
            verify_every=self.verify_every,
            fingerprint=self.fingerprint,
        )

    def key_for(self, config: Any) -> str:
        return config_key(config)

    def path_for(self, config: Any) -> Path:
        key = self.key_for(config)
        return self.root / self.fingerprint / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    def get(self, config: Any) -> Optional[Any]:
        """The cached result for ``config``, or ``None`` (a miss).

        Any defect in the stored blob — truncation, unpicklable bytes,
        a canonical-key mismatch — deletes the entry and reports a miss,
        so callers recompute instead of failing.
        """
        path = self.path_for(config)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            stored_key = payload["key"]
            result = payload["result"]
        except Exception:
            self._discard(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if stored_key != config.cache_key():
            # Hash collision or serialization drift: never trust it.
            self._discard(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self.stats.hits += 1
        return result

    def put(self, config: Any, result: Any) -> None:
        """Store ``result`` atomically; may trigger an LRU eviction pass."""
        blob = canonical_dumps({"key": config.cache_key(), "result": result})
        self.put_blob(self.fingerprint, self.key_for(config), blob)

    # ------------------------------------------------------------------ #
    # raw blob access (the farm's HTTP cache proxy speaks this layer:
    # the proxy moves opaque bytes, and the *client* re-checks the
    # stored canonical key, so a proxy can never launder a wrong blob)
    # ------------------------------------------------------------------ #
    def blob_path(self, fingerprint: str, key: str) -> Path:
        """On-disk path for ``(fingerprint, key)``; validates both parts.

        Both components come off the wire in the proxy case, so they are
        constrained to hex-ish path-safe tokens — a traversal attempt
        (``../``, absolute paths) raises instead of escaping the root.
        """
        if not _SAFE_COMPONENT.fullmatch(fingerprint):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        if not _SAFE_COMPONENT.fullmatch(key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / fingerprint / key[:2] / f"{key}.pkl"

    def get_blob(self, fingerprint: str, key: str) -> Optional[bytes]:
        """The raw stored bytes for an entry, or ``None``.

        Does not count in :attr:`stats` (the proxy's *client* keeps the
        hit/miss ledger; counting both sides would double-book)."""
        try:
            return self.blob_path(fingerprint, key).read_bytes()
        except OSError:
            return None

    def put_blob(self, fingerprint: str, key: str, blob: bytes) -> None:
        """Store raw bytes atomically (same tmp+replace path as ``put``)."""
        path = self.blob_path(fingerprint, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".pkl", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.max_bytes > 0:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(blob)
            if self._approx_bytes > self.max_bytes:
                self._evict_if_needed()

    # ------------------------------------------------------------------ #
    def should_verify(self) -> bool:
        """Whether the *next* hit is selected for re-execution.

        Deterministic sampling: with ``verify_every=N`` the 1st, then
        every N-th, hit of this handle is verified (``N=1`` verifies all
        hits; ``N=0`` disables verification).
        """
        if self.verify_every <= 0:
            return False
        return self.stats.hits % self.verify_every == 1 % self.verify_every

    def record_verification(self, cached: Any, fresh: Any) -> bool:
        """Compare a cached result against its re-executed twin.

        Runs are deterministic, so full equality is the contract.  On a
        mismatch the entry is counted as a verification failure; the
        caller replaces it with the fresh result.
        """
        self.stats.verified += 1
        if cached == fresh:
            return True
        self.stats.verify_failures += 1
        return False

    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Tuple[Path, int, float]]:
        """Every stored blob as ``(path, size, mtime)`` (all fingerprints)."""
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.rglob("*.pkl")):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue
                yield path, st.st_size, st.st_mtime

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def clear(self) -> int:
        """Remove every entry (all fingerprints); returns entries removed."""
        removed = 0
        for path, _, _ in list(self.entries()):
            if self._discard(path):
                removed += 1
        return removed

    def _discard(self, path: Path) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def _evict_if_needed(self) -> None:
        """LRU sweep: oldest-mtime entries go first, across fingerprints.

        Old-fingerprint subtrees are never freshened by hits, so they
        are always the first to drain once the cap is under pressure.
        Rescans the tree (the running estimate only decides *when* to
        come here), so racing writers converge on the true size.
        """
        if self.max_bytes <= 0:
            return
        listing: List[Tuple[float, Path, int]] = [
            (mtime, path, size) for path, size, mtime in self.entries()
        ]
        total = sum(size for _, _, size in listing)
        if total <= self.max_bytes:
            self._approx_bytes = total
            return
        target = int(self.max_bytes * _EVICT_TO)
        listing.sort()
        for _, path, size in listing:
            if total <= target:
                break
            if self._discard(path):
                total -= size
                self.stats.evictions += 1
        self._approx_bytes = total


# --------------------------------------------------------------------- #
# environment-driven activation
# --------------------------------------------------------------------- #
_FALSEY = ("", "0", "false", "no", "off")


def cache_from_env() -> Optional[ExperimentCache]:
    """A cache when ``REPRO_CACHE`` is set truthy, else ``None``.

    ``REPRO_CACHE_DIR``, ``REPRO_CACHE_MAX_BYTES`` and
    ``REPRO_CACHE_VERIFY`` refine it.  This is only consulted by the
    sweep/CLI layer (``figures``, ``suites``, ``repro-mutex``): plain
    ``run_experiment`` calls — the tier-1 correctness paths — never
    cache unless handed a cache explicitly, so safety checks always
    execute there.
    """
    if os.environ.get("REPRO_CACHE", "").strip().lower() in _FALSEY:
        return None
    verify_env = os.environ.get("REPRO_CACHE_VERIFY", "")
    verify_every = int(verify_env) if verify_env.isdigit() else 0
    return ExperimentCache(verify_every=verify_every)


def resolve_cache(
    cache: "ExperimentCache | CacheSpec | str | None",
) -> Optional[ExperimentCache]:
    """Normalise the ``cache=`` argument convention used by sweeps.

    ``None`` → caching off; an :class:`ExperimentCache` → itself; a
    :class:`CacheSpec` → opened; the string ``"auto"`` → whatever the
    environment dictates (:func:`cache_from_env`).  Any other object
    exposing the ``get``/``put``/``stats`` surface (the farm's
    :class:`~repro.farm.httpcache.HttpCache` tier) passes through
    unchanged — sweeps only ever duck-type that surface.
    """
    if cache is None:
        return None
    if isinstance(cache, ExperimentCache):
        return cache
    if isinstance(cache, CacheSpec):
        return cache.open()
    if isinstance(cache, str):
        if cache == "auto":
            return cache_from_env()
        raise TypeError(
            f"cache must be None, 'auto', an ExperimentCache or a "
            f"CacheSpec; got {cache!r}"
        )
    if all(hasattr(cache, a) for a in ("get", "put", "stats")):
        return cache  # duck-typed tier (e.g. the farm's HttpCache)
    raise TypeError(
        f"cache must be None, 'auto', an ExperimentCache or a CacheSpec; "
        f"got {cache!r}"
    )
