"""The compiled execution backend (``ExperimentConfig.backend``).

Lowers each registered algorithm's message protocol into table-driven
dispatch: per-kind handler tables resolved once at system build time
(:mod:`~repro.compile.tables`), per-peer hot state in numpy arrays
(:mod:`~repro.compile.state`), and a network whose send→schedule→
dispatch pipeline is fused into single frames
(:mod:`~repro.compile.network`), with live systems promoted onto the
fast path in place (:mod:`~repro.compile.peers`).

The backend is **equivalence-gated**: a compiled run must produce a
:class:`~repro.verify.digest.RunDigest` bit-identical to the
interpreted run's, checked across the full golden matrix in
``tests/properties/test_backend_equivalence.py`` and by the paired
benchmark scenarios.  Because of that gate, ``backend`` never enters
cache keys — both backends address the same cached result.
"""

from .network import CompiledNetwork
from .peers import (
    CompiledApplicationProcess,
    CompiledMartinPeer,
    CompiledNaimiPeer,
    CompiledSuzukiPeer,
    compile_system,
    compiled_peer_registry,
)
from .state import ArrayMap, StateLayout, capture_state, layout_for
from .tables import check_table_conformance, dispatch_table, fast_table

__all__ = [
    "CompiledNetwork",
    "CompiledNaimiPeer",
    "CompiledSuzukiPeer",
    "CompiledMartinPeer",
    "CompiledApplicationProcess",
    "compile_system",
    "compiled_peer_registry",
    "dispatch_table",
    "fast_table",
    "check_table_conformance",
    "StateLayout",
    "ArrayMap",
    "capture_state",
    "layout_for",
]
