"""The compiled transport: a fused send→schedule→dispatch fast path.

:class:`CompiledNetwork` is a drop-in :class:`~repro.net.network.Network`
whose hot path fuses, into one frame, what the interpreted pipeline does
in five (``send`` → ``stats.record`` → ``latency.one_way`` →
``_schedule_delivery`` → ``post_at``), and whose delivery dispatches
through the per-class tables of :mod:`repro.compile.tables` instead of
the per-event ``getattr`` chain.

Equivalence is structural, not statistical: every inlined step
reproduces the interpreted code **exactly** — same statistics counters,
same trace records, same RNG draw sequence (local and jitter-free sends
draw nothing, exactly as ``one_way`` skips the draw), same
``Message.seq`` and kernel ``seq`` consumption, same tie-salt mixing —
so a compiled run's :class:`~repro.verify.digest.RunDigest` is
bit-identical to the interpreted run's.  The golden matrix in
``tests/properties`` gates this.

Two tiers of fast path:

* the **fused send** handles any traffic on a fault-free, FIFO-off,
  untapped network; it still allocates the :class:`Message` so opaque
  handlers (coordinator wrappers, recovery fences, test hooks) keep
  working, but delivery resolves the handler once and dispatches via
  the class table when the receiver is a pristine
  ``MutexPeer._on_message``;
* the **ultra send** (:meth:`CompiledNetwork.fast_send`, used by the
  promoted peer classes of :mod:`repro.compile.peers`) skips the
  Message allocation entirely: the table handler is resolved at send
  time and the scheduled event *is* the dispatch — its callback is the
  single-frame ``_fast_on_<kind>`` handler with ``(peer, src,
  payload)`` as arguments.

Anything the fast paths cannot reproduce exactly — crash controllers,
fault injectors, per-flow FIFO, send taps, ``deliver`` subscribers,
batched jitter, latency models with overridden ``one_way`` — falls back
to the inherited interpreted code, which is equivalence by construction
(it *is* the interpreted code).
"""

from __future__ import annotations

import logging
from heapq import heappush
from typing import Dict, Optional, Tuple

from ..errors import NetworkError, ProtocolError
from ..mutex.base import MutexPeer
from ..net.latency import LOCAL_DELIVERY_MS, MatrixLatency, TwoTierLatency
from ..net.message import DEFAULT_MESSAGE_SIZE, Message
from ..net.network import Network
from ..sim.event import Event
from ..sim.kernel import _mix64
from .tables import dispatch_table, fast_table

__all__ = ["CompiledNetwork"]

logger = logging.getLogger(__name__)


class _Route:
    """One resolved ``(dst, port)`` delivery target.

    Dropped from the cache the moment the address is re-registered,
    unregistered or its handler wrapped, so every send resolves against
    the current registration."""

    __slots__ = ("peer", "table")

    def __init__(self, peer: MutexPeer, table: dict) -> None:
        self.peer = peer
        self.table = table


class CompiledNetwork(Network):
    """Table-driven :class:`~repro.net.network.Network` (see module doc)."""

    #: Deferred ultra-path counter buffer: ``(src, dst, port, kind,
    #: size) -> count``, folded into MessageStats at flush time.  A dict
    #: upsert costs marginally more than a list append per send, but the
    #: buffer stays at the handful of distinct key tuples instead of
    #: growing by one GC-tracked tuple per message.  Class default
    #: ``None`` keeps the :attr:`stats` property safe while the base
    #: constructor runs.
    _pending_stats: Optional[dict] = None

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pending_stats = {}
        # Immutable-for-the-run aliases: the kernel never rebinds its
        # queue (compaction mutates it in place) and the tie salt is set
        # once in Simulator.__init__.  A list queue is pushed with the
        # module-level heappush; a calendar queue through its push method
        # (`_ev_heap is None` selects the branch in the hot paths).
        heap_obj = self.sim._heap
        if type(heap_obj) is list:
            self._ev_heap = heap_obj
            self._ev_cal = None
        else:
            self._ev_heap = None
            self._ev_cal = heap_obj
        self._salt = self.sim._tie_salt
        self._saved_queues = None  # set while a horizon window is open
        #: static for the network's lifetime: crash/fault/FIFO traffic
        #: must run the interpreted pipeline verbatim.
        self._slow = (
            self.crashes is not None
            or self.faults is not None
            or self.fifo
        )
        latency = self.latency
        # The latency inline is only exact for the stock table-backed
        # models; a subclass overriding one_way() keeps its own code.
        # Two inline tiers: the dense node-pair table below the 512-node
        # cap, or the O(N + C^2) cluster block table above it (same
        # float64 values, one extra index hop) — large grids no longer
        # fall off the compiled fast path.
        one_way = type(latency).one_way
        self._inline_latency = one_way in (
            TwoTierLatency.one_way, MatrixLatency.one_way
        )
        if not self._inline_latency:
            logger.info(
                "latency model %s falls off the compiled inline fast "
                "path (no stock delay table); sends go through the "
                "interpreted one_way() per call",
                type(latency).__name__,
            )
        self._n_nodes = self.topology.n_nodes
        self._routes: Dict[Tuple[int, str], _Route] = {}
        # Ultra-path gate flags, snapshotted per tracer version so the
        # hot send pays one integer compare instead of re-testing the
        # subscriber sets and the tap tuple on every call.  A version of
        # -1 forces a refresh (tap mutations reset it below).
        self._flags_version = -1
        self._ultra_ok = False
        self._send_active = False
        # Static latency constants (the jitter sigma is fixed at model
        # construction; only the batch override is dynamic).
        if self._inline_latency:
            self._lat_table = latency._node_table
            self._lat_cluster_of = latency._cluster_of
            self._lat_ctab = latency._cluster_table
            self._zero_jitter = latency._sigma <= 0.0
        else:
            self._lat_table = None
            self._lat_cluster_of = None
            self._lat_ctab = None
            self._zero_jitter = True

    def add_send_tap(self, tap) -> None:
        super().add_send_tap(tap)
        self._flags_version = -1

    def remove_send_tap(self, tap) -> None:
        super().remove_send_tap(tap)
        self._flags_version = -1

    # ------------------------------------------------------------------ #
    # horizon windows
    # ------------------------------------------------------------------ #
    # The "immutable-for-the-run" queue aliases above have exactly one
    # sanctioned exception: the horizon scheduler swaps a window façade
    # into the kernel for the duration of one conservative window.  The
    # façade speaks the calendar push protocol, so re-aiming `_ev_cal`
    # at it routes both fused and ultra sends through the window's
    # intra/deferred split without a per-send branch.
    def enter_window(self, window_queue) -> None:
        self._saved_queues = (self._ev_heap, self._ev_cal)
        self._ev_heap = None
        self._ev_cal = window_queue

    def exit_window(self) -> None:
        self._ev_heap, self._ev_cal = self._saved_queues
        self._saved_queues = None

    def set_cluster_partition(self, owned, outbox) -> None:
        super().set_cluster_partition(owned, outbox)
        # Partitioned traffic must take the interpreted `_schedule_delivery`
        # (where the partition check lives); `_slow` diverts both fused
        # and ultra sends there, and the version reset makes already-
        # promoted peers re-evaluate `_ultra_ok` on their next send.
        self._slow = (
            owned is not None
            or self.crashes is not None
            or self.faults is not None
            or self.fifo
        )
        self._flags_version = -1

    # ------------------------------------------------------------------ #
    # deferred statistics
    # ------------------------------------------------------------------ #
    # The ultra path buffers each send as one list append and applies
    # the full `MessageStats.record` arithmetic lazily: every counter is
    # a plain sum, so replaying `n` identical sends in one step is exact.
    # All reads go through the `stats` property, which materialises the
    # buffer first — so any observer (including one called synchronously
    # from a `send` trace record) sees the same values the interpreted
    # backend would have at that instant.
    @property
    def stats(self):
        if self._pending_stats:
            self._flush_stats()
        return self._stats_obj

    @stats.setter
    def stats(self, value) -> None:
        self._stats_obj = value

    def _flush_stats(self) -> None:
        st = self._stats_obj
        pending = self._pending_stats
        self._pending_stats = {}
        cluster_of = st._cluster_of
        for (src, dst, port, kind, size), n in pending.items():
            st.total += n
            st.bytes_total += size * n
            st.by_port[port] += n
            st.by_kind[kind] += n
            if src == dst:
                st.local += n
                continue
            ci = cluster_of[src]
            cj = cluster_of[dst]
            st._matrix[ci][cj] += n
            if ci == cj:
                st.intra_cluster += n
            else:
                st.inter_cluster += n
                st.bytes_inter_cluster += size * n
                st.inter_by_port[port] += n

    # ------------------------------------------------------------------ #
    # route cache maintenance — every registration mutation invalidates
    # ------------------------------------------------------------------ #
    def register(self, node: int, port: str, handler) -> None:
        super().register(node, port, handler)
        self._kill_route((node, port))

    def unregister(self, node: int, port: str) -> None:
        super().unregister(node, port)
        self._kill_route((node, port))

    def wrap_handler(self, node: int, port: str, wrap) -> None:
        super().wrap_handler(node, port, wrap)
        self._kill_route((node, port))

    def _kill_route(self, key: Tuple[int, str]) -> None:
        self._routes.pop(key, None)

    def _route_for(self, dst: int, port: str) -> Optional[_Route]:
        """The ultra-path route to ``(dst, port)``, or ``None`` when the
        registered handler is not a pristine table-dispatchable peer."""
        key = (dst, port)
        route = self._routes.get(key)
        if route is not None:
            return route
        handler = self._handlers.get(key)
        if (
            handler is None
            or getattr(handler, "__func__", None) is not MutexPeer._on_message
        ):
            return None
        peer = handler.__self__
        table = fast_table(type(peer))
        if table is None:
            return None
        route = _Route(peer, table)
        self._routes[key] = route
        return route

    # ------------------------------------------------------------------ #
    # fused send (general traffic)
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        port: str,
        kind: str,
        payload: Optional[dict] = None,
        size: int = DEFAULT_MESSAGE_SIZE,
    ) -> Message:
        if self._slow or self._send_taps:
            return Network.send(self, src, dst, port, kind, payload, size)
        if (dst, port) not in self._handlers:
            raise NetworkError(f"no handler registered at ({dst}, {port!r})")
        if not 0 <= src < self._n_nodes:
            raise NetworkError(f"unknown source node {src}")
        msg = Message(src, dst, port, kind, payload, size)
        sim = self.sim
        now = sim._now
        msg.sent_at = now
        self._record_inline(src, dst, port, kind, size)
        trace = sim.trace
        if "send" in trace.active_kinds:
            trace.emit(
                "send", time=now, src=src, dst=dst, port=port,
                kind=kind, payload=msg.payload,
            )
        due = now + self._delay_inline(src, dst)
        msg.seq = self._seq
        self._seq += 1
        if self._batching:
            # Same coalescing contract as the interpreted path (see
            # Network._schedule_delivery); items are generic
            # ``(callback, args)`` pairs so fused, ultra and interpreted
            # deliveries can share one batch event.
            ev = self._bat_event
            if (
                ev is not None
                and due == self._bat_due
                and sim._seq == self._bat_seq
                and not ev.cancelled
                and not trace.event_active
            ):
                if ev.callback is self._run_batch:
                    ev.args[0].append((self._fast_deliver, (msg,)))
                else:
                    ev.args = ([(ev.callback, ev.args),
                                (self._fast_deliver, (msg,))],)
                    ev.callback = self._run_batch
                sim._seq += 1  # burn the unbatched event's seq
                self._bat_seq = sim._seq
                return msg
        seq = sim._seq
        event = Event(due, seq, self._fast_deliver, (msg,))
        salt = sim._tie_salt
        if salt is not None:
            seq = _mix64(seq ^ salt)
        heap = self._ev_heap
        if heap is not None:
            heappush(heap, (due, seq, event))
        else:
            self._ev_cal.push((due, seq, event))
        sim._seq += 1
        if self._batching:
            self._bat_event = event
            self._bat_due = due
            self._bat_seq = sim._seq
        return msg

    def _record_inline(
        self, src: int, dst: int, port: str, kind: str, size: int
    ) -> None:
        """``MessageStats.record`` without the Message or the frame."""
        st = self.stats
        st.total += 1
        st.bytes_total += size
        st.by_port[port] += 1
        st.by_kind[kind] += 1
        if src == dst:
            st.local += 1
            return
        cluster_of = st._cluster_of
        ci = cluster_of[src]
        cj = cluster_of[dst]
        st._matrix[ci][cj] += 1
        if ci == cj:
            st.intra_cluster += 1
        else:
            st.inter_cluster += 1
            st.bytes_inter_cluster += size
            st.inter_by_port[port] += 1

    def _delay_inline(self, src: int, dst: int) -> float:
        """``latency.one_way`` with the table lookup and jitter constants
        inlined — identical values *and* identical RNG consumption."""
        latency = self.latency
        if not self._inline_latency or latency._batch is not None:
            return latency.one_way(src, dst, self._rng)
        if src == dst:
            return LOCAL_DELIVERY_MS  # no jitter draw, as in one_way
        table = self._lat_table
        if table is not None:
            base = table[src][dst]
        else:  # large grid: O(N + C^2) cluster block table
            cluster_of = self._lat_cluster_of
            base = self._lat_ctab[cluster_of[src]][cluster_of[dst]]
        sigma = latency._sigma
        if sigma <= 0.0:
            return base
        return base * float(
            self._rng.lognormal(mean=latency._lognorm_mean, sigma=sigma)
        )

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    def _fast_deliver(self, msg: Message) -> None:
        # No crash check: _slow traffic never schedules this callback.
        handler = self._handlers.get((msg.dst, msg.port))
        if handler is None:
            return  # deregistered in flight: drop like a closed socket
        sim = self.sim
        msg.delivered_at = sim._now
        if "deliver" in sim.trace.active_kinds:
            sim.trace.emit(
                "deliver", time=sim._now, src=msg.src, dst=msg.dst,
                port=msg.port, kind=msg.kind, payload=msg.payload,
            )
        if getattr(handler, "__func__", None) is MutexPeer._on_message:
            peer = handler.__self__
            fn = dispatch_table(type(peer)).get(msg.kind)
            if fn is None:
                raise ProtocolError(
                    f"{peer.name}: unexpected message kind {msg.kind!r}"
                )
            fn(peer, msg)
        else:
            handler(msg)

    # ------------------------------------------------------------------ #
    # ultra send (promoted peers only)
    # ------------------------------------------------------------------ #
    def fast_send(
        self,
        src: int,
        dst: int,
        port: str,
        kind: str,
        payload: Optional[dict],
        size: int,
    ) -> None:
        """Message-free send for promoted peers (single frame end to end).

        Falls back to :meth:`send` whenever an observer could tell the
        difference: taps, ``deliver`` subscribers, slow-path networks, a
        receiver that is not table-dispatchable, or a kind outside the
        receiver's table (the Message path raises the interpreted
        ``ProtocolError`` at delivery time, as the dynamic dispatch
        would).  The stats/emit/latency steps below are the bodies of
        ``_record_inline`` / ``_delay_inline`` fused into this frame —
        same counters, same trace records, same RNG consumption.

        The table handler is scheduled *directly* (no dispatch-time
        re-check of the registration): only promoted peers call this
        method, promotion is refused on systems that rewire, wrap or
        unregister handlers mid-run (crash/recovery, adaptive), and the
        route cache is invalidated on every registration mutation — so
        between send and delivery the resolved handler cannot change.
        """
        sim = self.sim
        trace = sim.trace
        if trace.version != self._flags_version:
            self._flags_version = trace.version
            active = trace.active_kinds
            self._ultra_ok = not (
                self._slow or self._send_taps or "deliver" in active
            )
            self._send_active = "send" in active
        if not self._ultra_ok:
            self.send(src, dst, port, kind, payload, size)
            return
        # EAFP subscripts: the route cache and the dispatch tables hit
        # on every send after the first per address, so the exception
        # branches are cold by construction.
        try:
            route = self._routes[(dst, port)]
        except KeyError:
            route = self._route_for(dst, port)
            if route is None:
                self.send(src, dst, port, kind, payload, size)
                return
        try:
            fn = route.table[kind]
        except KeyError:
            self.send(src, dst, port, kind, payload, size)
            return
        # No src validation here: the only callers are promoted peers
        # sending from their own (validated-at-registration) node; the
        # fallback `send` above still checks for the Message path.
        pending = self._pending_stats
        key = (src, dst, port, kind, size)
        try:
            pending[key] += 1
        except KeyError:
            pending[key] = 1
        now = sim._now
        if self._send_active:
            trace.emit(
                "send", time=now, src=src, dst=dst, port=port,
                kind=kind, payload={} if payload is None else payload,
            )
        latency = self.latency
        if self._inline_latency and latency._batch is None:
            if src == dst:
                due = now + LOCAL_DELIVERY_MS  # no jitter draw
            else:
                table = self._lat_table
                if table is not None:
                    base = table[src][dst]
                else:  # large grid: cluster block table
                    cluster_of = self._lat_cluster_of
                    base = self._lat_ctab[cluster_of[src]][cluster_of[dst]]
                if self._zero_jitter:
                    due = now + base
                else:
                    due = now + base * float(
                        self._rng.lognormal(
                            mean=latency._lognorm_mean, sigma=latency._sigma
                        )
                    )
        else:
            due = now + latency.one_way(src, dst, self._rng)
        self._seq += 1  # Message.seq watermark, identically consumed
        if self._batching:
            ev = self._bat_event
            if (
                ev is not None
                and due == self._bat_due
                and sim._seq == self._bat_seq
                and not ev.cancelled
                and not trace.event_active
            ):
                if ev.callback is self._run_batch:
                    ev.args[0].append((fn, (route.peer, src, payload)))
                else:
                    ev.args = ([(ev.callback, ev.args),
                                (fn, (route.peer, src, payload))],)
                    ev.callback = self._run_batch
                sim._seq += 1  # burn the unbatched event's seq
                self._bat_seq = sim._seq
                return
        seq = sim._seq
        event = Event.__new__(Event)
        event.time = due
        event.seq = seq
        event.callback = fn
        event.args = (route.peer, src, payload)
        event.cancelled = False
        event.label = ""
        salt = self._salt
        if salt is not None:
            seq = _mix64(seq ^ salt)
        heap = self._ev_heap
        if heap is not None:
            heappush(heap, (due, seq, event))
        else:
            self._ev_cal.push((due, seq, event))
        sim._seq += 1
        if self._batching:
            self._bat_event = event
            self._bat_due = due
            self._bat_seq = sim._seq
