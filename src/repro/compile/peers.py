"""Promoted peer classes: the algorithms, lowered onto the fast path.

For each registered algorithm there is a ``Compiled*Peer`` subclass
whose handlers are *single-frame*: they take ``(src, payload)`` directly
(no :class:`~repro.net.message.Message`), read hot state from scalars
or numpy arrays (:mod:`repro.compile.state`), and send through
:meth:`~repro.compile.network.CompiledNetwork.fast_send`.  The public
entry points (``request_cs`` / ``release_cs``) are re-written with the
algorithm's ``_do_request`` / ``_do_release`` inlined and the kernel
clock read directly, and ``_on_<kind>`` remains as a thin delegate so
Message-path deliveries (from non-promoted senders, or with ``deliver``
subscribers attached) run the very same code.

Every compiled body is a line-for-line lowering of its interpreted
original: same state transitions in the same order, same
:class:`~repro.errors.ProtocolError` messages, same payload dict shapes
(plain ``int`` values — numpy scalars never escape into a payload), same
trace-emit gating.  The golden-digest equivalence matrix is the gate.

Promotion (:func:`compile_system`) happens **after** the system and
workload are built, by swapping ``__class__`` on live instances — the
algorithms themselves stay untouched, which is the composition paper's
own constraint (§3.1: composed algorithms need no modification) applied
to the optimiser.  It is deliberately conservative: exact types only
(a :class:`~repro.mutex.PriorityNaimiPeer` never matches the
Naimi-Tréhel entry), fast-path-capable networks only, and never on a
network with crash controllers, fault injectors, or FIFO flows — those
runs execute the interpreted code on the compiled backend, equivalent
by construction.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ..core.coordinator import Coordinator
from ..core.states import CoordinatorState
from ..errors import CompositionError, ConfigurationError, ProtocolError
from ..metrics.records import CSRecord
from ..mutex.base import MutexPeer, PeerState
from ..mutex.martin import MartinPeer
from ..mutex.naimi_trehel import NaimiTrehelPeer
from ..mutex.suzuki_kasami import SuzukiKasamiPeer
from ..net.message import DEFAULT_MESSAGE_SIZE
from ..sim.event import Event
from ..sim.kernel import _mix64
from ..sim.trace import TraceRecord
from ..workload.application import ApplicationProcess
from .network import CompiledNetwork
from .state import ArrayMap, peer_array

__all__ = [
    "CompiledNaimiPeer",
    "CompiledSuzukiPeer",
    "CompiledMartinPeer",
    "CompiledApplicationProcess",
    "CompiledCoordinator",
    "compiled_peer_registry",
    "compile_system",
]


class _CompiledPeer:
    """Shared lean helpers for promoted peers (first in the MRO)."""

    #: tracer-version watermark for the cached cs_enter/cs_exit
    #: subscriber tuples below (kind subscribers + ``"*"`` subscribers,
    #: concatenated in emit's delivery order)
    _emit_version: int = -1
    _enter_subs: tuple = ()
    _exit_subs: tuple = ()

    def _bind_state(self) -> None:
        """Lower instance state after a ``__class__`` swap.

        The base hook caches the tracer and the network's ultra-path
        send as instance attributes: the hot methods below touch both
        on every call, and ``self.sim.trace`` / ``self.net.fast_send``
        are two-attribute chains each.
        """
        self._tr = self.sim.trace
        self._fsend = self.net.fast_send

    def _refresh_emit(self, tr: Any) -> None:
        """Re-snapshot the cs_enter/cs_exit delivery lists.

        ``kind in active_kinds`` is true iff the kind's subscriber list
        or the ``"*"`` list is non-empty, so the concatenated tuple being
        truthy is exactly the interpreted emit gate, and iterating it
        delivers in emit's order (kind subscribers, then star).
        """
        self._emit_version = tr.version
        subs = tr._subs
        star = tr._star
        self._enter_subs = tuple(subs.get("cs_enter") or ()) + star
        self._exit_subs = tuple(subs.get("cs_exit") or ()) + star

    def _grant(self) -> None:
        # Identical to MutexPeer._grant with the clock read directly and
        # the trace emit inlined: the record is built and handed to the
        # cached subscriber tuple in this frame (``trace.emit`` costs a
        # frame, a kwargs pack and a subscriber re-resolution; this plus
        # the mirror block in each ``release_cs`` runs twice per CS).
        tr = self._tr
        if tr.version != self._emit_version:
            self._refresh_emit(tr)
        if self._state is PeerState.CS:
            raise ProtocolError(f"{self.name}: double grant")
        self._state = PeerState.CS
        self.cs_count += 1
        fns = self._enter_subs
        if fns:
            record = TraceRecord.__new__(TraceRecord)
            record.kind = "cs_enter"
            record.fields = {
                "time": self.sim._now, "node": self.node, "port": self.port,
            }
            for fn in fns:
                fn(record)
        # No defensive tuple() copy: promoted systems never mutate the
        # callback lists mid-run (rewiring systems are refused promotion).
        for fn in self.on_granted:
            fn()

    def _notify_pending(self) -> None:
        # Same copy elision as _grant's callback loop.
        for fn in self.on_pending_request:
            fn()



# --------------------------------------------------------------------- #
# Naimi-Tréhel
# --------------------------------------------------------------------- #
class CompiledNaimiPeer(_CompiledPeer, NaimiTrehelPeer):
    """Naimi-Tréhel with ``_do_request``/``_do_release`` inlined and
    single-frame fast handlers (state is already scalar: ``last``,
    ``next``, the token flag)."""

    def request_cs(self) -> None:
        if self._state is not PeerState.NO_REQ:
            raise ProtocolError(
                f"{self.name}: request_cs() in state {self._state.value}"
            )
        self._state = PeerState.REQ
        tr = self._tr
        if "cs_request" in tr.active_kinds:
            tr.emit(
                "cs_request", time=self.sim._now,
                node=self.node, port=self.port,
            )
        if self._holds_token:
            self._grant()
            return
        self._fsend(
            self.node, self.last, self.port, "request",
            {"origin": self.node}, DEFAULT_MESSAGE_SIZE,
        )
        self.last = self.node

    def release_cs(self) -> None:
        if self._state is not PeerState.CS:
            raise ProtocolError(
                f"{self.name}: release_cs() in state {self._state.value}"
            )
        self._state = PeerState.NO_REQ
        tr = self._tr
        if tr.version != self._emit_version:
            self._refresh_emit(tr)
        fns = self._exit_subs
        if fns:
            # Inlined cs_exit emit — mirror of the cs_enter block in
            # _CompiledPeer._grant.
            record = TraceRecord.__new__(TraceRecord)
            record.kind = "cs_exit"
            record.fields = {
                "time": self.sim._now, "node": self.node, "port": self.port,
            }
            for fn in fns:
                fn(record)
        nxt = self.next
        if nxt is not None:
            self.next = None
            self._holds_token = False
            self._fsend(
                self.node, nxt, self.port, "token", None,
                DEFAULT_MESSAGE_SIZE,
            )

    # ------------------------------------------------------------------ #
    def _fast_on_request(self, src: int, payload: dict) -> None:
        origin = payload["origin"]
        if self.last == self.node:  # tree root
            if self._holds_token and self._state is PeerState.NO_REQ:
                self._holds_token = False
                self._fsend(
                    self.node, origin, self.port, "token", None,
                    DEFAULT_MESSAGE_SIZE,
                )
            else:
                if self.next is not None:
                    raise ProtocolError(
                        f"{self.name}: second request reached the root "
                        f"while next={self.next} is set"
                    )
                self.next = origin
                if self._holds_token:
                    self._notify_pending()
        else:
            self._fsend(
                self.node, self.last, self.port, "request",
                {"origin": origin}, DEFAULT_MESSAGE_SIZE,
            )
        self.last = origin

    def _fast_on_token(self, src: int, payload: Optional[dict]) -> None:
        if self._holds_token:
            raise ProtocolError(f"{self.name}: received a second token")
        self._holds_token = True
        if self._state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: token arrived in state {self._state.value}"
            )
        self._grant()

    # Message-path deliveries run the same lowered code.
    def _on_request(self, msg) -> None:
        self._fast_on_request(msg.src, msg.payload)

    def _on_token(self, msg) -> None:
        self._fast_on_token(msg.src, msg.payload)


# --------------------------------------------------------------------- #
# Suzuki-Kasami
# --------------------------------------------------------------------- #
class CompiledSuzukiPeer(_CompiledPeer, SuzukiKasamiPeer):
    """Suzuki-Kasami with RN/LN lowered to per-peer ``int64`` arrays.

    ``rn``/``ln`` stay visible as :class:`~repro.compile.state.ArrayMap`
    views over the arrays, so inherited code and external readers keep
    working against the same store; payload boundaries convert every
    cell back to plain ``int`` (peers order), reproducing the
    interpreted dict ``repr`` byte for byte.
    """

    def _bind_state(self) -> None:
        _CompiledPeer._bind_state(self)
        peers = self.peers
        self._index: Dict[int, int] = {p: i for i, p in enumerate(peers)}
        self._self_index = self._index[self.node]
        rn_arr = peer_array(self, "rn")
        self._rn_arr = rn_arr
        self.rn = ArrayMap(rn_arr, self._index)
        ln_arr = peer_array(self, "ln")
        self._ln_arr = ln_arr
        if ln_arr is not None:
            self.ln = ArrayMap(ln_arr, self._index)

    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        if self._state is not PeerState.NO_REQ:
            raise ProtocolError(
                f"{self.name}: request_cs() in state {self._state.value}"
            )
        self._state = PeerState.REQ
        tr = self._tr
        if "cs_request" in tr.active_kinds:
            tr.emit(
                "cs_request", time=self.sim._now,
                node=self.node, port=self.port,
            )
        if self._holds_token:
            self._grant()
            return
        rn = self._rn_arr
        i = self._self_index
        rn[i] += 1
        seq = int(rn[i])
        node, port, fsend = self.node, self.port, self._fsend
        for dst in self.peers:
            if dst != node:
                fsend(
                    node, dst, port, "request",
                    {"origin": node, "seq": seq}, DEFAULT_MESSAGE_SIZE,
                )
        if self.retry_ms is not None:
            self._arm_retry()

    def release_cs(self) -> None:
        if self._state is not PeerState.CS:
            raise ProtocolError(
                f"{self.name}: release_cs() in state {self._state.value}"
            )
        self._state = PeerState.NO_REQ
        tr = self._tr
        if tr.version != self._emit_version:
            self._refresh_emit(tr)
        fns = self._exit_subs
        if fns:
            # Inlined cs_exit emit — mirror of the cs_enter block in
            # _CompiledPeer._grant.
            record = TraceRecord.__new__(TraceRecord)
            record.kind = "cs_exit"
            record.fields = {
                "time": self.sim._now, "node": self.node, "port": self.port,
            }
            for fn in fns:
                fn(record)
        rn, ln, queue = self._rn_arr, self._ln_arr, self.queue
        i = self._self_index
        ln[i] = rn[i]
        node = self.node
        for j_idx, j in enumerate(self.peers):
            if j != node and rn[j_idx] == ln[j_idx] + 1 and j not in queue:
                queue.append(j)
        if queue:
            self._fast_send_token(queue.popleft())

    @property
    def has_pending_request(self) -> bool:
        if not self._holds_token:
            return False
        if self.queue:
            return True
        rn, ln, node = self._rn_arr, self._ln_arr, self.node
        for i, j in enumerate(self.peers):
            if j != node and rn[i] == ln[i] + 1:
                return True
        return False

    # ------------------------------------------------------------------ #
    def _fast_on_request(self, src: int, payload: dict) -> None:
        origin = payload["origin"]
        seq = payload["seq"]
        i = self._index[origin]
        rn = self._rn_arr
        if seq <= rn[i]:
            return  # outdated or duplicated request
        rn[i] = seq
        if not self._holds_token:
            return
        if seq == self._ln_arr[i] + 1:
            if self._state is PeerState.NO_REQ:
                self._fast_send_token(origin)
            else:
                self._notify_pending()

    def _fast_on_token(self, src: int, payload: dict) -> None:
        if self._holds_token:
            raise ProtocolError(f"{self.name}: received a second token")
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self._holds_token = True
        ln = payload["ln"]
        peers = self.peers
        arr = np.fromiter(
            (ln[p] for p in peers), dtype=np.int64, count=len(peers)
        )
        self._ln_arr = arr
        self.ln = ArrayMap(arr, self._index)
        self.queue = deque(payload["queue"])
        if self._state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: token arrived in state {self._state.value}"
            )
        self._grant()

    def _fast_send_token(self, dst: int) -> None:
        ln_arr, queue, peers = self._ln_arr, self.queue, self.peers
        self._holds_token = False
        self._ln_arr = None
        self.ln = None
        self.queue = None
        payload = {
            "ln": {p: int(ln_arr[i]) for i, p in enumerate(peers)},
            "queue": [int(j) for j in queue],
        }
        size = DEFAULT_MESSAGE_SIZE + 8 * len(peers) + 8 * len(queue)
        self._fsend(self.node, dst, self.port, "token", payload, size)

    def _on_request(self, msg) -> None:
        self._fast_on_request(msg.src, msg.payload)

    def _on_token(self, msg) -> None:
        self._fast_on_token(msg.src, msg.payload)


# --------------------------------------------------------------------- #
# Martin
# --------------------------------------------------------------------- #
class CompiledMartinPeer(_CompiledPeer, MartinPeer):
    """Martin's ring with single-frame handlers (ring position is
    already scalar: ``successor`` / ``predecessor`` / the two flags)."""

    def request_cs(self) -> None:
        if self._state is not PeerState.NO_REQ:
            raise ProtocolError(
                f"{self.name}: request_cs() in state {self._state.value}"
            )
        self._state = PeerState.REQ
        tr = self._tr
        if "cs_request" in tr.active_kinds:
            tr.emit(
                "cs_request", time=self.sim._now,
                node=self.node, port=self.port,
            )
        if self._holds_token:
            self._grant()
            return
        if len(self.peers) == 1:
            raise AssertionError("single-peer ring lost its token")
        self._fsend(
            self.node, self.successor, self.port, "request", None,
            DEFAULT_MESSAGE_SIZE,
        )

    def release_cs(self) -> None:
        if self._state is not PeerState.CS:
            raise ProtocolError(
                f"{self.name}: release_cs() in state {self._state.value}"
            )
        self._state = PeerState.NO_REQ
        tr = self._tr
        if tr.version != self._emit_version:
            self._refresh_emit(tr)
        fns = self._exit_subs
        if fns:
            # Inlined cs_exit emit — mirror of the cs_enter block in
            # _CompiledPeer._grant.
            record = TraceRecord.__new__(TraceRecord)
            record.kind = "cs_exit"
            record.fields = {
                "time": self.sim._now, "node": self.node, "port": self.port,
            }
            for fn in fns:
                fn(record)
        if self._owe_pred:
            self._fast_pass_token()

    # ------------------------------------------------------------------ #
    def _fast_on_request(self, src: int, payload: Optional[dict]) -> None:
        if self._holds_token:
            if self._state is PeerState.CS:
                first = not self._owe_pred
                self._owe_pred = True
                if first:
                    self._notify_pending()
            else:
                self._owe_pred = True
                self._fast_pass_token()
        else:
            if self._state is PeerState.REQ or self._owe_pred:
                self._owe_pred = True
            else:
                self._owe_pred = True
                self._fsend(
                    self.node, self.successor, self.port, "request", None,
                    DEFAULT_MESSAGE_SIZE,
                )

    def _fast_on_token(self, src: int, payload: Optional[dict]) -> None:
        self._holds_token = True
        if self._state is PeerState.REQ:
            self._grant()
        elif self._owe_pred:
            self._fast_pass_token()

    def _fast_pass_token(self) -> None:
        self._holds_token = False
        self._owe_pred = False
        self._fsend(
            self.node, self.predecessor, self.port, "token", None,
            DEFAULT_MESSAGE_SIZE,
        )

    def _on_request(self, msg) -> None:
        self._fast_on_request(msg.src, msg.payload)

    def _on_token(self, msg) -> None:
        self._fast_on_token(msg.src, msg.payload)


# --------------------------------------------------------------------- #
# workload
# --------------------------------------------------------------------- #
class CompiledApplicationProcess(ApplicationProcess):
    """The α/β cycle with handle-free timers and the clock read directly.

    Timer labels are dropped (``post_at`` carries none), which is only
    observable through the ``event`` trace kind — promotion is skipped
    whenever that kind has subscribers.

    Exponential think times are drawn in one vectorised batch at
    promotion time (``_think_buf``): numpy's ``Generator`` produces the
    bit-identical sequence for ``exponential(beta, size=n)`` as for
    ``n`` scalar calls, and the ``"think"`` stream is private to this
    process, so buffering ahead is unobservable.
    """

    #: pre-drawn think times (None = fixed/zero-beta, draw per call)
    _think_buf: Optional[List[float]] = None
    _think_i: int = 0

    def _bind_workload(self) -> None:
        # The tie salt is immutable for the run and safe to cache.  The
        # queue is NOT cached (unlike CompiledNetwork's aliases): the
        # horizon scheduler swaps a window façade into ``sim._heap``
        # mid-run, and a stale alias here would push timers past the
        # open window — the push sites read ``sim._heap`` per call and
        # branch on its type instead (one extra load per timer).
        self._ev_salt = self.sim._tie_salt
        if self.distribution == "exponential" and self.beta > 0.0:
            n = self.n_cs - self.completed
            self._think_buf = (
                self._rng.exponential(self.beta, size=n).tolist()
                if n > 0 else []
            )
            self._think_i = 0

    def _request(self) -> None:
        sim = self.sim
        self._requested_at = sim._now
        if "app_request" in sim.trace.active_kinds:
            sim.trace.emit(
                "app_request", time=sim._now, node=self.peer.node,
                cluster=self.cluster,
            )
        self.peer.request_cs()

    def _on_granted(self) -> None:
        if self._requested_at is None:
            if self.done:
                return
            raise ConfigurationError(
                f"{self.name}: CS granted without an outstanding request"
            )
        sim = self.sim
        now = sim._now
        self._granted_at = now
        # Inlined ``sim.post_at`` with the past-check elided: α and the
        # think draws are non-negative, so ``due >= now`` by
        # construction.  Mirrored in _release below.
        due = now + self.alpha
        seq = sim._seq
        event = Event.__new__(Event)
        event.time = due
        event.seq = seq
        event.callback = self._release
        event.args = ()
        event.cancelled = False
        event.label = ""
        salt = self._ev_salt
        if salt is not None:
            seq = _mix64(seq ^ salt)
        heap = sim._heap
        if type(heap) is list:
            heappush(heap, (due, seq, event))
        else:  # CalendarQueue or the horizon window façade
            heap.push((due, seq, event))
        sim._seq += 1

    def _release(self) -> None:
        assert self._requested_at is not None and self._granted_at is not None
        sim = self.sim
        self.peer.release_cs()
        # The frozen-dataclass constructor costs five object.__setattr__
        # calls plus a timestamp validation; the invariant it checks
        # (requested <= granted <= released) holds by construction here
        # — granted_at was stamped at grant time and α >= 0.
        record = CSRecord.__new__(CSRecord)
        record.__dict__.update(
            node=self.peer.node,
            cluster=self.cluster,
            requested_at=self._requested_at,
            granted_at=self._granted_at,
            released_at=sim._now,
        )
        self.collector.add(record)
        self._requested_at = None
        self._granted_at = None
        self.completed += 1
        if self.completed < self.n_cs:
            buf = self._think_buf
            if buf is not None:
                i = self._think_i
                self._think_i = i + 1
                think = buf[i]
            else:
                think = self._draw_think()
            # Inlined timer post — see _on_granted.
            due = sim._now + think
            seq = sim._seq
            event = Event.__new__(Event)
            event.time = due
            event.seq = seq
            event.callback = self._request
            event.args = ()
            event.cancelled = False
            event.label = ""
            salt = self._ev_salt
            if salt is not None:
                seq = _mix64(seq ^ salt)
            heap = sim._heap
            if type(heap) is list:
                heappush(heap, (due, seq, event))
            else:  # CalendarQueue or the horizon window façade
                heap.push((due, seq, event))
            sim._seq += 1
        elif self.on_done is not None:
            self.on_done(self)


# --------------------------------------------------------------------- #
# coordinator
# --------------------------------------------------------------------- #
# Module-level automaton state handles: the four hot handlers below test
# and assign these on every CS cycle, and a global load is cheaper than
# the class-attribute chain `CoordinatorState.IN` (two dict lookups).
_C_STARTING = CoordinatorState.STARTING
_C_OUT = CoordinatorState.OUT
_C_WAIT_FOR_IN = CoordinatorState.WAIT_FOR_IN
_C_IN = CoordinatorState.IN
_C_WAIT_FOR_OUT = CoordinatorState.WAIT_FOR_OUT
_C_OUT_I = _C_OUT.index
_C_WAIT_FOR_IN_I = _C_WAIT_FOR_IN.index
_C_IN_I = _C_IN.index
_C_WAIT_FOR_OUT_I = _C_WAIT_FOR_OUT.index


class CompiledCoordinator(Coordinator):
    """The Fig 2 automaton with ``_enter``/``_request_upper`` flattened
    into the four event handlers.

    Pure frame inlining: transition order, counter updates, trace
    records, gate consultation, and error messages are identical to
    :class:`~repro.core.coordinator.Coordinator`.  The startup branch of
    ``_on_lower_granted`` (state ``STARTING``) delegates to the
    interpreted automaton — it runs at most once per coordinator.
    """

    def _emit_state(self, state: CoordinatorState) -> None:
        # Cold: only reached when a `coordinator_state` subscriber is
        # attached, in which case the run is observed, not benchmarked.
        self._trace.emit(
            "coordinator_state",
            time=self.now,
            node=self.node,
            state=state.value,
        )

    def _on_lower_pending(self) -> None:
        if self._state is _C_OUT:
            self._state = _C_WAIT_FOR_IN
            self._transitions[_C_WAIT_FOR_IN_I] += 1
            if "coordinator_state" in self._trace.active_kinds:
                self._emit_state(_C_WAIT_FOR_IN)
            gate = self.upper_request_gate
            if gate is not None and gate(self):
                return
            self.upper.request_cs()

    def _on_upper_granted(self) -> None:
        if self._state is not _C_WAIT_FOR_IN:
            raise CompositionError(
                f"{self.name}: upper CS granted in state {self._state}"
            )
        self._state = _C_IN
        self._transitions[_C_IN_I] += 1
        if "coordinator_state" in self._trace.active_kinds:
            self._emit_state(_C_IN)
        self.lower.release_cs()
        if self.upper.has_pending_request:
            self._state = _C_WAIT_FOR_OUT
            self._transitions[_C_WAIT_FOR_OUT_I] += 1
            if "coordinator_state" in self._trace.active_kinds:
                self._emit_state(_C_WAIT_FOR_OUT)
            self.lower.request_cs()

    def _on_upper_pending(self) -> None:
        if self._state is _C_IN:
            self._state = _C_WAIT_FOR_OUT
            self._transitions[_C_WAIT_FOR_OUT_I] += 1
            if "coordinator_state" in self._trace.active_kinds:
                self._emit_state(_C_WAIT_FOR_OUT)
            self.lower.request_cs()

    def _on_lower_granted(self) -> None:
        if self._state is _C_STARTING:
            Coordinator._on_lower_granted(self)
            return
        if self._state is not _C_WAIT_FOR_OUT:
            raise CompositionError(
                f"{self.name}: lower CS granted in state {self._state}"
            )
        self._state = _C_OUT
        self._transitions[_C_OUT_I] += 1
        if "coordinator_state" in self._trace.active_kinds:
            self._emit_state(_C_OUT)
        self.upper.release_cs()
        if self.lower.has_pending_request:
            self._state = _C_WAIT_FOR_IN
            self._transitions[_C_WAIT_FOR_IN_I] += 1
            if "coordinator_state" in self._trace.active_kinds:
                self._emit_state(_C_WAIT_FOR_IN)
            gate = self.upper_request_gate
            if gate is not None and gate(self):
                return
            self.upper.request_cs()


# --------------------------------------------------------------------- #
# promotion
# --------------------------------------------------------------------- #
def compiled_peer_registry() -> List[Tuple[str, Type, Type]]:
    """``(algorithm name, interpreted class, compiled class)`` triples.

    The conformance check (:func:`repro.compile.tables
    .check_table_conformance`) walks this registry to compare every
    generated table against the algorithm's declared effect envelope.
    """
    return [
        ("naimi", NaimiTrehelPeer, CompiledNaimiPeer),
        ("suzuki", SuzukiKasamiPeer, CompiledSuzukiPeer),
        ("martin", MartinPeer, CompiledMartinPeer),
    ]


#: Exact-type promotion map: subclasses (PriorityNaimiPeer, test
#: doubles) keep their own, possibly divergent, behaviour interpreted.
_PEER_MAP: Dict[type, type] = {
    base: compiled for _, base, compiled in compiled_peer_registry()
}


def _system_peers(system: Any) -> List[MutexPeer]:
    # Exact types only: Adaptive/Multilevel compositions re-wire
    # instances at runtime and keep interpreted peers (they still get
    # the fused network path).
    from ..core.composition import Composition, FlatMutex

    if type(system) is Composition:
        peers: List[MutexPeer] = []
        for instance in system.intra_instances:
            peers.extend(instance)
        peers.extend(system.inter_peers)
        return peers
    if type(system) is FlatMutex:
        return list(system._app_peers.values())
    return []


def _system_coordinators(system: Any) -> List[Coordinator]:
    # Same exact-type conservatism as _system_peers: adaptive and
    # multilevel compositions rewire coordinators mid-run and keep the
    # interpreted automaton.
    from ..core.composition import Composition

    if type(system) is Composition:
        return [c for c in system.coordinators if type(c) is Coordinator]
    return []


def _rebind_callbacks(callbacks: List[Any], owner: Any) -> None:
    """Re-point ``owner``'s bound methods at its promoted class.

    A bound method freezes its ``__func__`` at creation, so callbacks
    registered before a ``__class__`` swap would keep running the
    interpreted bodies.  In-place replacement preserves list order
    (callback order is observable through trace-record ordering).
    """
    for i, fn in enumerate(callbacks):
        if getattr(fn, "__self__", None) is owner:
            callbacks[i] = getattr(owner, fn.__func__.__name__)


def compile_system(
    net: Any, system: Any = None, apps: Any = ()
) -> Dict[str, int]:
    """Promote a built system onto the compiled fast path (in place).

    Call after the system and workload are fully constructed.  Returns
    ``{"peers": n, "apps": m}`` — zeros when the network is not a
    fast-path-capable :class:`~repro.compile.network.CompiledNetwork`
    (crash/fault/FIFO runs, tapped networks), in which case everything
    keeps running interpreted on top of it, equivalent by construction.
    """
    report = {"peers": 0, "coordinators": 0, "apps": 0}
    if not isinstance(net, CompiledNetwork) or net._slow or net._send_taps:
        return report
    for peer in _system_peers(system):
        compiled = _PEER_MAP.get(type(peer))
        if compiled is None:
            continue
        peer.__class__ = compiled
        peer._bind_state()
        report["peers"] += 1
    for coord in _system_coordinators(system):
        coord.__class__ = CompiledCoordinator
        # The four automaton callbacks registered by _attach are bound
        # methods snapshotted at construction; re-point them.
        _rebind_callbacks(coord.lower.on_pending_request, coord)
        _rebind_callbacks(coord.lower.on_granted, coord)
        _rebind_callbacks(coord.upper.on_pending_request, coord)
        _rebind_callbacks(coord.upper.on_granted, coord)
        report["coordinators"] += 1
    if "event" in net.sim.trace.active_kinds:
        return report  # timer labels are observable: keep apps as-is
    for app in apps:
        if type(app) is not ApplicationProcess:
            continue
        app.__class__ = CompiledApplicationProcess
        app._bind_workload()
        _rebind_callbacks(app.peer.on_granted, app)
        report["apps"] += 1
    return report
