"""Declarative state layouts: lowering per-peer dicts to numpy arrays.

Every mutex algorithm declares its hot state through a
:class:`StateLayout` class attribute (``compiled_state``): which
instance attributes are plain scalars (tree pointers, ring positions,
token flags) and which are per-peer maps (Suzuki-Kasami's ``RN``/``LN``).
The compiled backend consumes the declaration to

* lower each per-peer map into a contiguous ``int64`` array indexed by
  ring position (:func:`peer_array`), replacing per-message dict
  hashing with array indexing inside the generated fast handlers;
* build a numpy **structured dtype** describing a peer's full hot state
  (:func:`structured_dtype`) and snapshot it (:func:`capture_state`),
  which the equivalence suite uses to compare interpreted and compiled
  peers field by field after identical schedules.

Array cells hold numpy integers; anything that flows back out — into a
message payload, a digest, a ``repr`` — must be a plain ``int`` (numpy
2.x reprs like ``np.int64(5)`` would corrupt the golden digests).  The
:class:`ArrayMap` view enforces that at the boundary: reads convert with
``int()``, so even inherited interpreted code that still talks dict
(``peer.rn[j]``) observes exactly the values it would have seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["StateLayout", "ArrayMap", "layout_for", "peer_array",
           "structured_dtype", "capture_state"]


@dataclass(frozen=True)
class StateLayout:
    """What a peer class keeps where (declared as ``compiled_state``).

    ``scalars`` are instance attributes holding one integer-like value
    (``None`` allowed, encoded as -1 in snapshots); ``peer_arrays`` are
    attributes holding a ``{peer id: int}`` map with exactly one entry
    per member of ``peer.peers`` (or ``None`` while not applicable).
    """

    scalars: Tuple[str, ...] = ()
    peer_arrays: Tuple[str, ...] = ()


class ArrayMap:
    """A dict-compatible view over a per-peer ``int64`` array.

    Promoted peers keep their state in arrays but inherit interpreted
    methods (and host external readers) that still index by peer id.
    This view makes both worlds see one store: writes land in the array
    the fast handlers read, and every read crosses the boundary as a
    plain ``int``.
    """

    __slots__ = ("_arr", "_index")

    def __init__(self, arr: "np.ndarray", index: Dict[int, int]) -> None:
        self._arr = arr
        self._index = index

    def __getitem__(self, key: int) -> int:
        return int(self._arr[self._index[key]])

    def __setitem__(self, key: int, value: int) -> None:
        self._arr[self._index[key]] = value

    def __contains__(self, key: object) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[int]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def keys(self):
        return self._index.keys()

    def items(self) -> List[Tuple[int, int]]:
        return [(p, int(self._arr[i])) for p, i in self._index.items()]

    def values(self) -> List[int]:
        return [int(v) for v in self._arr]

    def get(self, key: int, default: Any = None) -> Any:
        i = self._index.get(key)
        return default if i is None else int(self._arr[i])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, ArrayMap)):
            return dict(self.items()) == dict(
                other.items() if isinstance(other, ArrayMap) else other.items()
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self.items()))


def layout_for(cls: type) -> Optional[StateLayout]:
    """The :class:`StateLayout` declared by ``cls`` (or ``None``).

    Algorithm classes declare ``compiled_state`` as a plain mapping
    (``{"scalars": (...), "peer_arrays": (...)}``) so the mutex layer
    never has to import the compile package; this accessor normalises
    either form.
    """
    spec = getattr(cls, "compiled_state", None)
    if spec is None:
        return None
    if isinstance(spec, StateLayout):
        return spec
    return StateLayout(
        scalars=tuple(spec.get("scalars", ())),
        peer_arrays=tuple(spec.get("peer_arrays", ())),
    )


def peer_array(peer: Any, attr: str) -> Optional["np.ndarray"]:
    """Lower ``peer.<attr>`` (a per-peer map, or ``None``) to ``int64``.

    Cells follow ``peer.peers`` order — the same insertion order every
    interpreted dict uses — so reconstructing a payload dict from the
    array reproduces the interpreted ``repr`` byte for byte.
    """
    mapping = getattr(peer, attr)
    if mapping is None:
        return None
    peers = peer.peers
    if set(mapping) != set(peers):
        raise ValueError(
            f"{peer.name}.{attr} keys {sorted(mapping)} != peer set "
            f"{sorted(peers)}; cannot lower to an array"
        )
    return np.fromiter(
        (mapping[p] for p in peers), dtype=np.int64, count=len(peers)
    )


def structured_dtype(layout: StateLayout, n_peers: int) -> "np.dtype":
    """The structured dtype of one peer's hot state under ``layout``."""
    fields: List[Tuple[str, Any]] = [(name, np.int64) for name in layout.scalars]
    fields.extend(
        (name, np.int64, (n_peers,)) for name in layout.peer_arrays
    )
    return np.dtype(fields)


def _encode_scalar(value: Any) -> int:
    if value is None:
        return -1
    return int(value)


def capture_state(peer: Any) -> Optional["np.ndarray"]:
    """Snapshot a peer's declared hot state as one structured record.

    Returns ``None`` for classes that declare no ``compiled_state``.
    Works identically on interpreted and promoted peers (dict state is
    read through the same declaration), so the equivalence suite can
    ``assert capture_state(a) == capture_state(b)`` across backends.
    Missing per-peer maps (a Suzuki peer not holding the token) encode
    as all ``-1``; ``None`` scalars encode as ``-1``.
    """
    layout = layout_for(type(peer))
    if layout is None:
        return None
    n = len(peer.peers)
    record = np.zeros((), dtype=structured_dtype(layout, n))
    for name in layout.scalars:
        record[name] = _encode_scalar(getattr(peer, name))
    for name in layout.peer_arrays:
        arr = peer_array(peer, name)
        record[name] = -1 if arr is None else arr
    return record
