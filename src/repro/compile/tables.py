"""Per-kind dispatch tables, resolved once at system build time.

The interpreted delivery path resolves every message's handler
dynamically: ``Network._deliver`` looks the ``(node, port)`` handler up,
``MutexPeer._on_message`` then does ``getattr(self, f"_on_{kind}")`` per
event.  The compiled backend replaces that per-event chain with tables
built **once** per peer class:

* :func:`dispatch_table` — ``{kind: unbound _on_<kind> method}``,
  mirroring the ``getattr`` protocol exactly (every ``_on_*`` method
  except the dispatcher itself participates, so a class's table accepts
  precisely the kinds its interpreted dispatch would);
* :func:`fast_table` — ``{kind: unbound _fast_on_<kind> method}`` for
  classes that additionally provide single-frame handlers taking
  ``(src, payload)`` instead of a :class:`~repro.net.message.Message`.

The static per-kind handler-effect graphs of :mod:`repro.analysis.effects`
are the compiler's declared envelopes: :func:`check_table_conformance`
re-derives each algorithm's handled-kind set from its AST and fails if a
generated table ever drifts from it (a handler added to the protocol but
missed by a compiled subclass, or vice versa).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "dispatch_table",
    "fast_table",
    "check_table_conformance",
]

#: methods that look like handlers but are dispatch plumbing, not kinds
_NOT_KINDS = ("message",)

_DISPATCH_CACHE: Dict[type, Dict[str, Callable]] = {}
_FAST_CACHE: Dict[type, Optional[Dict[str, Callable]]] = {}


def dispatch_table(cls: type) -> Dict[str, Callable]:
    """``{kind: unbound method}`` table of ``cls``'s message handlers.

    Built from every ``_on_<kind>`` attribute reachable on the class
    (inherited ones included), exactly what
    ``getattr(self, f"_on_{kind}")`` would resolve — so table dispatch
    and interpreted dispatch accept the same kinds and call the same
    code.  Cached per class; classes are immutable after system build.
    """
    table = _DISPATCH_CACHE.get(cls)
    if table is None:
        table = {
            name[len("_on_"):]: getattr(cls, name)
            for name in dir(cls)
            if name.startswith("_on_")
            and name[len("_on_"):] not in _NOT_KINDS
            and callable(getattr(cls, name))
        }
        _DISPATCH_CACHE[cls] = table
    return table


def fast_table(cls: type) -> Optional[Dict[str, Callable]]:
    """``{kind: unbound _fast_on_<kind> method}``, or ``None``.

    ``None`` when ``cls`` does not provide a fast handler for **every**
    kind in its :func:`dispatch_table` — a partial fast table would make
    some kinds skip the :class:`~repro.net.message.Message` allocation
    and others not, which is exactly the sort of asymmetry the
    equivalence gate exists to forbid.
    """
    if cls in _FAST_CACHE:
        return _FAST_CACHE[cls]
    kinds = dispatch_table(cls)
    table: Dict[str, Callable] = {}
    for kind in kinds:
        fast = getattr(cls, f"_fast_on_{kind}", None)
        if fast is None or not callable(fast):
            _FAST_CACHE[cls] = None
            return None
    for kind in kinds:
        table[kind] = getattr(cls, f"_fast_on_{kind}")
    _FAST_CACHE[cls] = table
    return table


def check_table_conformance(
    pairs: Optional[List[Tuple[str, Type, Type]]] = None,
) -> List[str]:
    """Check generated tables against the declared protocol envelopes.

    For every ``(algorithm_name, base_class, compiled_class)`` pair the
    compiled backend registers, re-derive the algorithm's handled kinds
    from its source AST (:func:`repro.analysis.effects
    .extract_algorithm_effects` — the same effect graphs PR 3 exports)
    and compare against both the base and the compiled dispatch tables.
    Returns a list of human-readable findings; empty means conformant.
    """
    from pathlib import Path

    from ..analysis.effects import (
        extract_algorithm_effects,
        find_algorithm_classes,
    )

    if pairs is None:
        from .peers import compiled_peer_registry

        pairs = compiled_peer_registry()

    import repro.mutex

    mutex_dir = Path(repro.mutex.__file__).resolve().parent
    sources = sorted(mutex_dir.glob("*.py"))
    declared = {
        name: extract_algorithm_effects(path, cls_node)
        for name, (path, cls_node) in find_algorithm_classes(sources).items()
    }
    findings: List[str] = []
    for name, base, compiled in pairs:
        effects = declared.get(name)
        if effects is None:
            findings.append(
                f"{name}: no declared effect envelope found under "
                f"{mutex_dir}"
            )
            continue
        envelope = set(effects.handled_kinds)
        for label, cls in (("base", base), ("compiled", compiled)):
            kinds = set(dispatch_table(cls))
            if kinds != envelope:
                extra = ", ".join(sorted(kinds - envelope)) or "-"
                missing = ", ".join(sorted(envelope - kinds)) or "-"
                findings.append(
                    f"{name}/{label} ({cls.__name__}): dispatch table "
                    f"diverges from the declared envelope "
                    f"(extra: {extra}; missing: {missing})"
                )
        fast = fast_table(compiled)
        if fast is None:
            findings.append(
                f"{name}/compiled ({compiled.__name__}): incomplete "
                f"fast-handler table (needs _fast_on_<kind> for every "
                f"kind in {sorted(envelope)})"
            )
        elif set(fast) != envelope:
            findings.append(
                f"{name}/compiled ({compiled.__name__}): fast table "
                f"kinds {sorted(fast)} diverge from declared envelope "
                f"{sorted(envelope)}"
            )
    return findings
