"""The paper's contribution: hierarchical composition of mutual
exclusion algorithms.

* :class:`~repro.core.coordinator.Coordinator` — the hybrid process
  bridging two algorithm instances (Fig 1(b) automaton, Fig 2 pseudo-code).
* :class:`~repro.core.composition.Composition` — the two-level assembly
  (any intra algorithm × any inter algorithm).
* :class:`~repro.core.composition.FlatMutex` — the non-hierarchical
  baseline ("original algorithm").
* :class:`~repro.core.multilevel.MultilevelComposition` — >2 levels
  (paper §6 extension).
* :class:`~repro.core.adaptive.AdaptiveComposition` — runtime switching
  of the inter algorithm (paper §6 future work).
* :mod:`repro.core.recovery` — crash detection, token regeneration and
  coordinator failover around the unmodified algorithms.
"""

from .adaptive import AdaptiveComposition, AdaptivePolicy
from .composition import Composition, FlatMutex, MutexSystem
from .coordinator import Coordinator
from .multilevel import MultilevelComposition
from .recovery import (
    CompositionRecovery,
    HeartbeatEmitter,
    HeartbeatMonitor,
    InstanceRecovery,
    RecoveryConfig,
    elect_holder,
)
from .states import CoordinatorState

__all__ = [
    "CoordinatorState",
    "Coordinator",
    "MutexSystem",
    "Composition",
    "FlatMutex",
    "MultilevelComposition",
    "AdaptiveComposition",
    "AdaptivePolicy",
    "RecoveryConfig",
    "InstanceRecovery",
    "CompositionRecovery",
    "HeartbeatEmitter",
    "HeartbeatMonitor",
    "elect_holder",
]
