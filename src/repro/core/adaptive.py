"""Adaptive composition (paper §6, stated future work): replace the
*inter* algorithm at runtime according to the observed application
behaviour.

The paper's conclusion table (§4.7) maps behaviour to the best inter
algorithm:

* **low parallelism** (almost every cluster has requesters)  → Martin;
* **intermediate** (some clusters have requesters)            → Naimi;
* **high parallelism** (one or few clusters have requesters)  → Suzuki.

:class:`AdaptivePolicy` encodes exactly that mapping on a directly
observable signal — the fraction of clusters with at least one busy
(requesting or in-CS) application process, sampled periodically.

Switching protocol
------------------
The controller here is an **oracle** (it reads global simulation state to
detect quiescence), standing in for the distributed epoch-change
protocol a real deployment would need; the paper itself proposes no such
protocol, and the oracle variant measures the *benefit* of adaptivity
— which is the future-work question — without inventing one.  A switch:

1. **gates** new inter-level requests (coordinators stay ``WAIT_FOR_IN``
   but their request is deferred) and waits until the inter level drains
   to quiescence — no coordinator ``WAIT_FOR_OUT`` or with a live inter
   request, exactly one token holder, holder without pending requests.
   Without the gate a saturated workload would never go quiescent and
   the switch would be postponed to exactly when it no longer matters;
2. builds a fresh inter instance (new epoch port) whose initial holder
   is the current token owner's node;
3. rewires every coordinator via
   :meth:`~repro.core.coordinator.Coordinator.rewire_upper` — a
   coordinator in ``IN`` re-enters the new instance's CS synchronously —
   and retires the old peers.

Only token-based inter algorithms are eligible (the policy's trio all
are): ownership transfer into the new epoch is a synchronous, zero-
message operation for them.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CompositionError
from ..mutex.base import MutexPeer, PeerState
from ..mutex.registry import get_algorithm
from ..net.network import Network
from ..net.topology import GridTopology
from ..sim.kernel import Simulator
from .composition import Composition, MutexSystem
from .states import CoordinatorState

__all__ = ["AdaptivePolicy", "AdaptiveComposition"]


class AdaptivePolicy:
    """Maps the observed busy-cluster fraction to an inter algorithm.

    Parameters
    ----------
    low_threshold:
        Busy fraction at or above which the application counts as *low
        parallelism* (→ ``low_algorithm``).
    high_threshold:
        Busy fraction at or below which it counts as *high parallelism*
        (→ ``high_algorithm``).
    """

    def __init__(
        self,
        low_threshold: float = 0.66,
        high_threshold: float = 0.25,
        low_algorithm: str = "martin",
        mid_algorithm: str = "naimi",
        high_algorithm: str = "suzuki",
    ) -> None:
        if not 0.0 <= high_threshold < low_threshold <= 1.0:
            raise CompositionError(
                f"thresholds must satisfy 0 <= high ({high_threshold}) < "
                f"low ({low_threshold}) <= 1"
            )
        self.low_threshold = low_threshold
        self.high_threshold = high_threshold
        self.low_algorithm = get_algorithm(low_algorithm).name
        self.mid_algorithm = get_algorithm(mid_algorithm).name
        self.high_algorithm = get_algorithm(high_algorithm).name
        for name in (self.low_algorithm, self.mid_algorithm, self.high_algorithm):
            if not get_algorithm(name).token_based:
                raise CompositionError(
                    f"adaptive switching requires token-based algorithms, "
                    f"got {name!r}"
                )

    def choose(self, busy_fraction: float) -> str:
        """Inter algorithm for the given fraction of busy clusters."""
        if busy_fraction >= self.low_threshold:
            return self.low_algorithm
        if busy_fraction <= self.high_threshold:
            return self.high_algorithm
        return self.mid_algorithm


class AdaptiveComposition(MutexSystem):
    """A two-level composition whose inter algorithm follows the workload.

    Wraps a :class:`~repro.core.composition.Composition` (the intra level
    and the application-facing peers never change) and periodically
    re-evaluates :class:`AdaptivePolicy`, switching the inter instance
    when the decision changes and the system is quiescent.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        topology: GridTopology,
        intra: str = "naimi",
        initial_inter: str = "naimi",
        policy: Optional[AdaptivePolicy] = None,
        sample_every_ms: float = 50.0,
        decide_every_samples: int = 10,
        hysteresis: int = 2,
    ) -> None:
        super().__init__(sim, net, topology)
        if sample_every_ms <= 0 or decide_every_samples < 1 or hysteresis < 1:
            raise CompositionError("invalid adaptive controller parameters")
        self.policy = policy if policy is not None else AdaptivePolicy()
        self.base = Composition(sim, net, topology, intra=intra, inter=initial_inter)
        if not get_algorithm(initial_inter).token_based:
            raise CompositionError(
                "adaptive switching requires a token-based initial inter algorithm"
            )
        self.inter_name = self.base.inter_name
        self.epoch = 0
        #: (simulated time, old algorithm, new algorithm) per switch
        self.switches: List[tuple] = []
        self._inter_peers: List[MutexPeer] = list(self.base.inter_peers)
        # Reconfiguration gate: while a switch is pending, coordinators
        # defer *new* inter requests so the inter level can drain to
        # quiescence even under saturation (in-flight requests are still
        # served by the old epoch).
        self._gated = []
        for coordinator in self.base.coordinators:
            coordinator.upper_request_gate = self._gate
        self._samples: List[float] = []
        self._streak_algo: Optional[str] = None
        self._streak = 0
        self._pending_switch: Optional[str] = None
        self._sample_every = sample_every_ms
        self._decide_every = decide_every_samples
        self._hysteresis = hysteresis
        sim.schedule(sample_every_ms, self._tick, label="adaptive.tick")

    # ------------------------------------------------------------------ #
    # MutexSystem interface (delegates to the wrapped composition)
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"{self.base.intra_name}-adaptive[{self.inter_name}]"

    @property
    def app_nodes(self):
        return self.base.app_nodes

    def peer_for(self, node: int) -> MutexPeer:
        return self.base.peer_for(node)

    @property
    def coordinators(self):
        return self.base.coordinators

    # ------------------------------------------------------------------ #
    # controller
    # ------------------------------------------------------------------ #
    def busy_cluster_fraction(self) -> float:
        """Fraction of clusters with >= 1 busy application process."""
        busy = 0
        for instance in self.base.intra_instances:
            # instance[0] is the coordinator's peer; apps follow.
            if any(p.state is not PeerState.NO_REQ for p in instance[1:]):
                busy += 1
        return busy / self.topology.n_clusters

    def _tick(self) -> None:
        self._samples.append(self.busy_cluster_fraction())
        if self._pending_switch is not None:
            self._try_switch(self._pending_switch)
        elif len(self._samples) >= self._decide_every:
            window = self._samples
            self._samples = []
            choice = self.policy.choose(sum(window) / len(window))
            if choice == self._streak_algo:
                self._streak += 1
            else:
                self._streak_algo, self._streak = choice, 1
            if choice != self.inter_name and self._streak >= self._hysteresis:
                self._try_switch(choice)
        self.sim.schedule(self._sample_every, self._tick, label="adaptive.tick")

    # ------------------------------------------------------------------ #
    def _gate(self, coordinator) -> bool:
        """Coordinator-side hook: defer new inter requests while a switch
        is pending (the coordinator stays WAIT_FOR_IN; its request enters
        the *new* instance after the epoch change)."""
        if self._pending_switch is None:
            return False
        self._gated.append(coordinator)
        return True

    def _quiescent(self) -> bool:
        for c in self.base.coordinators:
            if c.state is CoordinatorState.WAIT_FOR_OUT:
                return False
            if (
                c.state is CoordinatorState.WAIT_FOR_IN
                and c.upper.state is PeerState.REQ
            ):
                # A request is still live inside the old epoch (only
                # gate-deferred WAIT_FOR_IN is acceptable).
                return False
        holders = [p for p in self._inter_peers if p.holds_token]
        if len(holders) != 1:
            return False  # token in flight
        if any(p.state is PeerState.REQ for p in self._inter_peers):
            return False
        return not holders[0].has_pending_request

    def _try_switch(self, algorithm: str) -> None:
        """Attempt the epoch change; re-armed on the next tick if the
        inter level is not quiescent yet."""
        if not self._quiescent():
            self._pending_switch = algorithm
            return
        self._pending_switch = None
        holder_node = next(
            p.node for p in self._inter_peers if p.holds_token
        )
        self.epoch += 1
        port = f"inter/{self.epoch}"
        peer_cls = get_algorithm(algorithm).peer_class
        coord_nodes = [c.node for c in self.base.coordinators]
        new_peers = [
            peer_cls(self.sim, self.net, node, coord_nodes, port,
                     initial_holder=holder_node)
            for node in coord_nodes
        ]
        for coordinator, new_peer in zip(self.base.coordinators, new_peers):
            coordinator.rewire_upper(new_peer)
        for old in self._inter_peers:
            old.shutdown()
        self._inter_peers = new_peers
        self.switches.append((self.sim.now, self.inter_name, algorithm))
        self.inter_name = get_algorithm(algorithm).name
        # Release the gate: deferred requests enter the new epoch.
        gated, self._gated = self._gated, []
        for coordinator in gated:
            coordinator.resume_upper_request()
        if self.sim.trace.active:
            self.sim.trace.emit(
                "inter_switch", time=self.sim.now, algorithm=algorithm,
                epoch=self.epoch,
            )
