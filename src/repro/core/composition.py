"""Assembly of the two-level composition (paper §3) and the flat
baseline, behind a common :class:`MutexSystem` interface.

The application layer only ever sees ``system.peer_for(node)`` — a
:class:`~repro.mutex.base.MutexPeer` to call ``request_cs`` /
``release_cs`` on.  Whether that peer belongs to a flat system-wide
instance or to the intra level of a hierarchy is invisible to it, which
is exactly the transparency the paper claims for the approach.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from ..errors import CompositionError
from ..mutex.base import MutexPeer
from ..mutex.registry import get_algorithm
from ..net.network import Network
from ..net.topology import GridTopology
from ..sim.kernel import Simulator
from .coordinator import Coordinator

__all__ = ["MutexSystem", "Composition", "FlatMutex"]


class MutexSystem(ABC):
    """A deployed mutual exclusion service over a grid topology.

    Concrete systems: :class:`FlatMutex` (one instance spanning every
    application node — the paper's "original algorithm") and
    :class:`Composition` (the paper's contribution).
    """

    def __init__(self, sim: Simulator, net: Network, topology: GridTopology):
        self.sim = sim
        self.net = net
        self.topology = topology

    @property
    @abstractmethod
    def name(self) -> str:
        """Display name, e.g. ``"naimi-martin"`` or ``"naimi (flat)"``."""

    @property
    @abstractmethod
    def app_nodes(self) -> Tuple[int, ...]:
        """Nodes hosting application processes.

        By convention the first node of every cluster is the coordinator
        slot and never hosts an application process — also in the flat
        baseline, so both systems serve identical app populations."""

    @abstractmethod
    def peer_for(self, node: int) -> MutexPeer:
        """The mutex peer an application process on ``node`` must use."""


def _split_cluster_nodes(topology: GridTopology, ci: int) -> Tuple[int, Tuple[int, ...]]:
    """(coordinator node, application nodes) of cluster ``ci``."""
    nodes = topology.cluster_nodes(ci)
    if len(nodes) < 2:
        raise CompositionError(
            f"cluster {ci} has {len(nodes)} node(s); need at least 2 "
            "(one coordinator slot + one application node)"
        )
    return nodes[0], nodes[1:]


class Composition(MutexSystem):
    """The paper's two-level hierarchy: one *intra* algorithm instance per
    cluster plus one *inter* instance over the per-cluster coordinators.

    Parameters
    ----------
    intra, inter:
        Algorithm names (see :mod:`repro.mutex.registry`).  Any
        registered algorithm can be plugged in at either level — the
        paper's "Intra-Inter" notation, e.g. ``Composition(..., intra=
        "naimi", inter="martin")`` is the paper's "Naimi-Martin".
    inter_initial_cluster:
        Cluster whose coordinator initially stores the (idle) inter token.
    standbys:
        Number of nodes per cluster reserved (after the coordinator
        slot) as *standby* application-process hosts for coordinator
        failover (:mod:`repro.core.recovery`).  A standby participates
        in its cluster's intra instance but hosts no application
        process, so it can take over as coordinator without first
        draining an application workload.  Default 0 — no node is
        reserved and the composition behaves exactly as before.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        topology: GridTopology,
        intra: str = "naimi",
        inter: str = "naimi",
        inter_initial_cluster: int = 0,
        standbys: int = 0,
    ) -> None:
        super().__init__(sim, net, topology)
        self.intra_name = get_algorithm(intra).name
        self.inter_name = get_algorithm(inter).name
        intra_cls = get_algorithm(intra).peer_class
        inter_cls = get_algorithm(inter).peer_class
        if not 0 <= inter_initial_cluster < topology.n_clusters:
            raise CompositionError(
                f"inter_initial_cluster {inter_initial_cluster} out of range"
            )
        if standbys < 0:
            raise CompositionError(f"standbys must be >= 0, got {standbys}")

        self._app_peers: Dict[int, MutexPeer] = {}
        self.intra_instances: List[List[MutexPeer]] = []
        #: per-cluster list of unused standby nodes (consumed by failover)
        self.standby_nodes: Dict[int, List[int]] = {}
        coord_lower: List[MutexPeer] = []
        coord_nodes: List[int] = []
        for ci in range(topology.n_clusters):
            coord_node, app_nodes = _split_cluster_nodes(topology, ci)
            if len(app_nodes) <= standbys:
                raise CompositionError(
                    f"cluster {ci} has {len(app_nodes)} non-coordinator "
                    f"node(s); need more than standbys={standbys} to keep "
                    "at least one application node"
                )
            self.standby_nodes[ci] = list(app_nodes[:standbys])
            reserved = set(self.standby_nodes[ci])
            cluster_nodes = topology.cluster_nodes(ci)
            port = f"intra/{ci}"
            instance: List[MutexPeer] = []
            for node in cluster_nodes:
                peer = intra_cls(
                    sim, net, node, cluster_nodes, port,
                    initial_holder=coord_node,
                )
                instance.append(peer)
                if node != coord_node and node not in reserved:
                    self._app_peers[node] = peer
            self.intra_instances.append(instance)
            coord_lower.append(instance[0])
            coord_nodes.append(coord_node)

        inter_holder = coord_nodes[inter_initial_cluster]
        # One shared tuple: every inter peer interns the same peer table.
        inter_peer_set = tuple(coord_nodes)
        self.inter_peers: List[MutexPeer] = [
            inter_cls(
                sim, net, node, inter_peer_set, "inter",
                initial_holder=inter_holder,
            )
            for node in coord_nodes
        ]
        self.coordinators: List[Coordinator] = [
            Coordinator(sim, lower, upper)
            for lower, upper in zip(coord_lower, self.inter_peers)
        ]

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"{self.intra_name}-{self.inter_name}"

    @property
    def app_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._app_peers))

    def peer_for(self, node: int) -> MutexPeer:
        try:
            return self._app_peers[node]
        except KeyError:
            raise CompositionError(
                f"node {node} hosts no application peer (coordinator slot?)"
            ) from None

    def coordinator_for(self, cluster_index: int) -> Coordinator:
        """The coordinator of the cluster at ``cluster_index``."""
        return self.coordinators[cluster_index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Composition {self.name} clusters={self.topology.n_clusters} "
            f"apps={len(self._app_peers)}>"
        )


class FlatMutex(MutexSystem):
    """The paper's baseline: one algorithm instance spanning every
    application node, blind to the cluster structure ("original
    algorithm" in Fig 4).

    ``peer_factory`` overrides registry-based construction — it is
    called as ``factory(sim, net, node, peers, port, initial_holder=h)``
    per node, allowing per-peer configuration (e.g. a stateful
    scheduling policy for :class:`~repro.mutex.PriorityNaimiPeer`).
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        topology: GridTopology,
        algorithm: str = "naimi",
        initial_cluster: int = 0,
        peer_factory=None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, net, topology)
        if peer_factory is None:
            self.algorithm_name = get_algorithm(algorithm).name
            peer_factory = get_algorithm(algorithm).peer_class
        else:
            self.algorithm_name = name or algorithm
        app_list: List[int] = []
        for ci in range(topology.n_clusters):
            _, cluster_apps = _split_cluster_nodes(topology, ci)
            app_list.extend(cluster_apps)
        # One shared tuple: every flat peer interns the same peer table
        # (an O(N) copy per peer would make construction O(N^2)).
        app_nodes = tuple(app_list)
        holder = topology.cluster_nodes(initial_cluster)[1]
        self._app_peers: Dict[int, MutexPeer] = {
            node: peer_factory(
                sim, net, node, app_nodes, "flat", initial_holder=holder
            )
            for node in app_nodes
        }

    @property
    def name(self) -> str:
        return f"{self.algorithm_name} (flat)"

    @property
    def app_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._app_peers))

    def peer_for(self, node: int) -> MutexPeer:
        try:
            return self._app_peers[node]
        except KeyError:
            raise CompositionError(f"node {node} hosts no application peer") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlatMutex {self.name} apps={len(self._app_peers)}>"
