"""The coordinator process (paper §3, Fig 1(b) and Fig 2).

A coordinator bridges two mutual exclusion algorithm instances through
their *unmodified* public interfaces:

* a **lower** (intra) instance, in which it participates alongside the
  cluster's application processes and whose token it initially holds;
* an **upper** (inter) instance, in which it participates alongside the
  other coordinators.

The pseudo-code of Fig 2 maps onto four event handlers:

* lower pending request while ``OUT``  → ``upper.request_cs()``
  (Fig 2 line 9) → ``WAIT_FOR_IN``;
* upper granted while ``WAIT_FOR_IN`` → ``lower.release_cs()``
  (line 11) → ``IN``;
* upper pending request while ``IN``  → ``lower.request_cs()``
  (line 16) → ``WAIT_FOR_OUT``;
* lower granted while ``WAIT_FOR_OUT`` → ``upper.release_cs()``
  (line 18) → ``OUT``.

On entering ``OUT`` and ``IN`` the coordinator re-checks the respective
``has_pending_request`` flag: a request that arrived while the automaton
was in the opposite wait state produced no fresh notification, but must
still be served (otherwise the composition loses liveness).

The same class implements every level of a **multi-level** hierarchy
(paper §6): a zone coordinator is simply a coordinator whose *lower*
instance is the inter algorithm of its zone.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CompositionError
from ..mutex.base import MutexPeer
from ..sim.kernel import Simulator
from ..sim.process import Process
from .states import CoordinatorState

__all__ = ["Coordinator"]


class Coordinator(Process):
    """Hybrid process bridging a lower and an upper mutex instance.

    Parameters
    ----------
    sim:
        The kernel.
    lower:
        Peer in the lower (intra) instance.  The coordinator must be this
        instance's initial holder (the paper's "initially, every
        coordinator holds the intra token of its cluster"); it acquires
        the lower CS at construction time — synchronously for token-based
        algorithms, after a startup round-trip for permission-based ones.
    upper:
        Peer in the upper (inter) instance.
    name:
        Display name (defaults to ``coord@<node>``).
    """

    def __init__(
        self,
        sim: Simulator,
        lower: MutexPeer,
        upper: MutexPeer,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name or f"coord@{lower.node}")
        if lower.node != upper.node:
            raise CompositionError(
                f"coordinator peers live on different nodes "
                f"({lower.node} vs {upper.node})"
            )
        if lower.port == upper.port:
            raise CompositionError(
                f"lower and upper instances share port {lower.port!r}"
            )
        self.lower = lower
        self.upper = upper
        self._trace = sim.trace  # hot: read on every state transition
        self._state = CoordinatorState.STARTING
        #: Optional reconfiguration gate (see adaptive composition): a
        #: callable consulted before issuing an upper-level request.
        #: Returning True defers the request — the gate owner must later
        #: call :meth:`resume_upper_request`.
        self.upper_request_gate = None
        # State-transition counters, list-indexed by CoordinatorState.index
        # (dict-of-enum pays two Python-level Enum.__hash__ calls per
        # increment); read through the `transitions` property.
        self._transitions = [0] * len(CoordinatorState)
        if lower.initial_holder != lower.node:
            raise CompositionError(
                f"{self.name}: the coordinator must be the lower "
                f"instance's initial holder (got {lower.initial_holder})"
            )
        self._attach(lower, upper)
        # Fig 2, initialisation: grab the lower CS.  Token-based lower
        # algorithms grant synchronously (the coordinator holds the
        # token); permission-based ones need a startup round-trip, during
        # which their request outranks any application request — the
        # coordinator has the cluster's smallest node id and requests at
        # time zero — so no application process can slip into the CS
        # before the automaton reaches OUT.
        lower.request_cs()

    # ------------------------------------------------------------------ #
    def _attach(self, lower: MutexPeer, upper: MutexPeer) -> None:
        lower.on_pending_request.append(self._on_lower_pending)
        lower.on_granted.append(self._on_lower_granted)
        upper.on_pending_request.append(self._on_upper_pending)
        upper.on_granted.append(self._on_upper_granted)

    def _detach(self) -> None:
        self.lower.on_pending_request.remove(self._on_lower_pending)
        self.lower.on_granted.remove(self._on_lower_granted)
        self.upper.on_pending_request.remove(self._on_upper_pending)
        self.upper.on_granted.remove(self._on_upper_granted)

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> CoordinatorState:
        return self._state

    @property
    def transitions(self) -> dict:
        """State-transition counters, exposed for tests and metrics."""
        counts = self._transitions
        return {s: counts[s.index] for s in CoordinatorState}

    @property
    def node(self) -> int:
        return self.lower.node

    def _enter(self, state: CoordinatorState) -> None:
        self._state = state
        self._transitions[state.index] += 1
        # Per-kind gate: `active` is coarse (any subscriber at all, e.g.
        # the safety checker), which had every benchmarked run paying for
        # ~2 state-change records per CS that nobody consumed.
        if "coordinator_state" in self._trace.active_kinds:
            self._trace.emit(
                "coordinator_state",
                time=self.now,
                node=self.node,
                state=state.value,
            )

    # ------------------------------------------------------------------ #
    # automaton transitions
    # ------------------------------------------------------------------ #
    def _on_lower_pending(self) -> None:
        """An application process (or lower-level coordinator) wants the
        CS while we hold the lower token."""
        if self._state is CoordinatorState.OUT:
            self._enter(CoordinatorState.WAIT_FOR_IN)
            self._request_upper()  # Fig 2 line 9
        # STARTING: the request stays queued in the lower instance and is
        # re-examined via has_pending_request when we reach OUT.
        # WAIT_FOR_IN: the upper request is already out — nothing to do.
        # IN / WAIT_FOR_OUT: cannot occur (we do not hold the lower
        # token), but some algorithms notify redundantly; ignore.

    def _on_upper_granted(self) -> None:
        """The inter token arrived: let the cluster in."""
        if self._state is not CoordinatorState.WAIT_FOR_IN:
            raise CompositionError(
                f"{self.name}: upper CS granted in state {self._state}"
            )
        self._enter(CoordinatorState.IN)
        self.lower.release_cs()  # Fig 2 line 11: intra token to the apps
        # A remote request may have travelled *with* the token (e.g. in
        # Suzuki-Kasami's queue) or arrived while we were waiting.
        if self.upper.has_pending_request:
            self._enter(CoordinatorState.WAIT_FOR_OUT)
            self.lower.request_cs()

    def _on_upper_pending(self) -> None:
        """Another coordinator wants the inter token we hold."""
        if self._state is CoordinatorState.IN:
            self._enter(CoordinatorState.WAIT_FOR_OUT)
            self.lower.request_cs()  # Fig 2 line 16
        # WAIT_FOR_OUT: already re-acquiring — nothing to do.
        # OUT: the upper peer idle-holds the token and grants without our
        # involvement; nothing to do.

    def _on_lower_granted(self) -> None:
        """We (re-)obtained the lower token."""
        if self._state is CoordinatorState.STARTING:
            # Startup acquisition completed.
            self._enter(CoordinatorState.OUT)
            if self.lower.has_pending_request:
                self._enter(CoordinatorState.WAIT_FOR_IN)
                self._request_upper()
            return
        if self._state is not CoordinatorState.WAIT_FOR_OUT:
            raise CompositionError(
                f"{self.name}: lower CS granted in state {self._state}"
            )
        self._enter(CoordinatorState.OUT)
        self.upper.release_cs()  # Fig 2 line 18: inter token moves on
        # Local requests that queued up while we were re-acquiring the
        # lower token must restart the cycle.
        if self.lower.has_pending_request:
            self._enter(CoordinatorState.WAIT_FOR_IN)
            self._request_upper()

    def _request_upper(self) -> None:
        """Issue the upper-level CS request, unless a reconfiguration
        gate defers it (the automaton still reads WAIT_FOR_IN; the
        request enters the upper algorithm once the gate owner calls
        :meth:`resume_upper_request`)."""
        gate = self.upper_request_gate
        if gate is not None and gate(self):
            return
        self.upper.request_cs()

    def resume_upper_request(self) -> None:
        """Re-issue an upper request deferred by the gate."""
        if self._state is not CoordinatorState.WAIT_FOR_IN:
            raise CompositionError(
                f"{self.name}: resume_upper_request in state {self._state}"
            )
        self.upper.request_cs()

    # ------------------------------------------------------------------ #
    # reconfiguration (used by the adaptive composition)
    # ------------------------------------------------------------------ #
    def rewire_upper(self, new_peer: MutexPeer) -> None:
        """Swap the upper instance for ``new_peer`` (same node).

        Only legal while the automaton is quiescent at the upper level
        (state ``OUT`` or ``IN``).  If this coordinator is ``IN``, the new
        peer must be its instance's initial holder: the coordinator
        re-enters the new instance's CS synchronously so the safety
        invariant (inter CS membership) carries over to the new epoch.
        """
        gated_wait = (
            self._state is CoordinatorState.WAIT_FOR_IN
            and not self.upper.state.name == "REQ"
        )
        if self._state not in (CoordinatorState.OUT, CoordinatorState.IN) and not gated_wait:
            raise CompositionError(
                f"{self.name}: cannot rewire upper level in state {self._state}"
            )
        if new_peer.node != self.node:
            raise CompositionError(
                f"{self.name}: replacement upper peer lives on node "
                f"{new_peer.node}"
            )
        old = self.upper
        old.on_pending_request.remove(self._on_upper_pending)
        old.on_granted.remove(self._on_upper_granted)
        if self._state is CoordinatorState.IN:
            # Enter the new instance's CS before callbacks attach, so the
            # synchronous grant does not re-trigger the automaton.
            new_peer.request_cs()
            if not new_peer.in_cs:
                raise CompositionError(
                    f"{self.name}: could not transfer inter CS ownership "
                    "to the new instance (is this node its initial holder?)"
                )
        new_peer.on_pending_request.append(self._on_upper_pending)
        new_peer.on_granted.append(self._on_upper_granted)
        self.upper = new_peer
        # Demand that surfaced at the lower level during the swap window
        # must restart the cycle against the new upper instance.
        if self._state is CoordinatorState.OUT and self.lower.has_pending_request:
            self._enter(CoordinatorState.WAIT_FOR_IN)
            self._request_upper()
        elif self._state is CoordinatorState.IN and self.upper.has_pending_request:
            self._enter(CoordinatorState.WAIT_FOR_OUT)
            self.lower.request_cs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Coordinator {self.name} state={self._state}>"
