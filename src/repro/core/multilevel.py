"""Multi-level hierarchies (paper §6: "our two-level approach ... can be
easily extended to multiple levels of algorithm hierarchy").

The extension is purely structural — no new protocol is needed.  A *zone*
coordinator is an ordinary :class:`~repro.core.coordinator.Coordinator`
whose **lower** instance is the zone's algorithm (whose other peers are
the cluster coordinators of the zone) and whose **upper** instance is the
next level up.  Recursion therefore builds any tree:

* each **cluster** runs a level-0 instance over its application nodes
  plus its cluster coordinator (exactly as in the two-level
  :class:`~repro.core.composition.Composition`);
* each **group** of clusters/groups runs a level-k instance over its
  members' coordinator nodes, plus — unless it is the root group — the
  group's own coordinator, which initially holds the group token;
* the **root** group has no coordinator: its instance's token initially
  idles at the first member, like the inter token of the two-level case.

Node budget: a hierarchy of depth ``D`` (``D = 1`` is the two-level
case) reserves the first ``D`` nodes of every cluster as coordinator
slots — slot ``k`` hosts the level-``k`` coordinator of the group whose
subtree starts at that cluster; unused slots stay idle so every cluster
contributes the same number of application nodes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..errors import CompositionError
from ..mutex.base import MutexPeer
from ..mutex.registry import get_algorithm
from ..net.network import Network
from ..net.topology import GridTopology
from ..sim.kernel import Simulator
from .composition import MutexSystem
from .coordinator import Coordinator

__all__ = ["MultilevelComposition"]

#: A hierarchy spec: either a cluster index or a list of sub-specs.
Spec = Union[int, Sequence["Spec"]]


def _leaf_depth(spec: Spec) -> int:
    """Depth of the (required uniform-depth) spec tree; a bare cluster
    index has depth 0."""
    if isinstance(spec, int):
        return 0
    if not spec:
        raise CompositionError("empty group in hierarchy spec")
    depths = {_leaf_depth(child) for child in spec}
    if len(depths) != 1:
        raise CompositionError(
            f"hierarchy leaves at mixed depths: {sorted(depths)}"
        )
    return depths.pop() + 1


def _first_cluster(spec: Spec) -> int:
    """Leftmost cluster index of a spec subtree."""
    while not isinstance(spec, int):
        spec = spec[0]
    return spec


def _collect_clusters(spec: Spec, out: List[int]) -> None:
    if isinstance(spec, int):
        out.append(spec)
    else:
        for child in spec:
            _collect_clusters(child, out)


class MultilevelComposition(MutexSystem):
    """A composition with an arbitrary number of hierarchy levels.

    Parameters
    ----------
    hierarchy:
        Nested lists of cluster indices.  ``[0, 1, 2]`` is the ordinary
        two-level composition over three clusters;
        ``[[0, 1], [2, 3]]`` adds a zone level (two zones of two
        clusters each) for a three-level hierarchy.
    algorithms:
        One algorithm name per level, bottom-up: ``algorithms[0]`` runs
        inside clusters, ``algorithms[k]`` at hierarchy level ``k``.
        Length must be the spec depth + 1.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        topology: GridTopology,
        hierarchy: Spec,
        algorithms: Sequence[str],
    ) -> None:
        super().__init__(sim, net, topology)
        if isinstance(hierarchy, int):
            raise CompositionError("hierarchy root must be a group, not a cluster")
        depth = _leaf_depth(hierarchy)
        if len(algorithms) != depth + 1:
            raise CompositionError(
                f"hierarchy depth {depth} needs {depth + 1} algorithms, "
                f"got {len(algorithms)}"
            )
        clusters: List[int] = []
        _collect_clusters(hierarchy, clusters)
        if sorted(clusters) != list(range(topology.n_clusters)):
            raise CompositionError(
                f"hierarchy must cover clusters 0..{topology.n_clusters - 1} "
                f"exactly once, got {sorted(clusters)}"
            )
        for ci in range(topology.n_clusters):
            if len(topology.cluster_nodes(ci)) < depth + 1:
                raise CompositionError(
                    f"cluster {ci} has {len(topology.cluster_nodes(ci))} "
                    f"nodes; a depth-{depth} hierarchy reserves {depth} "
                    "coordinator slots plus at least one application node"
                )
        self.depth = depth
        self.level_names = [get_algorithm(a).name for a in algorithms]
        self._classes = [get_algorithm(a).peer_class for a in algorithms]
        self._app_peers: Dict[int, MutexPeer] = {}
        self.coordinators: List[Coordinator] = []
        self._group_counter = 0
        self._build_group(hierarchy, depth, is_root=True)

    # ------------------------------------------------------------------ #
    def _build_group(
        self, spec: Spec, level: int, is_root: bool
    ) -> Tuple[int, MutexPeer]:
        """Build the instance for ``spec`` at ``level``; returns the
        (coordinator node, peer) handle the parent instance uses."""
        if isinstance(spec, int):
            return self._build_cluster(spec)

        children = [self._build_group(child, level - 1, False) for child in spec]
        member_nodes = [node for node, _ in children]

        gid = self._group_counter
        self._group_counter += 1
        port = f"l{level}/{gid}"
        peer_cls = self._classes[level]

        if is_root:
            nodes = member_nodes
            holder = member_nodes[0]
        else:
            coord_node = self.topology.cluster_nodes(_first_cluster(spec))[level]
            nodes = member_nodes + [coord_node]
            holder = coord_node

        instance = {
            node: peer_cls(self.sim, self.net, node, nodes, port,
                           initial_holder=holder)
            for node in nodes
        }
        # Bridge every child into this instance.
        for (child_node, child_peer) in children:
            self.coordinators.append(
                Coordinator(self.sim, child_peer, instance[child_node])
            )
        if is_root:
            return (-1, instance[member_nodes[0]])  # unused
        return (holder, instance[holder])

    def _build_cluster(self, ci: int) -> Tuple[int, MutexPeer]:
        nodes = self.topology.cluster_nodes(ci)
        coord_node = nodes[0]
        app_nodes = nodes[self.depth:]
        peer_cls = self._classes[0]
        members = (coord_node, *app_nodes)
        port = f"intra/{ci}"
        peers = {
            node: peer_cls(self.sim, self.net, node, members, port,
                           initial_holder=coord_node)
            for node in members
        }
        for node in app_nodes:
            self._app_peers[node] = peers[node]
        return (coord_node, peers[coord_node])

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return "/".join(self.level_names)

    @property
    def app_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._app_peers))

    def peer_for(self, node: int) -> MutexPeer:
        try:
            return self._app_peers[node]
        except KeyError:
            raise CompositionError(
                f"node {node} hosts no application peer (coordinator slot?)"
            ) from None
