"""Crash recovery for composed mutual exclusion (see ``docs/faults.md``).

The paper's system model (§2) assumes reliable links and crash-free
processes; this layer is the machinery one has to bolt *around* the
composition to survive crash-stop failures — and the design constraint
is the same one the composition itself obeys (§3.1): the composed
algorithms are **not modified**.  Recovery never changes a message
handler and never adds a message kind to a protocol.  It works through
three outside-in mechanisms:

* **detection** — configurable timeouts.  :class:`InstanceRecovery`
  watches one algorithm instance and declares the token lost when a
  live peer's request has been outstanding past a (backing-off)
  deadline *and* a member node is actually down — a timeout alone is
  evidence of slowness, not of loss.  :class:`HeartbeatMonitor` /
  :class:`HeartbeatEmitter` detect coordinator death: the coordinator
  beats to a standby node, and a missed deadline triggers failover.
* **epoch fencing** — before touching any state, a recovery bumps its
  instance's *fence*: an interposition wrapper installed with
  :meth:`~repro.net.network.Network.wrap_handler` (the same
  non-intrusive hook pattern the coordinator uses for callbacks) drops
  every in-flight message of the old epoch, identified by the
  network's delivery sequence number.  Fencing makes *false* suspicion
  safe: if the "lost" token was merely slow, the stale copy is
  discarded before the regenerated one can meet it.
* **epoch reset** — a deterministic election picks the new token
  holder among live peers (an in-CS peer always wins, then a live
  holder, then an explicit preference, then the smallest node id — so
  a token that *isn't* lost is never duplicated), a per-algorithm
  resetter rebuilds the distributed structures over the live
  membership, and peers still in ``REQ`` re-drive their requests
  through the algorithm's own request path.

:class:`CompositionRecovery` assembles these into coordinator failover:
on a missed heartbeat the standby's cluster is fenced and reset (token
to the in-CS application if any), a replacement
:class:`~repro.core.coordinator.Coordinator` is built on the standby
node, and only once it has re-acquired the intra CS — i.e. provably no
application of the orphaned cluster is inside the critical section —
is the inter instance reset.  That ordering is what keeps the global
safety property across the failover.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import RecoveryError
from ..mutex.base import MutexPeer, PeerState
from ..net.faults import CrashController
from ..net.network import Network
from ..sim.kernel import Simulator
from ..sim.process import Process
from .composition import Composition
from .coordinator import Coordinator
from .states import CoordinatorState

__all__ = [
    "RecoveryConfig",
    "elect_holder",
    "InstanceRecovery",
    "HeartbeatEmitter",
    "HeartbeatMonitor",
    "CompositionRecovery",
]


@dataclass(frozen=True)
class RecoveryConfig:
    """Timing knobs of the recovery layer (simulated milliseconds).

    The defaults are sized for the paper's Grid'5000-like latencies
    (LAN ≈ 0.1-0.5 ms, WAN ≈ 5-20 ms one-way): a deadline must comfortably
    exceed a full token round trip or every long wait becomes a false
    suspicion — harmless thanks to the fence, but wasteful.
    """

    #: period between coordinator heartbeats
    heartbeat_ms: float = 25.0
    #: silence after which a coordinator is declared dead
    heartbeat_deadline_ms: float = 80.0
    #: how long a request may stay outstanding before the detector
    #: suspects token loss (only escalated while a member node is down)
    request_deadline_ms: float = 250.0
    #: polling period of the token-loss detector
    check_ms: float = 25.0
    #: multiplicative backoff of the request deadline after each
    #: recovery, so repeated suspicion cannot thrash
    backoff_factor: float = 2.0
    #: cap on the backed-off request deadline
    max_deadline_ms: float = 2000.0

    def __post_init__(self) -> None:
        for field in (
            "heartbeat_ms",
            "heartbeat_deadline_ms",
            "request_deadline_ms",
            "check_ms",
        ):
            if getattr(self, field) <= 0:
                raise RecoveryError(f"{field} must be positive")
        if self.heartbeat_deadline_ms <= self.heartbeat_ms:
            raise RecoveryError(
                "heartbeat_deadline_ms must exceed heartbeat_ms "
                f"({self.heartbeat_deadline_ms} <= {self.heartbeat_ms})"
            )
        if self.backoff_factor < 1.0:
            raise RecoveryError("backoff_factor must be >= 1")
        if self.max_deadline_ms < self.request_deadline_ms:
            raise RecoveryError(
                "max_deadline_ms must be >= request_deadline_ms"
            )


# --------------------------------------------------------------------- #
# deterministic election
# --------------------------------------------------------------------- #
def elect_holder(
    candidates: Sequence[MutexPeer], prefer: Optional[int] = None
) -> MutexPeer:
    """Pick the peer that owns the token in the new epoch.

    Priority: a peer inside the CS (its token is *not* lost — forging a
    second one would break safety), then a live token holder (idle
    holder, same argument), then an explicit preference (failover wants
    the standby), then the smallest node id.  Deterministic given the
    candidate set, so every observer of the same membership elects the
    same peer.
    """
    if not candidates:
        raise RecoveryError("no live peer to elect a token holder from")
    ordered = sorted(candidates, key=lambda p: p.node)
    for peer in ordered:
        if peer.in_cs:
            return peer
    for peer in ordered:
        if peer.holds_token:
            return peer
    if prefer is not None:
        for peer in ordered:
            if peer.node == prefer:
                return peer
    return ordered[0]


# --------------------------------------------------------------------- #
# per-algorithm epoch resetters
# --------------------------------------------------------------------- #
# A resetter rebuilds one algorithm's distributed structures from
# scratch over ``membership`` (a node-id sequence, order significant for
# ring algorithms), installing exactly one token at ``elected``.  It may
# write peer attributes — that is the recovery layer's privilege — but
# must not call into handlers or send messages; replay does the latter
# through the unmodified request path.

def _reset_naimi(
    peers: Sequence[MutexPeer], membership: Sequence[int], elected: int
) -> None:
    for p in peers:
        p._holds_token = p.node == elected
        p.last = p.node if p.node == elected else elected
        p.next = None
        p.peers = tuple(membership)
        p.initial_holder = elected


def _reset_suzuki(
    peers: Sequence[MutexPeer], membership: Sequence[int], elected: int
) -> None:
    for p in peers:
        if p._retry_timer is not None:
            p._retry_timer.cancel()
            p._retry_timer = None
        p.rn = {q: 0 for q in membership}
        p._holds_token = p.node == elected
        p.ln = {q: 0 for q in membership} if p.node == elected else None
        p.queue = deque() if p.node == elected else None
        p.peers = tuple(membership)
        p.initial_holder = elected


def _reset_martin(
    peers: Sequence[MutexPeer], membership: Sequence[int], elected: int
) -> None:
    order = list(membership)
    for p in peers:
        i = order.index(p.node)
        p.successor = order[(i + 1) % len(order)]
        p.predecessor = order[(i - 1) % len(order)]
        p._holds_token = p.node == elected
        p._owe_pred = False
        p.peers = tuple(membership)
        p.initial_holder = elected


_RESETTERS: Dict[str, Callable[[Sequence[MutexPeer], Sequence[int], int], None]] = {
    "naimi": _reset_naimi,
    "suzuki": _reset_suzuki,
    "martin": _reset_martin,
}


# --------------------------------------------------------------------- #
# instance-level recovery
# --------------------------------------------------------------------- #
class InstanceRecovery(Process):
    """Token-loss detection and epoch reset for one algorithm instance.

    Parameters
    ----------
    sim, net, crashes:
        Kernel, transport and failure model.
    peers:
        Every peer of the instance (one shared port).  All three token
        algorithms of the paper are supported; an unknown algorithm
        raises :class:`~repro.errors.RecoveryError` at construction.
    config, metrics:
        Timing knobs and an optional
        :class:`~repro.metrics.MetricsCollector` receiving
        :class:`~repro.metrics.RecoveryRecord` entries and retry counts.
    detect:
        Arm the polling token-loss detector.  ``False`` leaves the
        instance fence-only (the mode :class:`CompositionRecovery` uses
        for the inter instance, whose losses are heartbeat-detected).

    The detector is modelled as one per-instance daemon.  In a real
    deployment each node runs the timeout locally on its own
    outstanding request; the simulation centralises that bookkeeping,
    but triggers only on information a live requester has: "my request
    is old" plus "a member is known dead".
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        crashes: CrashController,
        peers: Sequence[MutexPeer],
        config: Optional[RecoveryConfig] = None,
        metrics=None,
        detect: bool = True,
        name: Optional[str] = None,
    ) -> None:
        if not peers:
            raise RecoveryError("cannot recover an empty instance")
        self.port = peers[0].port
        super().__init__(sim, name or f"recovery/{self.port}")
        self.net = net
        self.crashes = crashes
        self.peers: List[MutexPeer] = list(peers)
        self.config = config if config is not None else RecoveryConfig()
        self.metrics = metrics
        self.detect = detect
        algo = getattr(type(peers[0]), "algorithm_name", None)
        if algo not in _RESETTERS:
            raise RecoveryError(
                f"no epoch resetter registered for algorithm {algo!r} "
                f"(supported: {sorted(_RESETTERS)})"
            )
        self._resetter = _RESETTERS[algo]
        #: membership in canonical order (ring order for Martin)
        self._canonical: List[int] = [p.node for p in self.peers]
        self._members = set(self._canonical)
        self._fence_seq = -1
        self._deadline = self.config.request_deadline_ms
        self._req_since: Dict[int, float] = {}
        #: members that crashed since the last epoch reset.  A restart
        #: clears ``crashes.down`` but not the possibility that the
        #: token died with the node (in its memory or in flight toward
        #: it), so this set — not just ``down`` — is the detector's
        #: evidence of possible loss.
        self._crashed_since_epoch: set = set()
        self._suspended = 0
        #: extra veto consulted by the detector (True = skip this round);
        #: CompositionRecovery uses it to park intra detection while the
        #: cluster's coordinator is down and failover owns the situation.
        self.detection_guard: Optional[Callable[[], bool]] = None
        #: completed epoch resets
        self.recoveries = 0
        #: callbacks fired as fn(reason) after each recovery
        self.on_recover: List[Callable[[str], None]] = []
        for p in self.peers:
            self._install_fence(p)
        crashes.on_crash.append(self._note_crash)
        crashes.on_restart.append(self._note_restart)
        if detect:
            self._arm_check()

    def _note_crash(self, node: int) -> None:
        if node in self._members:
            self._crashed_since_epoch.add(node)

    def _note_restart(self, node: int) -> None:
        peer = next((p for p in self.peers if p.node == node), None)
        if peer is None:
            return
        if node not in self._members:
            # An epoch reset excluded this node while it was down; its
            # in-memory protocol state belongs to a fenced-off epoch.
            # Strip the token flag so the reboot cannot resurrect a
            # second token — the node rejoins only when a future epoch's
            # membership includes it.
            peer._holds_token = False

    # ------------------------------------------------------------------ #
    # epoch fence
    # ------------------------------------------------------------------ #
    def _install_fence(self, peer: MutexPeer) -> None:
        def wrap(inner):
            def fenced(msg):
                if msg.seq < self._fence_seq:
                    return  # in-flight remnant of a fenced-off epoch
                inner(msg)

            return fenced

        self.net.wrap_handler(peer.node, peer.port, wrap)

    @property
    def fence_seq(self) -> int:
        """Delivery sequence number below which inbound messages of this
        instance are discarded (-1 = nothing fenced yet)."""
        return self._fence_seq

    def add_peer(self, peer: MutexPeer) -> None:
        """Adopt a peer created after construction (failover adds the
        replacement coordinator's upper peer this way)."""
        self.peers.append(peer)
        self._canonical.append(peer.node)
        self._members.add(peer.node)
        self._install_fence(peer)

    # ------------------------------------------------------------------ #
    # detection
    # ------------------------------------------------------------------ #
    def suspend(self) -> None:
        """Pause detection (nestable); see :meth:`resume_detection`."""
        self._suspended += 1

    def resume_detection(self) -> None:
        self._suspended = max(0, self._suspended - 1)

    @property
    def deadline_ms(self) -> float:
        """Current (backed-off) request deadline."""
        return self._deadline

    def _arm_check(self) -> None:
        self.set_timer(
            self.config.check_ms, self._check, label=f"{self.name}.check"
        )

    def _check(self) -> None:
        try:
            if self._suspended:
                return
            if self.detection_guard is not None and self.detection_guard():
                return
            down = self.crashes.down
            stuck: Optional[MutexPeer] = None
            for p in sorted(self.peers, key=lambda q: q.node):
                if p.node not in self._members or p.node in down:
                    self._req_since.pop(p.node, None)
                    continue
                if p.state is PeerState.REQ:
                    since = self._req_since.setdefault(p.node, self.now)
                    if stuck is None and self.now - since >= self._deadline:
                        stuck = p
                else:
                    self._req_since.pop(p.node, None)
            if stuck is None:
                return
            suspects = (down | self._crashed_since_epoch) & self._members
            if not suspects:
                # Every member is alive and none has crashed since the
                # current epoch: the wait is slowness, not loss.
                # (Forging a token on mere slowness would even be unsafe
                # in a composition, where intra possession is tied to the
                # coordinator automaton.)  Keep waiting.
                return
            if self.metrics is not None:
                self.metrics.record_retry(f"deadline:{self.port}")
            detected_at = self._req_since.get(stuck.node, self.now)
            self.recover(
                reason=(
                    f"request by node {stuck.node} outstanding for "
                    f">{self._deadline:.0f}ms with member(s) "
                    f"{sorted(suspects)} down or crashed this epoch"
                ),
                detected_at=detected_at,
            )
            self._deadline = min(
                self._deadline * self.config.backoff_factor,
                self.config.max_deadline_ms,
            )
        finally:
            self._arm_check()

    # ------------------------------------------------------------------ #
    # epoch reset
    # ------------------------------------------------------------------ #
    def recover(
        self,
        reason: str,
        prefer: Optional[int] = None,
        membership: Optional[Sequence[int]] = None,
        replay: bool = True,
        detected_at: Optional[float] = None,
        kind: str = "token_regeneration",
        record: bool = True,
    ) -> MutexPeer:
        """Fence the old epoch, elect a holder, reset and (optionally)
        replay.  Returns the elected peer.

        ``membership`` defaults to the canonical membership minus the
        currently-down nodes.  ``replay=False`` defers
        :meth:`replay_pending` to the caller — failover needs the
        requests of an orphaned cluster withheld until its replacement
        coordinator owns the inter CS.
        """
        down = self.crashes.down
        if membership is None:
            members = [n for n in self._canonical if n not in down]
        else:
            members = list(membership)
        member_set = set(members)
        live = sorted(
            (p for p in self.peers if p.node in member_set),
            key=lambda p: p.node,
        )
        if not live:
            raise RecoveryError(f"{self.name}: no live peer left to recover")
        elected = elect_holder(live, prefer=prefer)
        # Canonical order survives into the new epoch (Martin's ring
        # keeps its orientation); genuinely new nodes go to the back.
        order = [n for n in self._canonical if n in member_set]
        order += [n for n in members if n not in self._canonical]
        self._fence_seq = self.net.seq_watermark
        self._resetter(live, order, elected.node)
        self._canonical = order
        self._members = member_set
        self._req_since.clear()
        self._crashed_since_epoch.clear()
        self.recoveries += 1
        if self.sim.trace.active:
            self.sim.trace.emit(
                "recovery",
                time=self.now,
                port=self.port,
                recovery_kind=kind,
                elected=elected.node,
                reason=reason,
            )
        if replay:
            self.replay_pending()
        if record and self.metrics is not None:
            from ..metrics.records import RecoveryRecord

            self.metrics.add_recovery(
                RecoveryRecord(
                    kind=kind,
                    scope=self.port,
                    reason=reason,
                    detected_at=(
                        detected_at if detected_at is not None else self.now
                    ),
                    completed_at=self.now,
                    elected=elected.node,
                )
            )
        for fn in tuple(self.on_recover):
            fn(reason)
        return elected

    def replay_pending(self) -> None:
        """Re-drive every live member still in ``REQ`` through its
        algorithm's own request path (``_do_request``), in node order.

        The peer's automaton state is untouched — no second
        ``cs_request`` is traced, so liveness accounting still sees one
        request per grant.  An elected holder replaying its own request
        grants itself synchronously.
        """
        down = self.crashes.down
        for p in sorted(self.peers, key=lambda q: q.node):
            if p.node in down or p.node not in self._members:
                continue
            if p.state is PeerState.REQ:
                p._do_request()


# --------------------------------------------------------------------- #
# heartbeats
# --------------------------------------------------------------------- #
class HeartbeatEmitter(Process):
    """Periodic ``hb`` beats from a (coordinator) node to a monitor.

    Bind it to its node on the :class:`~repro.net.faults.
    CrashController`: a crash cancels the beat timer, which is exactly
    what makes the monitor's deadline expire.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        node: int,
        monitor_node: int,
        port: str,
        period_ms: float,
    ) -> None:
        super().__init__(sim, f"hb-emit/{port}")
        self.net = net
        self.node = node
        self.monitor_node = monitor_node
        self.port = port
        self.period_ms = period_ms
        self.beats_sent = 0
        self._beat_label = f"{self.name}.beat"  # hoisted off the tick path
        # First beat goes out as a zero-delay event, so the monitor can
        # be constructed (and register its handler) after the emitter.
        self.set_timer(0.0, self._tick, label=self._beat_label)

    def _tick(self) -> None:
        self.net.send(self.node, self.monitor_node, self.port, "hb")
        self.beats_sent += 1
        self.set_timer(self.period_ms, self._tick, label=self._beat_label)


class HeartbeatMonitor(Process):
    """Deadline watchdog over a :class:`HeartbeatEmitter`'s beats.

    Runs on the standby node; each beat re-arms the deadline, and a full
    ``deadline_ms`` of silence fires ``on_failure()`` once, after which
    the monitor is spent (one failover per standby).
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        node: int,
        port: str,
        deadline_ms: float,
        on_failure: Callable[[], None],
    ) -> None:
        super().__init__(sim, f"hb-mon/{port}")
        self.net = net
        self.node = node
        self.port = port
        self.deadline_ms = deadline_ms
        self.on_failure = on_failure
        self.beats_seen = 0
        self.last_beat_at: Optional[float] = None
        self._spent = False
        net.register(node, port, self._on_beat)
        self._deadline_label = f"{self.name}.deadline"  # hoisted: re-armed per beat
        self._deadline = self.set_timer(
            deadline_ms, self._expired, label=self._deadline_label
        )

    def _on_beat(self, msg) -> None:
        if self._spent:
            return
        self.beats_seen += 1
        self.last_beat_at = self.now
        self._deadline.cancel()
        self._deadline = self.set_timer(
            self.deadline_ms, self._expired, label=self._deadline_label
        )

    def _expired(self) -> None:
        if self._spent:
            return
        self._spent = True
        self.on_failure()

    def stop(self) -> None:
        """Disarm without firing (teardown)."""
        self._spent = True
        self.cancel_timers()


# --------------------------------------------------------------------- #
# composition-level recovery: coordinator failover
# --------------------------------------------------------------------- #
class CompositionRecovery:
    """Failure handling for a two-level :class:`Composition`.

    Wires per-cluster :class:`InstanceRecovery` (token loss among the
    applications), a fence-only inter :class:`InstanceRecovery`, and a
    heartbeat pair per cluster whose expiry fails the coordinator over
    to the cluster's standby node.  Requires the composition to have
    been built with ``standbys >= 1``.

    Failover sequence (the order is the safety argument — see module
    docstring and ``docs/faults.md``):

    1. park the cluster's intra detection;
    2. fence + reset the intra instance *without replay*; the token goes
       to the application inside the CS if there is one, else to the
       standby;
    3. build the replacement :class:`Coordinator` on the standby (its
       constructor re-acquires the intra CS through the normal request
       path) with its upper requests gated;
    4. once it holds the intra CS — hence no application of this
       cluster is in the CS — fence + reset the inter instance over the
       surviving coordinators plus the replacement, replaying their
       outstanding inter requests;
    5. release the gate, replay the cluster's application requests, and
       resume detection.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        crashes: CrashController,
        composition: Composition,
        config: Optional[RecoveryConfig] = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.crashes = crashes
        self.composition = composition
        self.config = config if config is not None else RecoveryConfig()
        self.metrics = metrics
        if not any(composition.standby_nodes.values()):
            raise RecoveryError(
                "composition has no standby nodes; build it with "
                "Composition(..., standbys=1) to enable failover"
            )
        #: (completed_at, cluster, new_coordinator_node) per failover
        self.failovers: List = []

        # Tie every process to its node's fate.
        for instance in composition.intra_instances:
            for p in instance:
                crashes.bind(p.node, p)
        for p in composition.inter_peers:
            crashes.bind(p.node, p)
        for c in composition.coordinators:
            crashes.bind(c.node, c)

        self.intra_recovery: List[InstanceRecovery] = []
        for ci, instance in enumerate(composition.intra_instances):
            rec = InstanceRecovery(
                sim, net, crashes, instance,
                config=self.config, metrics=metrics,
            )
            # While this cluster's coordinator is down, failover owns
            # the cluster; a concurrent intra reset could hand the
            # token to an application lacking inter-CS cover.
            rec.detection_guard = (
                lambda ci=ci: crashes.is_down(
                    composition.coordinators[ci].node
                )
            )
            self.intra_recovery.append(rec)

        # The inter instance is fence-only: a request deadline cannot
        # tell "the dead coordinator held the inter token" from a long
        # but healthy wait, so coordinator death — detected by
        # heartbeats — is the only trigger for an inter reset.
        self.inter_recovery = InstanceRecovery(
            sim, net, crashes, composition.inter_peers,
            config=self.config, metrics=metrics, detect=False,
            name="recovery/inter",
        )

        self._emitters: Dict[int, HeartbeatEmitter] = {}
        self._monitors: Dict[int, HeartbeatMonitor] = {}
        for ci, coord in enumerate(composition.coordinators):
            if not composition.standby_nodes[ci]:
                continue
            standby = composition.standby_nodes[ci][0]
            port = f"recovery/hb/{ci}"
            emitter = HeartbeatEmitter(
                sim, net, coord.node, standby, port,
                self.config.heartbeat_ms,
            )
            monitor = HeartbeatMonitor(
                sim, net, standby, port,
                self.config.heartbeat_deadline_ms,
                on_failure=lambda ci=ci: self._on_coordinator_suspected(ci),
            )
            crashes.bind(coord.node, emitter)
            crashes.bind(standby, monitor)
            self._emitters[ci] = emitter
            self._monitors[ci] = monitor

    # ------------------------------------------------------------------ #
    def _on_coordinator_suspected(self, ci: int) -> None:
        coord = self.composition.coordinators[ci]
        if not self.crashes.is_down(coord.node):
            # False suspicion (cannot arise under the crash-stop model,
            # where only a halt silences the emitter) — ignore.  The
            # fence would make even a wrong failover safe, but there is
            # no reason to depose a live coordinator.
            return
        if self.metrics is not None:
            self.metrics.record_retry(f"heartbeat:{ci}")
        self._failover(ci, detected_at=self.sim.now)

    def _failover(self, ci: int, detected_at: float) -> None:
        comp = self.composition
        old = comp.coordinators[ci]
        if not comp.standby_nodes[ci]:
            raise RecoveryError(
                f"cluster {ci}: coordinator {old.node} is dead and no "
                "standby is left"
            )
        standby = comp.standby_nodes[ci].pop(0)
        intra_rec = self.intra_recovery[ci]
        intra_rec.suspend()
        old._detach()  # the deposed automaton must not observe the new epoch

        # Step 2: intra epoch reset, requests withheld.
        intra_rec.recover(
            reason=f"coordinator {old.node} of cluster {ci} crashed",
            prefer=standby,
            replay=False,
            kind="failover_intra",
            record=False,
        )

        # Step 3: replacement coordinator on the standby node.
        lower = next(
            p for p in comp.intra_instances[ci] if p.node == standby
        )
        # The new epoch's anchor: `initial_holder` is a constructor-time
        # contract ("the coordinator is the cluster's notional root"),
        # not live protocol state — the regenerated token may lawfully
        # rest with an in-CS application until request_cs() fetches it.
        for p in comp.intra_instances[ci]:
            if not self.crashes.is_down(p.node):
                p.initial_holder = standby
        upper = type(comp.inter_peers[ci])(
            self.sim, self.net, standby, [standby], "inter",
            initial_holder=standby,
        )
        # Until the inter reset runs, this peer is a member of nothing:
        # construction necessarily minted it a token (it is its own
        # initial holder), which must not exist before the election.
        upper._holds_token = False
        self.inter_recovery.add_peer(upper)

        deferred: List[Coordinator] = []
        new_coord = Coordinator(self.sim, lower, upper)
        new_coord.upper_request_gate = lambda c: deferred.append(c) or True
        self.crashes.bind(standby, new_coord)
        comp.coordinators[ci] = new_coord
        comp.inter_peers[ci] = upper

        def finish() -> None:
            # Step 4: the replacement holds the intra CS, so no
            # application of cluster ci is inside the critical section;
            # regenerating the inter token elsewhere is now safe.
            self.inter_recovery.recover(
                reason=(
                    f"coordinator {old.node} of cluster {ci} replaced "
                    f"by node {standby}"
                ),
                prefer=standby,
                kind="failover_inter",
                record=False,
            )
            # Step 5: open the gate and let the cluster's demand back in.
            new_coord.upper_request_gate = None
            for c in deferred:
                c.resume_upper_request()
            intra_rec.replay_pending()
            intra_rec.resume_detection()
            self.failovers.append((self.sim.now, ci, standby))
            if self.sim.trace.active:
                self.sim.trace.emit(
                    "failover",
                    time=self.sim.now,
                    cluster=ci,
                    old_node=old.node,
                    new_node=standby,
                )
            if self.metrics is not None:
                from ..metrics.records import RecoveryRecord

                self.metrics.add_recovery(
                    RecoveryRecord(
                        kind="failover",
                        scope=f"cluster/{ci}",
                        reason=f"coordinator {old.node} crashed",
                        detected_at=detected_at,
                        completed_at=self.sim.now,
                        elected=standby,
                    )
                )

        if new_coord.state is not CoordinatorState.STARTING:
            # The standby was elected intra holder: the constructor's
            # request_cs() was granted synchronously.
            finish()
        else:
            # An application is in the CS; finish once its release has
            # handed the intra token to the replacement coordinator.
            def once() -> None:
                lower.on_granted.remove(once)
                finish()

            lower.on_granted.append(once)
