"""Coordinator automaton states (paper Fig 1(b)).

A coordinator is a hybrid process participating in two algorithms; its
global state is the combination of its intra-level and inter-level
states:

========================  ===========  ===========
global state              intra state  inter state
========================  ===========  ===========
``OUT``                   CS           NO_REQ
``WAIT_FOR_IN``           CS           REQ
``IN``                    NO_REQ       CS
``WAIT_FOR_OUT``          REQ          CS
========================  ===========  ===========

The safety argument of §3.1 rests on the invariant that at most one
coordinator system-wide is in ``IN`` or ``WAIT_FOR_OUT`` (both imply
possession of the single inter token).
"""

from __future__ import annotations

import enum

__all__ = ["CoordinatorState"]


class CoordinatorState(enum.Enum):
    """Global state of a coordinator (paper Fig 1(b)).

    ``STARTING`` is an implementation detail absent from the paper's
    automaton: the window between construction and the first acquisition
    of the intra CS.  For token-based intra algorithms it lasts zero
    simulated time (the coordinator holds the token and enters
    synchronously); for permission-based ones it covers the startup
    round-trip, during which the coordinator's time-zero, lowest-id
    request outranks every application request.
    """

    #: Dense counter slot used by the coordinator's transition counters
    #: (``Enum.__hash__`` is a Python-level call; a list index is not).
    #: Assigned right after the class body.
    index: int

    #: Initial acquisition of the intra CS is in flight.
    STARTING = "STARTING"
    #: Holds the intra token, no local demand: the cluster is out of the CS.
    OUT = "OUT"
    #: Local demand exists; holds the intra token, waiting for the inter token.
    WAIT_FOR_IN = "WAIT_FOR_IN"
    #: Holds the inter token; the intra token circulates among local
    #: application processes.
    IN = "IN"
    #: Still holds the inter token but is re-acquiring the intra token in
    #: order to satisfy a remote cluster's pending request.
    WAIT_FOR_OUT = "WAIT_FOR_OUT"

    @property
    def holds_inter_token(self) -> bool:
        """Whether a coordinator in this state possesses the inter token
        *as critical-section right* (``IN``/``WAIT_FOR_OUT``).  Note an
        ``OUT`` coordinator may still *store* an idle inter token."""
        return self in (CoordinatorState.IN, CoordinatorState.WAIT_FOR_OUT)

    @property
    def holds_intra_token(self) -> bool:
        """Whether a coordinator in this state is inside its intra CS."""
        return self in (CoordinatorState.OUT, CoordinatorState.WAIT_FOR_IN)


for _i, _member in enumerate(CoordinatorState):
    _member.index = _i
