"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that was
    already stopped and drained, or cancelling a foreign event handle.
    """


class NetworkError(ReproError):
    """Invalid network operation (unknown node, negative latency, ...)."""


class TopologyError(ReproError):
    """Malformed topology description (empty cluster, duplicate node id...)."""


class ProtocolError(ReproError):
    """A mutual exclusion algorithm received a message that violates its
    protocol assumptions (e.g. a second token appearing in the system)."""


class CompositionError(ReproError):
    """The hierarchical composition was assembled or driven incorrectly."""


class SafetyViolation(ReproError):
    """The mutual exclusion *safety* property was violated: two processes
    were observed inside the critical section at the same simulated time."""


class LivenessViolation(ReproError):
    """The mutual exclusion *liveness* property was violated: a request was
    never satisfied by the end of the run."""


class ConfigurationError(ReproError):
    """An experiment or workload was configured with invalid parameters."""


class FarmError(ReproError):
    """The multi-worker experiment farm failed as a whole: a job's
    manifest is malformed or missing, every worker died with chunks
    outstanding, or the farm deadline elapsed before completion."""


class RecoveryError(ReproError):
    """The crash-recovery layer could not restore the system (no live
    peer to elect, no standby left for a failover, or an algorithm
    without a registered epoch resetter)."""
