"""Experiment harness: configurations, runner, figure generators, CLI."""

from .config import ExperimentConfig
from .export import (
    figure_to_csv,
    figure_to_json,
    result_to_dict,
    results_to_csv,
    results_to_json,
)
from .figures import (
    ALL_FIGURES,
    PAPER_SCALE,
    QUICK_SCALE,
    FigureData,
    FigureScale,
    clear_sweep_memo,
    fig4a,
    fig4b,
    fig5a,
    fig5b,
    fig6a,
    fig6b,
    scale_from_env,
)
from .runner import (
    AggregateResult,
    ExperimentResult,
    run_composition,
    run_experiment,
    run_flat,
    run_many,
)
from .parallel import (
    run_configs_cached,
    run_configs_parallel,
    run_many_parallel,
    stream_configs_cached,
)
from .scalability import ScalabilityPoint, scalability_study
from .suites import reproduce_all
from .theory import (
    ALGORITHM_MODELS,
    expected_messages_per_cs,
    expected_obtaining_high_parallelism,
    mean_inter_coordinator_delay,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "AggregateResult",
    "run_experiment",
    "run_many",
    "run_composition",
    "run_flat",
    "FigureScale",
    "FigureData",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "scale_from_env",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "ALL_FIGURES",
    "ScalabilityPoint",
    "scalability_study",
    "result_to_dict",
    "results_to_json",
    "results_to_csv",
    "figure_to_json",
    "figure_to_csv",
    "reproduce_all",
    "run_many_parallel",
    "run_configs_parallel",
    "run_configs_cached",
    "stream_configs_cached",
    "clear_sweep_memo",
    "ALGORITHM_MODELS",
    "expected_messages_per_cs",
    "expected_obtaining_high_parallelism",
    "mean_inter_coordinator_delay",
]
