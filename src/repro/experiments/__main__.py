"""``python -m repro.experiments`` entry point (same CLI as ``repro-mutex``)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
