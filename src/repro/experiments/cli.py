"""Command-line interface: ``repro-mutex`` (or ``python -m repro``).

Subcommands
-----------
``run``
    One experiment; prints the paper's three metrics.
``figure``
    Regenerate one of the paper's figures (fig4a/fig4b/fig5a/fig5b/
    fig6a/fig6b) as a text table.
``algorithms``
    List the registered mutual exclusion algorithms.
``latency``
    Print the Grid'5000 RTT matrix the network model realises (Fig 3).
``scalability``
    The §4.7 flat-vs-composed scaling study.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..cache.store import ExperimentCache, cache_from_env
from ..grid.grid5000 import GRID5000_RTT_MS, GRID5000_SITES
from ..metrics.report import format_matrix, format_table
from ..mutex.registry import available_algorithms
from .config import BACKENDS, ExperimentConfig
from .figures import ALL_FIGURES, PAPER_SCALE, QUICK_SCALE, FigureScale
from .runner import run_experiment
from .scalability import scalability_study

__all__ = ["main", "build_parser"]


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("experiment cache")
    group.add_argument(
        "--cache", action="store_true",
        help="reuse cached results from the experiment cache "
             "(also enabled by REPRO_CACHE=1)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="force caching off, overriding --cache and REPRO_CACHE",
    )
    group.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    group.add_argument(
        "--cache-verify", metavar="N", type=int, default=0,
        help="re-execute every N-th cache hit and compare against the "
             "stored result (0 = trust hits; implies --cache)",
    )
    group.add_argument(
        "--cache-url", metavar="URL", default=None,
        help="use a farm server's HTTP cache proxy instead of a local "
             "directory (see docs/farm.md; implies --cache)",
    )


def _cache_from_args(args):
    """The cache the flags ask for: ``None`` means caching is off."""
    if args.no_cache:
        return None
    if getattr(args, "cache_url", None):
        from ..farm.httpcache import HttpCache

        return HttpCache(args.cache_url, verify_every=args.cache_verify)
    if args.cache or args.cache_dir is not None or args.cache_verify:
        return ExperimentCache(
            cache_dir=args.cache_dir, verify_every=args.cache_verify
        )
    return cache_from_env()


def _print_cache_stats(cache: Optional[ExperimentCache]) -> None:
    # Stats go to stderr so JSON/CSV on stdout stays machine-parseable.
    if cache is not None:
        print(cache.stats.format(), file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mutex",
        description=(
            "Hierarchical composition of mutual exclusion algorithms "
            "for grids (reproduction of Sopena et al., ICPP 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("--system", default="composition",
                       choices=("composition", "flat", "adaptive", "multilevel"))
    run_p.add_argument("--intra", default="naimi")
    run_p.add_argument("--inter", default="naimi")
    run_p.add_argument("--clusters", type=int, default=9)
    run_p.add_argument("--apps", type=int, default=4,
                       help="application processes per cluster")
    run_p.add_argument("--n-cs", type=int, default=20)
    run_p.add_argument("--rho-over-n", type=float, default=1.0)
    run_p.add_argument("--alpha-ms", type=float, default=10.0)
    run_p.add_argument("--platform", default="grid5000",
                       choices=("grid5000", "two-tier", "random-wan"))
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--jitter", type=float, default=0.0)
    run_p.add_argument("--backend", default="interpreted",
                       choices=("interpreted", "compiled"),
                       help="execution backend: 'compiled' lowers the "
                            "protocol onto table-driven dispatch "
                            "(bit-identical results, faster)")
    run_p.add_argument("--queue", default="heap",
                       choices=("heap", "calendar"),
                       help="kernel event queue (calendar pays off at "
                            "1k+ nodes; digest-identical)")
    run_p.add_argument("--horizon", action="store_true",
                       help="conservative lookahead-parallel execution: "
                            "drain events in windows of the minimum "
                            "inter-cluster latency (exact order; "
                            "self-refusing when unsafe)")
    run_p.add_argument("--parallel-clusters", type=int, default=0,
                       metavar="K",
                       help="farm horizon windows to K worker processes "
                            "(implies --horizon; exact results, refused "
                            "under observation/jitter)")
    run_p.add_argument("--json", action="store_true",
                       help="emit the result as JSON instead of text")
    _add_cache_flags(run_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("figure", choices=sorted(ALL_FIGURES))
    fig_p.add_argument("--full", action="store_true",
                       help="paper scale (9x20 nodes, 100 CS, 10 seeds)")
    fig_p.add_argument("--format", choices=("table", "csv", "json"),
                       default="table")
    fig_p.add_argument("--out", metavar="FILE",
                       help="write to FILE instead of stdout")
    _add_cache_flags(fig_p)

    rep_p = sub.add_parser(
        "reproduce", help="regenerate every figure into a directory"
    )
    rep_p.add_argument("out_dir")
    rep_p.add_argument("--full", action="store_true",
                       help="paper scale (9x20 nodes, 100 CS, 10 seeds)")
    rep_p.add_argument("--figures", nargs="+", choices=sorted(ALL_FIGURES),
                       help="subset of figures (default: all)")
    _add_cache_flags(rep_p)

    sub.add_parser("algorithms", help="list registered algorithms")
    sub.add_parser("latency", help="print the Grid'5000 RTT matrix (Fig 3)")

    sc_p = sub.add_parser("scalability", help="flat vs composed scaling (4.7)")
    sc_p.add_argument("--algorithm", default="suzuki")
    sc_p.add_argument("--clusters", type=int, nargs="+", default=[2, 4, 8])
    sc_p.add_argument("--apps", type=int, default=4)
    sc_p.add_argument("--backend", choices=BACKENDS, default="interpreted")
    _add_cache_flags(sc_p)

    cmp_p = sub.add_parser(
        "compare",
        help="run several compositions on one workload, side by side",
    )
    cmp_p.add_argument(
        "pairs", nargs="+", metavar="INTRA-INTER",
        help="compositions like naimi-martin, or 'flat:ALGO' for the "
             "original algorithm",
    )
    cmp_p.add_argument("--clusters", type=int, default=6)
    cmp_p.add_argument("--apps", type=int, default=3)
    cmp_p.add_argument("--n-cs", type=int, default=12)
    cmp_p.add_argument("--rho-over-n", type=float, default=1.0)
    cmp_p.add_argument("--platform", default="grid5000",
                       choices=("grid5000", "two-tier", "random-wan"))
    cmp_p.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    _add_cache_flags(cmp_p)

    return parser


def _require_algorithms(*names: str) -> None:
    """Exit with the registered-algorithm list when a name is unknown.

    Without this, an unregistered name only surfaces as a registry
    ``KeyError`` from deep inside the runner."""
    known = available_algorithms()
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown algorithm {name!r}; registered algorithms: "
                + ", ".join(sorted(known))
            )


def _cmd_run(args) -> int:
    # Flat systems only use --intra; every other system composes both.
    if args.system == "flat":
        _require_algorithms(args.intra)
    else:
        _require_algorithms(args.intra, args.inter)
    n_apps = args.clusters * args.apps
    config = ExperimentConfig(
        system=args.system,
        intra=args.intra,
        inter=args.inter,
        n_clusters=args.clusters,
        apps_per_cluster=args.apps,
        n_cs=args.n_cs,
        rho=args.rho_over_n * n_apps,
        alpha_ms=args.alpha_ms,
        platform=args.platform,
        seed=args.seed,
        jitter=args.jitter,
        backend=args.backend,
        queue=args.queue,
        horizon=args.horizon or args.parallel_clusters > 1,
        parallel_clusters=args.parallel_clusters,
        # The multilevel hierarchy is built from the --intra/--inter
        # flags like every other system (this used to hard-code
        # ("naimi", "naimi"), silently ignoring both flags).
        algorithms=(args.intra, args.inter) if args.system == "multilevel" else (),
        hierarchy=tuple(range(args.clusters)) if args.system == "multilevel" else None,
    )
    cache = _cache_from_args(args)
    result = run_experiment(config, cache=cache)
    _print_cache_stats(cache)
    if args.json:
        from .export import results_to_json

        print(results_to_json([result]))
        return 0
    print(f"system            : {result.name}")
    print(f"workload          : {config.describe()}")
    print(f"critical sections : {result.cs_count}")
    print(f"obtaining time    : {result.obtaining}")
    print(f"messages          : total={result.total_messages} "
          f"inter-cluster={result.inter_cluster_messages} "
          f"({result.inter_messages_per_cs:.2f}/CS)")
    print(f"simulated time    : {result.sim_time_ms:.1f} ms")
    return 0


def _cmd_figure(args) -> int:
    scale: FigureScale = PAPER_SCALE if args.full else QUICK_SCALE
    cache = _cache_from_args(args)
    data = ALL_FIGURES[args.figure](scale, cache=cache)
    _print_cache_stats(cache)
    if args.format == "csv":
        from .export import figure_to_csv

        text = figure_to_csv(data)
    elif args.format == "json":
        from .export import figure_to_json

        text = figure_to_json(data)
    else:
        text = data.to_table()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.figure} ({args.format}) to {args.out}")
    else:
        print(text)
    return 0


def _cmd_algorithms(_args) -> int:
    rows = [
        (info.name, "token" if info.token_based else "permission",
         info.topology, info.messages_per_cs, info.paper_section)
        for info in sorted(available_algorithms().values(), key=lambda i: i.name)
    ]
    print(format_table(
        ["name", "family", "topology", "msgs/CS", "paper"], rows
    ))
    return 0


def _cmd_latency(_args) -> int:
    print("Grid'5000 average RTT latencies in ms (paper Figure 3):")
    print(format_matrix(GRID5000_SITES, GRID5000_RTT_MS))
    return 0


def _cmd_scalability(args) -> int:
    cache = _cache_from_args(args)
    study = scalability_study(
        algorithm=args.algorithm,
        cluster_counts=args.clusters,
        apps_per_cluster=args.apps,
        backend=args.backend,
        cache=cache,
    )
    rows = []
    for label, points in study.items():
        for p in points:
            rows.append((
                label, p.n_clusters, p.n_apps,
                p.inter_messages_per_cs, p.total_messages_per_cs,
                p.bytes_per_cs, p.obtaining_mean_ms,
            ))
    print(format_table(
        ["deployment", "clusters", "N", "interMsg/CS", "msg/CS",
         "bytes/CS", "obtain(ms)"], rows,
    ))
    return 0


def _cmd_reproduce(args) -> int:
    from .suites import reproduce_all

    scale = PAPER_SCALE if args.full else QUICK_SCALE
    cache = _cache_from_args(args)
    results = reproduce_all(
        args.out_dir, scale=scale, figures=args.figures, cache=cache
    )
    _print_cache_stats(cache)
    for figure_id, data in results.items():
        print(data.to_table())
        print()
    print(f"wrote {len(results)} figure(s) (txt/csv/json) to {args.out_dir}")
    return 0


def _cmd_compare(args) -> int:
    from .runner import run_many

    cache = _cache_from_args(args)
    n_apps = args.clusters * args.apps
    base = ExperimentConfig(
        n_clusters=args.clusters,
        apps_per_cluster=args.apps,
        n_cs=args.n_cs,
        rho=args.rho_over_n * n_apps,
        platform=args.platform,
    )
    rows = []
    for pair in args.pairs:
        if pair.startswith("flat:"):
            cfg = base.with_(system="flat", intra=pair.split(":", 1)[1])
        else:
            try:
                intra, inter = pair.split("-", 1)
            except ValueError:
                raise SystemExit(
                    f"bad composition {pair!r}: expected INTRA-INTER "
                    "or flat:ALGO"
                )
            cfg = base.with_(intra=intra, inter=inter)
        agg = run_many(cfg, seeds=tuple(args.seeds), cache=cache)
        rows.append((
            agg.name,
            agg.obtaining.mean,
            agg.obtaining.std,
            agg.obtaining.relative_std,
            agg.inter_messages_per_cs,
            agg.messages_per_cs,
        ))
    print(f"workload: {args.clusters}x{args.apps} apps on {args.platform}, "
          f"rho/N={args.rho_over_n:g}, {args.n_cs} CS/process, "
          f"seeds {args.seeds}")
    print(format_table(
        ["system", "obtain (ms)", "std", "sigma_r", "inter msg/CS", "msg/CS"],
        rows,
    ))
    _print_cache_stats(cache)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "figure": _cmd_figure,
    "reproduce": _cmd_reproduce,
    "compare": _cmd_compare,
    "algorithms": _cmd_algorithms,
    "latency": _cmd_latency,
    "scalability": _cmd_scalability,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
