"""Cluster-parallel horizon execution (opt-in multi-core mode).

``ExperimentConfig.parallel_clusters = k`` farms whole conservative
windows to ``k`` dedicated worker processes.  Each worker builds the
*complete* world from the config — kernel, platform, mutex system —
which is cheap, deterministic, and sidesteps any pickling of live
object graphs; it then deploys application processes **only for the
clusters it owns** (round-robin assignment), so every event executes in
exactly one process.  Cross-cluster sends are captured by the
:meth:`~repro.net.network.Network.set_cluster_partition` hook with
their latency already sampled (the sender's draw — identical to the
serial run's, since parallel eligibility requires jitter-free models)
and exchanged at window barriers; conservative lookahead guarantees a
captured delivery is never due before the receiving worker's barrier.

Exactness contract
------------------
Event *timestamps* are identical to the serial run — both executions
realise the same deterministic distributed computation — so critical
section records (and therefore obtaining times, CS counts and the
safety invariant) are exact.  Two documented deviations:

* the event *interleaving* across clusters is not the serial total
  order, which is why parallel mode refuses any observed run
  (``obs != "off"``; digests attach trace subscribers and therefore
  keep the serial path — that is how the golden digests stay
  bit-identical under ``parallel_clusters``);
* in the run's final window, workers drain to the window cut rather
  than halting at the instant the last CS completes, so message
  counters may include a bounded post-completion tail (at most one
  lookahead window of protocol traffic);
* per-worker obtaining summaries merge through
  :func:`~repro.metrics.analysis.pooled`, whose moments (count, mean,
  std, min, max) are exact but whose percentiles are count-weighted
  approximations — the same caveat every pooled multi-seed aggregate
  in this repo already carries.

Safety checking moves to the parent: workers record every application
CS interval and the parent verifies global pairwise exclusion over the
merged, time-sorted intervals — the same invariant the serial
:class:`~repro.verify.safety.MutualExclusionChecker` enforces online.
"""

from __future__ import annotations

import logging
from math import nextafter
from multiprocessing import get_context
from typing import Dict, List, Optional, Tuple

from ..errors import LivenessViolation, SafetyViolation
from ..metrics.analysis import pooled
from ..metrics.collector import BoundedMetricsCollector, MetricsCollector
from ..net.network import Network
from ..net.topology import LARGE_GRID_NODES
from ..sim.horizon import HorizonScheduler, derive_plan
from ..sim.kernel import Simulator
from ..workload.application import ApplicationProcess
from ..workload.behavior import beta_for_rho
from .config import ExperimentConfig

__all__ = ["try_parallel_experiment", "parallel_refusal"]

logger = logging.getLogger(__name__)


def parallel_refusal(config: ExperimentConfig) -> Optional[str]:
    """Why this config cannot run cluster-parallel, or ``None``.

    Everything here is decidable from the config alone (the plan
    derivation — which additionally requires a ``min_delay``-capable
    latency model and a positive lookahead — runs afterwards and can
    still fall back)."""
    if config.parallel_clusters < 2:
        return "parallel_clusters < 2"
    if config.obs != "off":
        return "observability attached (event interleaving is observable)"
    if config.tie_seed is not None:
        return "tie-seed salt active"
    if config.fifo:
        return "per-flow FIFO enabled"
    if config.jitter > 0.0:
        return "latency jitter enabled (no conservative lookahead)"
    if config.system == "adaptive":
        return "adaptive system rewires its inter algorithm mid-run"
    if config.n_clusters < 2:
        return "fewer than two clusters"
    return None


def try_parallel_experiment(config: ExperimentConfig):
    """Run ``config`` cluster-parallel, or return ``None`` to fall back.

    Returns a fully merged
    :class:`~repro.experiments.runner.ExperimentResult` on success.
    One ``logger.info`` line explains every fallback, mirroring the
    horizon scheduler's serial refusals."""
    from .runner import build_platform  # runtime import: no cycle

    reason = parallel_refusal(config)
    if reason is None:
        topology, latency = build_platform(config)
        plan = derive_plan(latency, topology)
        if plan is None:
            reason = "no conservative lookahead for this platform"
    if reason is not None:
        logger.info(
            "cluster-parallel execution refused (%s): running serial",
            reason,
        )
        return None
    # Deliberately not clamped to os.cpu_count(): oversubscribed workers
    # are correct (merely not faster), and sizing the fleet is the
    # caller's call — EXPERIMENTS.md documents cpu_count as the guide.
    n_workers = min(config.parallel_clusters, config.n_clusters)
    if n_workers < 2:
        logger.info(
            "cluster-parallel execution refused (only %d worker slot): "
            "running serial", n_workers,
        )
        return None
    return _run_parallel(config, plan.lookahead, n_workers)


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
class _IntervalCollector:
    """Collector shim recording each CS interval for the parent's merged
    safety check, then delegating to the real collector."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.intervals: List[Tuple[float, float]] = []

    def add(self, record) -> None:
        self.intervals.append((record.granted_at, record.released_at))
        self.inner.add(record)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _worker_main(conn, config: ExperimentConfig, worker_id: int,
                 n_workers: int) -> None:
    """One resident worker: builds the world, serves window commands.

    Runs under the fork start method, so the config arrives by memory
    inheritance; only barrier traffic crosses the pipe.
    """
    from .runner import build_platform, build_system

    owned = frozenset(
        c for c in range(config.n_clusters) if c % n_workers == worker_id
    )
    sim = Simulator(seed=config.seed, queue=config.queue)
    topology, latency = build_platform(config)
    if config.batch_jitter:
        latency.enable_batched_jitter()
    if config.backend == "compiled":
        from ..compile import CompiledNetwork

        net: Network = CompiledNetwork(
            sim, topology, latency, batch=config.batch_delivery
        )
    else:
        net = Network(sim, topology, latency, batch=config.batch_delivery)
    system = build_system(sim, net, topology, config)
    outbox: List[Tuple[float, object]] = []
    net.set_cluster_partition(owned, outbox)

    inner = (
        BoundedMetricsCollector(seed=config.seed)
        if config.n_apps >= LARGE_GRID_NODES else MetricsCollector()
    )
    collector = _IntervalCollector(inner)
    done = {"count": 0, "times": []}

    def app_done(_app) -> None:
        # Unlike the serial runner this must NOT stop the kernel: the
        # worker keeps serving protocol traffic (token forwarding for
        # other clusters' requests) until the parent ends the run.
        done["count"] += 1
        done["times"].append(sim._now)

    beta = beta_for_rho(config.rho, config.alpha_ms)
    apps = []
    cluster_of = topology._cluster_of
    for node in system.app_nodes:
        if cluster_of[node] not in owned:
            continue
        apps.append(ApplicationProcess(
            peer=system.peer_for(node),
            cluster=cluster_of[node],
            alpha_ms=config.alpha_ms,
            beta_ms=beta,
            n_cs=config.n_cs,
            collector=collector,
            distribution=config.distribution,
            on_done=app_done,
        ))
    if config.backend == "compiled":
        from ..compile import compile_system

        compile_system(net, system, apps)
    plan = derive_plan(latency, topology)
    scheduler = HorizonScheduler(sim, net, plan)

    while True:
        cmd = conn.recv()
        op = cmd[0]
        if op == "inject":
            for due, msg in cmd[1]:
                net.inject_delivery(msg, due)
            head = sim._peek()
            conn.send(("ready",
                       None if head is None else head.time,
                       done["count"]))
        elif op == "window":
            scheduler.drain_before(cmd[1])
            # Route this window's captured sends by destination worker.
            routed: Dict[int, list] = {}
            for due, msg in outbox:
                w = cluster_of[msg.dst] % n_workers
                routed.setdefault(w, []).append((due, msg))
            outbox.clear()
            conn.send(("drained", routed, done["count"]))
        elif op == "finish":
            stats = net.stats
            conn.send(("result", {
                "name": system.name,
                "inter_name": getattr(system, "inter_name", ""),
                "obtaining": collector.obtaining_stats(),
                "cs_count": collector.cs_count,
                "by_cluster": collector.by_cluster(),
                "intervals": collector.intervals,
                "total": stats.total,
                "inter_cluster": stats.inter_cluster,
                "intra_cluster": stats.intra_cluster,
                "bytes_total": stats.bytes_total,
                "bytes_inter_cluster": stats.bytes_inter_cluster,
                "done_times": done["times"],
                "unfinished": [a.name for a in apps if not a.done],
            }))
        elif op == "exit":
            conn.close()
            return


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
def _run_parallel(config: ExperimentConfig, lookahead: float,
                  n_workers: int):
    from .runner import ExperimentResult

    ctx = get_context("fork")
    pipes, procs = [], []
    for w in range(n_workers):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, config, w, n_workers),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)

    deadline = (
        config.deadline_ms
        if config.deadline_ms is not None
        else config.default_deadline()
    )
    limit = nextafter(deadline, float("inf"))
    n_apps = config.n_apps
    pending_inject: List[List] = [[] for _ in range(n_workers)]
    try:
        while True:
            for conn, batch in zip(pipes, pending_inject):
                conn.send(("inject", batch))
            pending_inject = [[] for _ in range(n_workers)]
            heads, done_total = [], 0
            for conn in pipes:
                _, head, done_count = conn.recv()
                if head is not None:
                    heads.append(head)
                done_total += done_count
            if done_total >= n_apps:
                break
            if not heads:
                raise LivenessViolation(
                    f"{config.describe()}: all worker calendars drained "
                    f"with {n_apps - done_total} application process(es) "
                    "unfinished (cluster-parallel run stalled)"
                )
            t0 = min(heads)
            if t0 > deadline:
                raise LivenessViolation(
                    f"{config.describe()}: {n_apps - done_total} "
                    f"application process(es) unfinished at the "
                    f"t={deadline:.0f}ms deadline (cluster-parallel run)"
                )
            cut = t0 + lookahead
            if cut > limit:
                cut = limit
            for conn in pipes:
                conn.send(("window", cut))
            for conn in pipes:
                _, routed, _ = conn.recv()
                for w, msgs in routed.items():
                    pending_inject[w].extend(msgs)
        for conn in pipes:
            conn.send(("finish",))
        results = [conn.recv()[1] for conn in pipes]
        for conn in pipes:
            conn.send(("exit",))
        for proc in procs:
            proc.join(timeout=30)
    finally:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - error-path cleanup
                proc.terminate()

    unfinished = [name for r in results for name in r["unfinished"]]
    if unfinished:  # pragma: no cover - guarded by the barrier loop
        raise LivenessViolation(
            f"{config.describe()}: {len(unfinished)} application "
            f"process(es) unfinished (first: {unfinished[:5]})"
        )
    if config.check_safety:
        _check_merged_safety(results, config)
    per_cluster: Dict[int, object] = {}
    for r in results:
        per_cluster.update(r["by_cluster"])
    done_times = [t for r in results for t in r["done_times"]]
    logger.info(
        "cluster-parallel run complete: %d workers, %d CS records",
        n_workers, sum(r["cs_count"] for r in results),
    )
    return ExperimentResult(
        config=config,
        name=results[0]["name"],
        obtaining=pooled([r["obtaining"] for r in results]),
        cs_count=sum(r["cs_count"] for r in results),
        total_messages=sum(r["total"] for r in results),
        inter_cluster_messages=sum(r["inter_cluster"] for r in results),
        intra_cluster_messages=sum(r["intra_cluster"] for r in results),
        total_bytes=sum(r["bytes_total"] for r in results),
        inter_cluster_bytes=sum(r["bytes_inter_cluster"] for r in results),
        sim_time_ms=max(done_times) if done_times else 0.0,
        per_cluster=per_cluster,
        inter_algorithm_final=results[0]["inter_name"],
        obs_report=None,
    )


def _check_merged_safety(results, config: ExperimentConfig) -> None:
    """Global pairwise exclusion over the merged CS intervals.

    The serial checker enforces "at most one application process inside
    the CS at any instant" online; here the intervals arrive per worker
    and are checked after the merge.  Boundary touches (one grant at the
    exact instant of another release) are legal, exactly as the serial
    checker treats an exit and an enter at the same timestamp."""
    intervals = [iv for r in results for iv in r["intervals"]]
    intervals.sort()
    prev_granted, prev_released = float("-inf"), float("-inf")
    for granted, released in intervals:
        if granted < prev_released:
            raise SafetyViolation(
                f"{config.describe()}: overlapping critical sections in "
                f"the merged cluster-parallel record — "
                f"[{prev_granted:.6f}, {prev_released:.6f}] overlaps "
                f"[{granted:.6f}, {released:.6f}]"
            )
        prev_granted, prev_released = granted, released
