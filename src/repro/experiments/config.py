"""Experiment configuration.

One :class:`ExperimentConfig` fully determines one simulation run (it is
hashable, so sweeps can cache runs).  Defaults reproduce the paper's
setup: the Grid'5000 platform (9 clusters), 20 application processes per
cluster, α = 10 ms, 100 critical sections per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..mutex.registry import get_algorithm

__all__ = [
    "ExperimentConfig", "SYSTEMS", "PLATFORMS", "OBS_LEVELS", "BACKENDS",
    "QUEUES",
]

SYSTEMS = ("composition", "flat", "adaptive", "multilevel")
PLATFORMS = ("grid5000", "two-tier", "random-wan")
#: Execution backends (see :mod:`repro.compile`): ``interpreted`` runs
#: the algorithms exactly as written; ``compiled`` lowers the message
#: protocol into table-driven dispatch with a fused network fast path.
#: The two are equivalent by construction — bit-identical RunDigests —
#: so the backend deliberately does **not** participate in cache keys.
BACKENDS = ("interpreted", "compiled")
#: Kernel event-queue implementations (see
#: :class:`repro.sim.kernel.Simulator`): the tuple binary ``heap`` or the
#: bucketed ``calendar`` queue for 1k+-node event populations.  Both pop
#: in the identical ``(time, seq)`` total order — digest-equal — so like
#: ``backend`` the choice does not participate in cache keys.
QUEUES = ("heap", "calendar")
#: Observability verbosity (see :mod:`repro.obs`): ``off`` attaches
#: nothing (the hot path stays bare), ``counters`` adds cheap event
#: counters, ``paths`` adds vector clocks + critical-path breakdown,
#: ``trace`` additionally keeps per-CS rows and enables Chrome trace
#: export.  Mirrored by :data:`repro.obs.OBS_LEVELS`.
OBS_LEVELS = ("off", "counters", "paths", "trace")


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete description of one simulation run."""

    # --- mutual exclusion system ---------------------------------------
    system: str = "composition"
    intra: str = "naimi"
    inter: str = "naimi"
    #: multilevel only: one algorithm per level (bottom-up) ...
    algorithms: Tuple[str, ...] = ()
    #: ... and the hierarchy spec as nested tuples of cluster indices.
    hierarchy: object = None

    # --- platform -------------------------------------------------------
    platform: str = "grid5000"
    n_clusters: int = 9
    apps_per_cluster: int = 20
    jitter: float = 0.0
    #: Draw jitter factors in blocks from the same RNG stream (faster for
    #: jittered paper-scale sweeps).  Off by default: the default mode is
    #: draw-for-draw identical run to run and digest-pinned; batched mode
    #: is deterministic but consumes the jitter stream in a different
    #: pattern (see docs/performance.md).
    batch_jitter: bool = False
    fifo: bool = False
    #: two-tier platform parameters (ignored elsewhere)
    lan_ms: float = 0.05
    wan_ms: float = 10.0

    # --- workload (paper §4.1) ------------------------------------------
    alpha_ms: float = 10.0
    rho: float = 180.0
    n_cs: int = 100
    distribution: str = "exponential"

    # --- run control ------------------------------------------------------
    seed: int = 0
    #: Perturb the kernel's same-timestamp tie-breaking (see
    #: :class:`repro.sim.kernel.Simulator`).  ``None`` keeps the default
    #: FIFO order; the schedule-race sanitizer
    #: (:mod:`repro.analysis.sanitizer`) re-runs configs under several
    #: tie seeds and fails on any observable divergence.
    tie_seed: Optional[int] = None
    check_safety: bool = True
    deadline_ms: Optional[float] = None
    #: Observability verbosity (one of :data:`OBS_LEVELS`).  ``off``
    #: keeps the run bare; any other level attaches
    #: :class:`repro.obs.ObservabilityLayer` and stores its report on
    #: ``ExperimentResult.obs_report``.  Observation never perturbs the
    #: schedule: digests are bit-identical at every level.
    obs: str = "off"
    #: Execution backend (one of :data:`BACKENDS`).  Excluded from the
    #: cache key via field metadata: a compiled run produces the same
    #: results as an interpreted one (the golden-digest equivalence
    #: matrix gates this), so both must address the same cache entry.
    backend: str = field(default="interpreted",
                         metadata={"cache_key": False})
    #: Kernel event queue (one of :data:`QUEUES`).  Equivalence-gated
    #: like ``backend`` (bit-identical pop order), so it is likewise
    #: excluded from the cache key.
    queue: str = field(default="heap", metadata={"cache_key": False})
    #: Same-instant delivery coalescing (see
    #: :class:`repro.net.network.Network`): ``None`` auto-enables above
    #: :data:`repro.net.topology.LARGE_GRID_NODES` nodes, ``True``/
    #: ``False`` force it.  Digest-identical by construction (burned
    #: kernel seqs), so excluded from the cache key like ``backend``.
    batch_delivery: Optional[bool] = field(default=None,
                                           metadata={"cache_key": False})
    #: Conservative lookahead-parallel execution (see
    #: :mod:`repro.sim.horizon`): drain the calendar in windows of the
    #: minimum inter-cluster latency instead of one global pop per
    #: event.  Exact-order by construction (bit-identical digests,
    #: pinned by the horizon equivalence matrix) and self-refusing
    #: under crashes/faults/FIFO/taps/tie-salt/jitter — so, like
    #: ``backend``, it is excluded from cache keys.
    horizon: bool = field(default=False, metadata={"cache_key": False})
    #: Opt-in multi-core horizon execution: farm each conservative
    #: window's clusters to this many worker processes
    #: (``0``/``1`` = single-threaded).  Requires ``horizon`` and an
    #: unobserved run (``obs="off"``, no trace subscribers): results are
    #: exact (merged CS records) but the event interleaving is not
    #: serially ordered, so observation refuses and falls back serial.
    #: Excluded from cache keys like ``backend``.
    parallel_clusters: int = field(default=0, metadata={"cache_key": False})
    label: str = ""

    # ------------------------------------------------------------------ #
    @property
    def n_apps(self) -> int:
        return self.n_clusters * self.apps_per_cluster

    @property
    def rho_over_n(self) -> float:
        return self.rho / self.n_apps

    @property
    def reserved_slots(self) -> int:
        """Coordinator slots reserved per cluster (flat runs reserve one
        too, so the application populations are identical)."""
        if self.system == "multilevel":
            return max(1, len(self.algorithms) - 1)
        return 1

    @property
    def nodes_per_cluster(self) -> int:
        return self.apps_per_cluster + self.reserved_slots

    def default_deadline(self) -> float:
        """A generous upper bound on completion time: all CS executions
        fully serialised plus every process's think time, times a safety
        factor.  Hitting it means a liveness bug, not a slow run."""
        serial = self.n_apps * self.n_cs * self.alpha_ms
        thinking = self.n_cs * self.rho * self.alpha_ms
        return 10.0 * (serial + thinking) + 10_000.0

    def with_(self, **changes) -> "ExperimentConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)

    def cache_key(self) -> str:
        """Canonical JSON serialization for content-addressed caching.

        Every behaviour-determining field participates (the seed
        included), keys are sorted so field order can never matter,
        nested ``hierarchy`` tuples render as JSON arrays, and floats
        use their shortest round-trip ``repr``.  Fields tagged with
        ``metadata={"cache_key": False}`` — ``backend``, ``queue`` and
        ``batch_delivery``, all equivalence-gated — are excluded so they
        can never split the key space.  ``tests/cache/test_keys.py`` pins the
        exact output: any drift between Python versions or refactors
        fails loudly instead of silently splitting (or, worse,
        aliasing) cache keys.
        """
        from ..cache.keys import canonical_json

        return canonical_json(self)

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        if self.system not in SYSTEMS:
            raise ConfigurationError(
                f"unknown system {self.system!r}; choose from {SYSTEMS}"
            )
        if self.platform not in PLATFORMS:
            raise ConfigurationError(
                f"unknown platform {self.platform!r}; choose from {PLATFORMS}"
            )
        if self.system in ("composition", "adaptive"):
            get_algorithm(self.intra)
            get_algorithm(self.inter)
        elif self.system == "flat":
            get_algorithm(self.intra)
        elif self.system == "multilevel":
            if len(self.algorithms) < 2:
                raise ConfigurationError(
                    "multilevel needs >= 2 algorithms (bottom-up)"
                )
            for name in self.algorithms:
                get_algorithm(name)
            if self.hierarchy is None:
                raise ConfigurationError("multilevel needs a hierarchy spec")
        if self.platform == "grid5000" and self.n_clusters > 9:
            raise ConfigurationError(
                "the Grid'5000 platform has at most 9 sites"
            )
        if self.n_clusters < 1 or self.apps_per_cluster < 1:
            raise ConfigurationError("need >= 1 cluster and >= 1 app per cluster")
        if self.alpha_ms <= 0 or self.rho <= 0:
            raise ConfigurationError("alpha and rho must be positive")
        if self.n_cs < 1:
            raise ConfigurationError("n_cs must be >= 1")
        if self.distribution not in ("exponential", "fixed"):
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}"
            )
        if self.obs not in OBS_LEVELS:
            raise ConfigurationError(
                f"unknown obs level {self.obs!r}; choose from {OBS_LEVELS}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.queue not in QUEUES:
            raise ConfigurationError(
                f"unknown queue {self.queue!r}; choose from {QUEUES}"
            )
        if self.parallel_clusters < 0:
            raise ConfigurationError(
                f"parallel_clusters must be >= 0, got {self.parallel_clusters}"
            )
        if self.parallel_clusters > 1 and not self.horizon:
            raise ConfigurationError(
                "parallel_clusters requires horizon=True (the conservative "
                "window machinery is what makes cluster-parallel execution "
                "sound)"
            )

    def describe(self) -> str:
        """Short human-readable run descriptor."""
        if self.label:
            return self.label
        if self.system == "flat":
            algo = f"{self.intra} (flat)"
        elif self.system == "multilevel":
            algo = "/".join(self.algorithms)
        elif self.system == "adaptive":
            algo = f"{self.intra}-adaptive"
        else:
            algo = f"{self.intra}-{self.inter}"
        return (
            f"{algo} on {self.platform} {self.n_clusters}x"
            f"{self.apps_per_cluster}, rho/N={self.rho_over_n:.2f}"
        )
