"""Exporting experiment results for downstream analysis/plotting.

Two formats:

* **JSON** — full fidelity: configuration, all summary moments,
  per-cluster breakdowns; one document per result or figure.
* **CSV** — flat rows for spreadsheet/pandas workflows; figure series
  export one row per (x, curve).

Both are plain standard-library serialisation — results are small —
and deterministic (sorted keys) so exports diff cleanly across runs.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Iterable, Union

from .figures import FigureData
from .runner import AggregateResult, ExperimentResult

__all__ = [
    "result_to_dict",
    "results_to_json",
    "results_to_csv",
    "figure_to_json",
    "figure_to_csv",
]

_RESULT_FIELDS = (
    "name",
    "cs_count",
    "total_messages",
    "inter_cluster_messages",
    "intra_cluster_messages",
    "total_bytes",
    "inter_cluster_bytes",
    "sim_time_ms",
)


def result_to_dict(result: Union[ExperimentResult, AggregateResult]) -> dict:
    """A JSON-ready dict for one run or one seed-aggregate."""
    if isinstance(result, AggregateResult):
        return {
            "name": result.name,
            "kind": "aggregate",
            "seeds": [r.config.seed for r in result.runs],
            "obtaining": dataclasses.asdict(result.obtaining),
            "obtaining_relative_std": result.obtaining.relative_std,
            "inter_messages_per_cs": result.inter_messages_per_cs,
            "messages_per_cs": result.messages_per_cs,
            "cs_count": result.cs_count,
            "runs": [result_to_dict(r) for r in result.runs],
        }
    out = {field: getattr(result, field) for field in _RESULT_FIELDS}
    out.update(
        kind="run",
        config=dataclasses.asdict(result.config),
        obtaining=dataclasses.asdict(result.obtaining),
        obtaining_relative_std=result.obtaining.relative_std,
        inter_messages_per_cs=result.inter_messages_per_cs,
        messages_per_cs=result.messages_per_cs,
        per_cluster={
            str(ci): dataclasses.asdict(stats)
            for ci, stats in result.per_cluster.items()
        },
    )
    # The hierarchy spec may be nested tuples; JSON wants lists.
    if out["config"].get("hierarchy") is not None:
        out["config"]["hierarchy"] = json.loads(
            json.dumps(out["config"]["hierarchy"])
        )
    return out


def results_to_json(
    results: Iterable[Union[ExperimentResult, AggregateResult]],
) -> str:
    """Serialise results as a JSON array."""
    return json.dumps(
        [result_to_dict(r) for r in results], indent=2, sort_keys=True
    )


def results_to_csv(results: Iterable[ExperimentResult]) -> str:
    """Flat CSV: one row per run with the paper's headline metrics."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow([
        "name", "system", "intra", "inter", "platform", "rho", "rho_over_n",
        "seed", "cs_count", "obtaining_mean_ms", "obtaining_std_ms",
        "obtaining_relative_std", "inter_messages_per_cs", "messages_per_cs",
        "sim_time_ms",
    ])
    for r in results:
        c = r.config
        writer.writerow([
            r.name, c.system, c.intra, c.inter, c.platform, c.rho,
            f"{c.rho_over_n:.6g}", c.seed, r.cs_count,
            f"{r.obtaining.mean:.6g}", f"{r.obtaining.std:.6g}",
            f"{r.obtaining.relative_std:.6g}",
            f"{r.inter_messages_per_cs:.6g}", f"{r.messages_per_cs:.6g}",
            f"{r.sim_time_ms:.6g}",
        ])
    return buf.getvalue()


def figure_to_json(data: FigureData) -> str:
    """Serialise one reproduced figure (axes + all series)."""
    return json.dumps(
        {
            "figure_id": data.figure_id,
            "title": data.title,
            "x_label": data.x_label,
            "y_label": data.y_label,
            "xs": list(data.xs),
            "series": {k: list(v) for k, v in data.series.items()},
        },
        indent=2,
        sort_keys=True,
    )


def figure_to_csv(data: FigureData) -> str:
    """Long-format CSV: one row per (curve, x) point."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["figure_id", "curve", data.x_label, data.y_label])
    for label, ys in data.series.items():
        for x, y in zip(data.xs, ys):
            writer.writerow([data.figure_id, label, f"{x:.6g}", f"{y:.6g}"])
    return buf.getvalue()
