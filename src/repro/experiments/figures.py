"""Figure-series generators: one function per figure of the paper.

Figures 4(a), 4(b), 5(a) and 5(b) all read off the same experiment
matrix — {Naimi-Naimi, Naimi-Martin, Naimi-Suzuki, original Naimi} × a
ρ sweep — so the sweep is computed once per scale and cached.  Figure 6
uses its own sweep with the *intra* algorithm varying instead.

Every generator returns a :class:`FigureData` whose ``series`` map the
paper's curve labels to y-values over the shared ρ/N axis.  The
benchmark harness prints them and asserts the qualitative shapes listed
in DESIGN.md §5.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple

from ..workload.behavior import PAPER_RHO_OVER_N_GRID
from .config import ExperimentConfig
from .runner import AggregateResult, run_many

__all__ = [
    "FigureScale",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "scale_from_env",
    "FigureData",
    "inter_sweep",
    "intra_sweep",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "ALL_FIGURES",
]


@dataclass(frozen=True)
class FigureScale:
    """Size of the experiment matrix behind the figures.

    ``PAPER_SCALE`` is the paper's setup (9×20 processes, 100 CS each,
    10 repetitions); ``QUICK_SCALE`` keeps the same 9-site latency
    structure at a fraction of the cost for CI-sized runs.
    """

    apps_per_cluster: int
    n_cs: int
    seeds: Tuple[int, ...]
    rho_over_n: Tuple[float, ...] = PAPER_RHO_OVER_N_GRID
    n_clusters: int = 9

    @property
    def n_apps(self) -> int:
        return self.n_clusters * self.apps_per_cluster


QUICK_SCALE = FigureScale(apps_per_cluster=4, n_cs=12, seeds=(0, 1))
PAPER_SCALE = FigureScale(
    apps_per_cluster=20, n_cs=100, seeds=tuple(range(10))
)


def scale_from_env() -> FigureScale:
    """``PAPER_SCALE`` when ``REPRO_FULL=1`` is set, else ``QUICK_SCALE``."""
    return PAPER_SCALE if os.environ.get("REPRO_FULL") == "1" else QUICK_SCALE


@dataclass(frozen=True)
class FigureData:
    """One reproduced figure: labelled series over the ρ/N axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    xs: Tuple[float, ...]
    series: Dict[str, Tuple[float, ...]]

    def to_table(self) -> str:
        from ..metrics.report import format_series_table

        return (
            f"{self.figure_id}: {self.title}\n"
            f"(y = {self.y_label})\n"
            + format_series_table(self.x_label, list(self.xs), dict(self.series))
        )


# --------------------------------------------------------------------- #
# sweeps (cached per scale)
# --------------------------------------------------------------------- #
SweepKey = Tuple[str, float]  # (curve label, rho_over_n)
Sweep = Dict[SweepKey, AggregateResult]


def _base_config(scale: FigureScale) -> ExperimentConfig:
    return ExperimentConfig(
        n_clusters=scale.n_clusters,
        apps_per_cluster=scale.apps_per_cluster,
        n_cs=scale.n_cs,
    )


@lru_cache(maxsize=None)
def inter_sweep(scale: FigureScale) -> Sweep:
    """The Fig 4/5 matrix: intra fixed to Naimi, inter ∈ {Naimi, Martin,
    Suzuki}, plus the original (flat) Naimi baseline."""
    base = _base_config(scale)
    out: Sweep = {}
    for x in scale.rho_over_n:
        rho = x * scale.n_apps
        for inter in ("naimi", "martin", "suzuki"):
            cfg = base.with_(intra="naimi", inter=inter, rho=rho)
            out[(f"naimi-{inter}", x)] = run_many(cfg, scale.seeds)
        flat = base.with_(system="flat", intra="naimi", rho=rho)
        out[("naimi (flat)", x)] = run_many(flat, scale.seeds)
    return out


@lru_cache(maxsize=None)
def intra_sweep(scale: FigureScale) -> Sweep:
    """The Fig 6 matrix: inter fixed to Naimi, intra ∈ {Naimi, Martin,
    Suzuki}."""
    base = _base_config(scale)
    out: Sweep = {}
    for x in scale.rho_over_n:
        rho = x * scale.n_apps
        for intra in ("naimi", "martin", "suzuki"):
            cfg = base.with_(intra=intra, inter="naimi", rho=rho)
            out[(f"{intra}-naimi", x)] = run_many(cfg, scale.seeds)
    return out


def _extract(
    sweep: Sweep,
    labels: Sequence[str],
    xs: Sequence[float],
    metric,
) -> Dict[str, Tuple[float, ...]]:
    return {
        label: tuple(metric(sweep[(label, x)]) for x in xs)
        for label in labels
    }


_INTER_LABELS = ("naimi-naimi", "naimi-martin", "naimi-suzuki", "naimi (flat)")
_INTRA_LABELS = ("naimi-naimi", "martin-naimi", "suzuki-naimi")


# --------------------------------------------------------------------- #
# figure generators
# --------------------------------------------------------------------- #
def fig4a(scale: FigureScale) -> FigureData:
    """Fig 4(a): obtaining time of application processes vs ρ."""
    sweep = inter_sweep(scale)
    return FigureData(
        "fig4a",
        "Composition evaluation: obtaining time",
        "rho/N",
        "mean obtaining time (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.mean),
    )


def fig4b(scale: FigureScale) -> FigureData:
    """Fig 4(b): inter-cluster sent messages per CS vs ρ."""
    sweep = inter_sweep(scale)
    return FigureData(
        "fig4b",
        "Composition evaluation: inter-cluster sent messages",
        "rho/N",
        "inter-cluster messages per CS",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.inter_messages_per_cs),
    )


def fig5a(scale: FigureScale) -> FigureData:
    """Fig 5(a): standard deviation of the obtaining time vs ρ."""
    sweep = inter_sweep(scale)
    return FigureData(
        "fig5a",
        "Obtaining time standard deviation",
        "rho/N",
        "obtaining time std (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.std),
    )


def fig5b(scale: FigureScale) -> FigureData:
    """Fig 5(b): relative deviation σ_r = σ/mean vs ρ."""
    sweep = inter_sweep(scale)
    return FigureData(
        "fig5b",
        "Obtaining time relative deviation",
        "rho/N",
        "sigma_r (std / mean)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.relative_std),
    )


def fig6a(scale: FigureScale) -> FigureData:
    """Fig 6(a): obtaining time vs ρ for the intra algorithm choice."""
    sweep = intra_sweep(scale)
    return FigureData(
        "fig6a",
        "Intra algorithm choice: obtaining time",
        "rho/N",
        "mean obtaining time (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTRA_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.mean),
    )


def fig6b(scale: FigureScale) -> FigureData:
    """Fig 6(b): obtaining time std vs ρ for the intra algorithm choice
    (the paper's "regularity" argument for Naimi intra)."""
    sweep = intra_sweep(scale)
    return FigureData(
        "fig6b",
        "Intra algorithm choice: obtaining time standard deviation",
        "rho/N",
        "obtaining time std (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTRA_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.std),
    )


ALL_FIGURES = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
}
