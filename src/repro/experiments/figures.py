"""Figure-series generators: one function per figure of the paper.

Figures 4(a), 4(b), 5(a) and 5(b) all read off the same experiment
matrix — {Naimi-Naimi, Naimi-Martin, Naimi-Suzuki, original Naimi} × a
ρ sweep — so the sweep is computed once per scale and cached.  Figure 6
uses its own sweep with the *intra* algorithm varying instead.

Every generator returns a :class:`FigureData` whose ``series`` map the
paper's curve labels to y-values over the shared ρ/N axis.  The
benchmark harness prints them and asserts the qualitative shapes listed
in DESIGN.md §5.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.store import CacheStats, ExperimentCache, resolve_cache
from ..metrics.analysis import pooled
from ..workload.behavior import PAPER_RHO_OVER_N_GRID
from .config import ExperimentConfig
from .runner import AggregateResult

__all__ = [
    "FigureScale",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "scale_from_env",
    "FigureData",
    "inter_sweep",
    "intra_sweep",
    "clear_sweep_memo",
    "last_sweep_cache_stats",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "ALL_FIGURES",
]


@dataclass(frozen=True)
class FigureScale:
    """Size of the experiment matrix behind the figures.

    ``PAPER_SCALE`` is the paper's setup (9×20 processes, 100 CS each,
    10 repetitions); ``QUICK_SCALE`` keeps the same 9-site latency
    structure at a fraction of the cost for CI-sized runs.
    """

    apps_per_cluster: int
    n_cs: int
    seeds: Tuple[int, ...]
    rho_over_n: Tuple[float, ...] = PAPER_RHO_OVER_N_GRID
    n_clusters: int = 9

    @property
    def n_apps(self) -> int:
        return self.n_clusters * self.apps_per_cluster


QUICK_SCALE = FigureScale(apps_per_cluster=4, n_cs=12, seeds=(0, 1))
PAPER_SCALE = FigureScale(
    apps_per_cluster=20, n_cs=100, seeds=tuple(range(10))
)


def scale_from_env() -> FigureScale:
    """``PAPER_SCALE`` when ``REPRO_FULL=1`` is set, else ``QUICK_SCALE``."""
    return PAPER_SCALE if os.environ.get("REPRO_FULL") == "1" else QUICK_SCALE


@dataclass(frozen=True)
class FigureData:
    """One reproduced figure: labelled series over the ρ/N axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    xs: Tuple[float, ...]
    series: Dict[str, Tuple[float, ...]]

    def to_table(self) -> str:
        from ..metrics.report import format_series_table

        return (
            f"{self.figure_id}: {self.title}\n"
            f"(y = {self.y_label})\n"
            + format_series_table(self.x_label, list(self.xs), dict(self.series))
        )


# --------------------------------------------------------------------- #
# sweeps (memoized per scale, backed by the experiment cache)
# --------------------------------------------------------------------- #
SweepKey = Tuple[str, float]  # (curve label, rho_over_n)
Sweep = Dict[SweepKey, AggregateResult]

#: In-process memo replacing the old unbounded ``lru_cache``: the four
#: Fig 4/5 generators share one sweep per scale, but a long-lived
#: process sweeping many scales no longer pins every result set in
#: memory forever — persistence is the job of the on-disk
#: :class:`~repro.cache.ExperimentCache`, not of this dict.
_SWEEP_MEMO: "Dict[Tuple[str, FigureScale], Sweep]" = {}
_SWEEP_MEMO_MAX = 4

#: Counter snapshot of the last sweep that consulted the experiment
#: cache (for CLI/suite reporting); ``None`` when caching was off.
_LAST_CACHE_STATS: List[Optional[CacheStats]] = [None]


def clear_sweep_memo() -> None:
    """Drop the in-process sweep memo (tests and cache-smoke runs)."""
    _SWEEP_MEMO.clear()
    _LAST_CACHE_STATS[0] = None


def last_sweep_cache_stats() -> Optional[CacheStats]:
    """Experiment-cache counters of the most recent uncached-memo sweep."""
    return _LAST_CACHE_STATS[0]


def _base_config(scale: FigureScale) -> ExperimentConfig:
    return ExperimentConfig(
        n_clusters=scale.n_clusters,
        apps_per_cluster=scale.apps_per_cluster,
        n_cs=scale.n_cs,
    )


def _inter_cells(
    scale: FigureScale,
) -> List[Tuple[SweepKey, ExperimentConfig]]:
    """The Fig 4/5 cell grid (labels × rho points), unexecuted."""
    base = _base_config(scale)
    cells: List[Tuple[SweepKey, ExperimentConfig]] = []
    for x in scale.rho_over_n:
        rho = x * scale.n_apps
        for inter in ("naimi", "martin", "suzuki"):
            cells.append((
                (f"naimi-{inter}", x),
                base.with_(intra="naimi", inter=inter, rho=rho),
            ))
        cells.append((
            ("naimi (flat)", x),
            base.with_(system="flat", intra="naimi", rho=rho),
        ))
    return cells


def _intra_cells(
    scale: FigureScale,
) -> List[Tuple[SweepKey, ExperimentConfig]]:
    """The Fig 6 cell grid (labels × rho points), unexecuted."""
    base = _base_config(scale)
    cells: List[Tuple[SweepKey, ExperimentConfig]] = []
    for x in scale.rho_over_n:
        rho = x * scale.n_apps
        for intra in ("naimi", "martin", "suzuki"):
            cells.append((
                (f"{intra}-naimi", x),
                base.with_(intra=intra, inter="naimi", rho=rho),
            ))
    return cells


#: Which cell grid each figure draws from (Fig 4/5 share the inter
#: sweep, Fig 6 the intra sweep).
FIGURE_SWEEPS = {
    "fig4a": "inter",
    "fig4b": "inter",
    "fig5a": "inter",
    "fig5b": "inter",
    "fig6a": "intra",
    "fig6b": "intra",
}

_CELL_BUILDERS = {"inter": _inter_cells, "intra": _intra_cells}


def sweep_configs(kind: str, scale: FigureScale) -> List[ExperimentConfig]:
    """The exact config batch a sweep executes (cells × seeds, in the
    order :func:`_run_sweep` submits them).

    This is the farm's submission unit: distributing this list and
    collecting from the shared store reproduces the sweep results the
    figure generators read, byte for byte.
    """
    cells = _CELL_BUILDERS[kind](scale)
    return [cfg.with_(seed=seed) for _, cfg in cells for seed in scale.seeds]


def figure_configs(
    figure_id: str, scale: FigureScale
) -> List[ExperimentConfig]:
    """The config batch behind one figure (see :data:`FIGURE_SWEEPS`)."""
    return sweep_configs(FIGURE_SWEEPS[figure_id], scale)


def _run_sweep(
    kind: str,
    scale: FigureScale,
    cells: Sequence[Tuple[SweepKey, ExperimentConfig]],
    cache: "ExperimentCache | str | None",
) -> Sweep:
    """Run ``cells`` (label → config template) × seeds through the
    incremental scheduler and pool the per-cell aggregates."""
    memo_key = (kind, scale)
    memo = _SWEEP_MEMO.get(memo_key)
    if memo is not None:
        return memo
    store = resolve_cache(cache)
    configs = [
        cfg.with_(seed=seed) for _, cfg in cells for seed in scale.seeds
    ]
    from .parallel import run_configs_cached  # runtime import: no cycle

    parallel_worthwhile = len(configs) >= 4
    results = run_configs_cached(
        configs,
        cache=store,
        max_workers=None if parallel_worthwhile else 1,
        reuse_pool=True,
    )
    out: Sweep = {}
    n_seeds = len(scale.seeds)
    for c, (key, _) in enumerate(cells):
        runs = tuple(results[c * n_seeds: (c + 1) * n_seeds])
        out[key] = AggregateResult(
            name=runs[0].name,
            runs=runs,
            obtaining=pooled([r.obtaining for r in runs]),
        )
    if len(_SWEEP_MEMO) >= _SWEEP_MEMO_MAX:
        _SWEEP_MEMO.pop(next(iter(_SWEEP_MEMO)))
    _SWEEP_MEMO[memo_key] = out
    _LAST_CACHE_STATS[0] = store.stats.snapshot() if store else None
    return out


def inter_sweep(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> Sweep:
    """The Fig 4/5 matrix: intra fixed to Naimi, inter ∈ {Naimi, Martin,
    Suzuki}, plus the original (flat) Naimi baseline.

    ``cache="auto"`` consults the experiment cache when ``REPRO_CACHE``
    is set (see :func:`repro.cache.cache_from_env`); pass an
    :class:`~repro.cache.ExperimentCache` to use one explicitly or
    ``None`` to force execution."""
    return _run_sweep("inter", scale, _inter_cells(scale), cache)


def intra_sweep(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> Sweep:
    """The Fig 6 matrix: inter fixed to Naimi, intra ∈ {Naimi, Martin,
    Suzuki}."""
    return _run_sweep("intra", scale, _intra_cells(scale), cache)


def _extract(
    sweep: Sweep,
    labels: Sequence[str],
    xs: Sequence[float],
    metric,
) -> Dict[str, Tuple[float, ...]]:
    return {
        label: tuple(metric(sweep[(label, x)]) for x in xs)
        for label in labels
    }


_INTER_LABELS = ("naimi-naimi", "naimi-martin", "naimi-suzuki", "naimi (flat)")
_INTRA_LABELS = ("naimi-naimi", "martin-naimi", "suzuki-naimi")


# --------------------------------------------------------------------- #
# figure generators
# --------------------------------------------------------------------- #
def fig4a(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> FigureData:
    """Fig 4(a): obtaining time of application processes vs ρ."""
    sweep = inter_sweep(scale, cache=cache)
    return FigureData(
        "fig4a",
        "Composition evaluation: obtaining time",
        "rho/N",
        "mean obtaining time (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.mean),
    )


def fig4b(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> FigureData:
    """Fig 4(b): inter-cluster sent messages per CS vs ρ."""
    sweep = inter_sweep(scale, cache=cache)
    return FigureData(
        "fig4b",
        "Composition evaluation: inter-cluster sent messages",
        "rho/N",
        "inter-cluster messages per CS",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.inter_messages_per_cs),
    )


def fig5a(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> FigureData:
    """Fig 5(a): standard deviation of the obtaining time vs ρ."""
    sweep = inter_sweep(scale, cache=cache)
    return FigureData(
        "fig5a",
        "Obtaining time standard deviation",
        "rho/N",
        "obtaining time std (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.std),
    )


def fig5b(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> FigureData:
    """Fig 5(b): relative deviation σ_r = σ/mean vs ρ."""
    sweep = inter_sweep(scale, cache=cache)
    return FigureData(
        "fig5b",
        "Obtaining time relative deviation",
        "rho/N",
        "sigma_r (std / mean)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTER_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.relative_std),
    )


def fig6a(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> FigureData:
    """Fig 6(a): obtaining time vs ρ for the intra algorithm choice."""
    sweep = intra_sweep(scale, cache=cache)
    return FigureData(
        "fig6a",
        "Intra algorithm choice: obtaining time",
        "rho/N",
        "mean obtaining time (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTRA_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.mean),
    )


def fig6b(
    scale: FigureScale, cache: "ExperimentCache | str | None" = "auto"
) -> FigureData:
    """Fig 6(b): obtaining time std vs ρ for the intra algorithm choice
    (the paper's "regularity" argument for Naimi intra)."""
    sweep = intra_sweep(scale, cache=cache)
    return FigureData(
        "fig6b",
        "Intra algorithm choice: obtaining time standard deviation",
        "rho/N",
        "obtaining time std (ms)",
        tuple(scale.rho_over_n),
        _extract(sweep, _INTRA_LABELS, scale.rho_over_n,
                 lambda r: r.obtaining.std),
    )


ALL_FIGURES = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
}
