"""Process-parallel experiment execution.

Paper-scale sweeps (`REPRO_FULL=1`) run hundreds of independent
simulations; each is single-threaded and deterministic, so spreading
seeds (or whole configurations) over worker processes is free
parallelism: results are bit-identical to serial execution because
every run depends only on its configuration.

Uses ``concurrent.futures.ProcessPoolExecutor``; configurations and
results are plain picklable dataclasses.  Falls back to in-process
execution when ``max_workers`` is 1 (or when the platform cannot spawn
workers), so callers can use it unconditionally.

Performance notes
-----------------
* Work is submitted in *chunks* whose size is computed from the batch
  and worker counts (4 chunks per worker balances scheduling overhead
  against tail latency), instead of one ``pool.map`` over the batch.
* Submission is per-chunk futures, so results stream back as they
  complete (:func:`stream_configs_parallel`) and a worker dying
  mid-sweep (``BrokenProcessPool``) only forces the **missing** chunks
  to be redone serially — completed results are kept.
* A sweep can reuse one warm executor across many calls
  (``reuse_pool=True`` / :func:`warm_pool`), avoiding a process-spawn
  per call; runs stay bit-identical either way.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..cache.retry import with_retries
from ..cache.store import CacheStats, ExperimentCache
from ..errors import ConfigurationError
from ..metrics.analysis import pooled
from .config import ExperimentConfig
from .runner import AggregateResult, ExperimentResult, run_experiment

__all__ = [
    "run_many_parallel",
    "run_configs_parallel",
    "run_configs_cached",
    "stream_configs_parallel",
    "stream_configs_cached",
    "warm_pool",
    "shutdown_warm_pool",
    "compute_chunksize",
]

#: Errors meaning "this platform/pool cannot run the batch": fall back.
_POOL_ERRORS = (OSError, PermissionError, BrokenProcessPool)

_warm_pool: Optional[ProcessPoolExecutor] = None
_warm_workers: Optional[int] = None


def warm_pool(max_workers: Optional[int] = None) -> ProcessPoolExecutor:
    """Return the shared long-lived executor, creating it on first use.

    Reusing one warm pool across a sweep's many ``run_configs_parallel``
    calls skips a worker-process spawn (and numpy import) per call.  A
    pool created for a different explicit ``max_workers`` is replaced.
    """
    global _warm_pool, _warm_workers
    if _warm_pool is not None and (
        max_workers is None or max_workers == _warm_workers
    ):
        return _warm_pool
    shutdown_warm_pool()
    _warm_pool = ProcessPoolExecutor(max_workers=max_workers)
    _warm_workers = max_workers
    return _warm_pool


def shutdown_warm_pool() -> None:
    """Shut the shared executor down (no-op when none exists).

    Registered via :mod:`atexit`; call it explicitly after a sweep to
    release the worker processes early."""
    global _warm_pool, _warm_workers
    if _warm_pool is not None:
        _warm_pool.shutdown(wait=False, cancel_futures=True)
        _warm_pool = None
        _warm_workers = None


atexit.register(shutdown_warm_pool)


def compute_chunksize(n_items: int, workers: int) -> int:
    """Chunk size giving ~4 chunks per worker.

    Large enough to amortise pickling/dispatch on big sweeps, small
    enough that one slow chunk cannot starve the pool's tail."""
    return max(1, n_items // (max(1, workers) * 4))


def _run_chunk(configs: List[ExperimentConfig]) -> List[ExperimentResult]:
    return [run_experiment(c) for c in configs]


def _run_chunk_cached(
    configs: List[ExperimentConfig],
    spec,
    put_mask: List[bool],
) -> Tuple[List[ExperimentResult], CacheStats]:
    """Worker-side chunk executor for cached sweeps.

    Opens the shared store from its picklable spec (fingerprint
    included, so the source tree is not re-hashed per chunk), runs each
    configuration, and stores the results the parent marked as misses
    directly from this process — the puts are what makes a farm chunk
    idempotent, and the per-worker :class:`CacheStats` ride back with
    the results so the parent can :meth:`~CacheStats.merge` them into
    the totals it reports (they used to be silently dropped).
    Transient store errors retry with backoff rather than failing the
    whole chunk.
    """
    cache = spec.open()
    results: List[ExperimentResult] = []
    for config, do_put in zip(configs, put_mask):
        result = run_experiment(config)
        results.append(result)
        if do_put:
            with_retries(lambda: cache.put(config, result))
    return results, cache.stats


def _effective_workers(max_workers: Optional[int]) -> int:
    return max_workers if max_workers else (os.cpu_count() or 1)


def _submit_chunks(
    pool: ProcessPoolExecutor,
    configs: Sequence[ExperimentConfig],
    indices: Sequence[int],
    chunksize: int,
):
    """Submit ``configs[i] for i in indices`` in chunks; returns
    ``{future: [indices]}``."""
    futures = {}
    for start in range(0, len(indices), chunksize):
        idxs = list(indices[start:start + chunksize])
        fut = pool.submit(_run_chunk, [configs[i] for i in idxs])
        futures[fut] = idxs
    return futures


def stream_configs_parallel(
    configs: Sequence[ExperimentConfig],
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    reuse_pool: bool = False,
) -> Iterator[Tuple[int, ExperimentResult]]:
    """Yield ``(index, result)`` pairs as runs complete (arbitrary order).

    The streaming front door for long sweeps: progress is observable
    before the batch finishes, and a broken pool only costs the chunks
    that had not completed (redone in-process, in index order).
    ``reuse_pool=True`` runs on the shared :func:`warm_pool`.
    """
    if not configs:
        raise ConfigurationError("stream_configs_parallel needs >= 1 config")
    for config in configs:
        config.validate()
    return _stream_validated(configs, max_workers, chunksize, reuse_pool)


def _stream_validated(
    configs: Sequence[ExperimentConfig],
    max_workers: Optional[int],
    chunksize: Optional[int],
    reuse_pool: bool,
) -> Iterator[Tuple[int, ExperimentResult]]:
    if max_workers == 1 or len(configs) == 1:
        for i, config in enumerate(configs):
            yield i, run_experiment(config)
        return

    done_idx: set = set()
    results: dict = {}
    try:
        pool = warm_pool(max_workers) if reuse_pool else ProcessPoolExecutor(
            max_workers=max_workers
        )
        try:
            size = chunksize or compute_chunksize(
                len(configs), _effective_workers(max_workers)
            )
            futures = _submit_chunks(pool, configs, range(len(configs)), size)
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Deterministic processing order (by first index) so a
                # mid-batch failure always keeps the earliest results.
                for fut in sorted(finished, key=lambda f: futures[f][0]):
                    idxs = futures[fut]
                    for i, result in zip(idxs, fut.result()):
                        done_idx.add(i)
                        results[i] = result
                        yield i, result
        finally:
            if not reuse_pool:
                pool.shutdown(wait=False, cancel_futures=True)
    except _POOL_ERRORS:
        # No subprocess capability here (sandbox forbids fork), or a
        # worker died mid-batch: results already streamed are kept and
        # only the missing configurations are redone in-process.  Runs
        # are deterministic, so the redo is exact.
        if reuse_pool:
            shutdown_warm_pool()  # a broken shared pool must not linger
        for i in range(len(configs)):
            if i not in done_idx:
                yield i, run_experiment(configs[i])


def _stream_cached_exec(
    configs: Sequence[ExperimentConfig],
    put_mask: Sequence[bool],
    spec,
    stats_sink: CacheStats,
    max_workers: Optional[int],
    chunksize: Optional[int],
    reuse_pool: bool,
) -> Iterator[Tuple[int, ExperimentResult, bool]]:
    """Pool executor for cached sweeps: yields ``(index, result,
    stored_by_worker)`` triples.

    On the pool path each chunk runs via :func:`_run_chunk_cached`, so
    the worker itself stores the masked results and its stats are merged
    into ``stats_sink`` as the chunk completes.  The serial path (and
    the broken-pool redo) yields ``stored_by_worker=False`` and leaves
    storing to the caller, which already holds an open cache handle.
    """
    if max_workers == 1 or len(configs) == 1:
        for i, config in enumerate(configs):
            yield i, run_experiment(config), False
        return

    done_idx: set = set()
    try:
        pool = warm_pool(max_workers) if reuse_pool else ProcessPoolExecutor(
            max_workers=max_workers
        )
        try:
            size = chunksize or compute_chunksize(
                len(configs), _effective_workers(max_workers)
            )
            futures = {}
            for start in range(0, len(configs), size):
                idxs = list(range(start, min(start + size, len(configs))))
                fut = pool.submit(
                    _run_chunk_cached,
                    [configs[i] for i in idxs],
                    spec,
                    [put_mask[i] for i in idxs],
                )
                futures[fut] = idxs
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in sorted(finished, key=lambda f: futures[f][0]):
                    idxs = futures[fut]
                    results, worker_stats = fut.result()
                    stats_sink.merge(worker_stats)
                    for i, result in zip(idxs, results):
                        done_idx.add(i)
                        yield i, result, put_mask[i]
        finally:
            if not reuse_pool:
                pool.shutdown(wait=False, cancel_futures=True)
    except _POOL_ERRORS:
        # Same contract as _stream_validated: anything already yielded
        # is kept (its chunk's puts and stats landed with it); only the
        # missing configurations are redone here, stored by the caller.
        if reuse_pool:
            shutdown_warm_pool()
        for i in range(len(configs)):
            if i not in done_idx:
                yield i, run_experiment(configs[i]), False


def stream_configs_cached(
    configs: Sequence[ExperimentConfig],
    cache: Optional[ExperimentCache],
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    reuse_pool: bool = False,
) -> Iterator[Tuple[int, ExperimentResult]]:
    """The incremental sweep scheduler: hits stream first, misses run.

    Partitions ``configs`` against the experiment cache: hits are
    yielded immediately (in config order), then the misses — and any
    hits sampled for verification — are submitted to the (warm) pool in
    chunks and yielded as they complete.  Fresh results are stored back
    into the cache from this process, so concurrent sweeps sharing a
    cache directory converge after one racing window.  With
    ``cache=None`` this is exactly :func:`stream_configs_parallel`.
    """
    if cache is None:
        yield from stream_configs_parallel(
            configs, max_workers=max_workers, chunksize=chunksize,
            reuse_pool=reuse_pool,
        )
        return
    if not configs:
        raise ConfigurationError("stream_configs_cached needs >= 1 config")
    for config in configs:
        config.validate()

    # Partition: stream hits now, queue misses (and sampled hits, whose
    # cached value must not escape before verification confirms it).
    to_run: List[Tuple[int, Optional[ExperimentResult]]] = []
    for i, config in enumerate(configs):
        cached = cache.get(config)
        if cached is None:
            to_run.append((i, None))
        elif cache.should_verify():
            to_run.append((i, cached))
        else:
            yield i, cached
    if not to_run:
        return

    queued = [configs[i] for i, _ in to_run]
    # Misses are stored by the worker that computed them (see
    # _run_chunk_cached); verification re-runs are not — their fresh
    # result must pass record_verification before it may replace the
    # stored entry.  Worker handles never verify on their own.
    put_mask = [expected is None for _, expected in to_run]
    worker_spec = replace(cache.spec, verify_every=0)
    for j, result, stored_by_worker in _stream_cached_exec(
        queued, put_mask, worker_spec, cache.stats,
        max_workers, chunksize, reuse_pool,
    ):
        i, expected = to_run[j]
        if expected is None:
            if not stored_by_worker:
                cache.put(configs[i], result)
        elif not cache.record_verification(expected, result):
            cache.put(configs[i], result)  # replace the stale entry
        yield i, result


def run_configs_cached(
    configs: Sequence[ExperimentConfig],
    cache: Optional[ExperimentCache],
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    reuse_pool: bool = False,
) -> List[ExperimentResult]:
    """Ordered-list front door over :func:`stream_configs_cached`."""
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    for i, result in stream_configs_cached(
        configs, cache, max_workers=max_workers, chunksize=chunksize,
        reuse_pool=reuse_pool,
    ):
        results[i] = result
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_configs_parallel(
    configs: Sequence[ExperimentConfig],
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    reuse_pool: bool = False,
) -> List[ExperimentResult]:
    """Run independent configurations across worker processes.

    Results come back in the order of ``configs``.  ``max_workers=1``
    (or an executor failure, e.g. a sandbox forbidding fork) degrades
    gracefully to serial execution; a pool that breaks mid-batch only
    redoes the configurations whose results are missing.
    """
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    for i, result in stream_configs_parallel(
        configs, max_workers=max_workers, chunksize=chunksize,
        reuse_pool=reuse_pool,
    ):
        results[i] = result
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_many_parallel(
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2),
    max_workers: Optional[int] = None,
    reuse_pool: bool = False,
) -> AggregateResult:
    """Parallel counterpart of :func:`repro.experiments.run_many`:
    identical results, seeds spread over processes."""
    if not seeds:
        raise ConfigurationError("run_many_parallel needs at least one seed")
    runs = tuple(
        run_configs_parallel(
            [config.with_(seed=s) for s in seeds],
            max_workers=max_workers,
            reuse_pool=reuse_pool,
        )
    )
    return AggregateResult(
        name=runs[0].name,
        runs=runs,
        obtaining=pooled([r.obtaining for r in runs]),
    )
