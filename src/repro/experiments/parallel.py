"""Process-parallel experiment execution.

Paper-scale sweeps (`REPRO_FULL=1`) run hundreds of independent
simulations; each is single-threaded and deterministic, so spreading
seeds (or whole configurations) over worker processes is free
parallelism: results are bit-identical to serial execution because
every run depends only on its configuration.

Uses ``concurrent.futures.ProcessPoolExecutor``; configurations and
results are plain picklable dataclasses.  Falls back to in-process
execution when ``max_workers`` is 1 (or when the platform cannot spawn
workers), so callers can use it unconditionally.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..metrics.analysis import pooled
from .config import ExperimentConfig
from .runner import AggregateResult, ExperimentResult, run_experiment

__all__ = ["run_many_parallel", "run_configs_parallel"]


def run_configs_parallel(
    configs: Sequence[ExperimentConfig],
    max_workers: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run independent configurations across worker processes.

    Results come back in the order of ``configs``.  ``max_workers=1``
    (or an executor failure, e.g. a sandbox forbidding fork) degrades
    gracefully to serial execution.
    """
    if not configs:
        raise ConfigurationError("run_configs_parallel needs >= 1 config")
    for config in configs:
        config.validate()
    if max_workers == 1 or len(configs) == 1:
        return [run_experiment(c) for c in configs]
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(run_experiment, configs))
    except (OSError, PermissionError, BrokenProcessPool):
        # No subprocess capability here (sandbox forbids fork, or a
        # worker died before producing results): redo the whole batch
        # in-process.  Runs are deterministic, so a restart is safe.
        return [run_experiment(c) for c in configs]


def run_many_parallel(
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2),
    max_workers: Optional[int] = None,
) -> AggregateResult:
    """Parallel counterpart of :func:`repro.experiments.run_many`:
    identical results, seeds spread over processes."""
    if not seeds:
        raise ConfigurationError("run_many_parallel needs at least one seed")
    runs = tuple(
        run_configs_parallel(
            [config.with_(seed=s) for s in seeds], max_workers=max_workers
        )
    )
    return AggregateResult(
        name=runs[0].name,
        runs=runs,
        obtaining=pooled([r.obtaining for r in runs]),
    )
