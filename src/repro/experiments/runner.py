"""Experiment runner: configuration -> simulation -> results.

``run_experiment`` performs one complete run: build the platform,
deploy the chosen mutual exclusion system and the α/β/ρ workload, run
the kernel with the safety checker attached, and aggregate the paper's
metrics.  ``run_many`` repeats over seeds like the paper's "every
experiment was executed 10 times".
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..cache.store import ExperimentCache
from ..core.adaptive import AdaptiveComposition
from ..core.composition import Composition, FlatMutex, MutexSystem
from ..core.multilevel import MultilevelComposition
from ..errors import ConfigurationError, LivenessViolation
from ..grid.builders import random_wan_grid, two_tier_grid
from ..grid.grid5000 import grid5000_latency, grid5000_topology
from ..metrics.analysis import SummaryStats, pooled
from ..metrics.collector import BoundedMetricsCollector
from ..net.network import Network
from ..net.topology import LARGE_GRID_NODES, GridTopology
from ..obs.layer import ObservabilityLayer
from ..obs.report import ObsReport
from ..sim.kernel import Simulator
from ..verify.safety import MutualExclusionChecker
from ..workload.scenario import deploy_workload
from .config import ExperimentConfig

__all__ = [
    "ExperimentResult",
    "AggregateResult",
    "PARALLEL_SEED_THRESHOLD",
    "run_experiment",
    "run_many",
    "run_composition",
    "run_flat",
    "build_platform",
    "build_system",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics of one run (one seed)."""

    config: ExperimentConfig
    name: str
    obtaining: SummaryStats
    cs_count: int
    total_messages: int
    inter_cluster_messages: int
    intra_cluster_messages: int
    total_bytes: int
    inter_cluster_bytes: int
    sim_time_ms: float
    per_cluster: Dict[int, SummaryStats]
    inter_algorithm_final: str = ""
    #: Observability report when ``config.obs != "off"`` (see repro.obs).
    obs_report: Optional[ObsReport] = None

    @property
    def inter_messages_per_cs(self) -> float:
        """The paper's Fig 4(b) metric: inter-cluster sent messages,
        normalised per executed critical section."""
        return self.inter_cluster_messages / self.cs_count if self.cs_count else 0.0

    @property
    def messages_per_cs(self) -> float:
        return self.total_messages / self.cs_count if self.cs_count else 0.0


@dataclass(frozen=True)
class AggregateResult:
    """Metrics pooled over several seeds (the paper averages 10 runs)."""

    name: str
    runs: Tuple[ExperimentResult, ...]
    obtaining: SummaryStats

    @property
    def inter_messages_per_cs(self) -> float:
        return sum(r.inter_messages_per_cs for r in self.runs) / len(self.runs)

    @property
    def messages_per_cs(self) -> float:
        return sum(r.messages_per_cs for r in self.runs) / len(self.runs)

    @property
    def cs_count(self) -> int:
        return sum(r.cs_count for r in self.runs)


# --------------------------------------------------------------------- #
# construction helpers
# --------------------------------------------------------------------- #
def build_platform(config: ExperimentConfig):
    """(topology, latency model) for the configured platform."""
    if config.platform == "grid5000":
        topo = grid5000_topology(
            nodes_per_cluster=config.nodes_per_cluster,
            n_sites=config.n_clusters,
        )
        return topo, grid5000_latency(topo, jitter=config.jitter)
    if config.platform == "two-tier":
        return two_tier_grid(
            config.n_clusters,
            config.nodes_per_cluster,
            lan_ms=config.lan_ms,
            wan_ms=config.wan_ms,
            jitter=config.jitter,
        )
    if config.platform == "random-wan":
        return random_wan_grid(
            config.n_clusters,
            config.nodes_per_cluster,
            seed=config.seed,
            jitter=config.jitter,
        )
    raise ConfigurationError(f"unknown platform {config.platform!r}")


def build_system(
    sim: Simulator,
    net: Network,
    topology: GridTopology,
    config: ExperimentConfig,
) -> MutexSystem:
    """Instantiate the configured mutual exclusion system."""
    if config.system == "composition":
        return Composition(
            sim, net, topology, intra=config.intra, inter=config.inter
        )
    if config.system == "flat":
        return FlatMutex(sim, net, topology, algorithm=config.intra)
    if config.system == "adaptive":
        return AdaptiveComposition(
            sim, net, topology, intra=config.intra, initial_inter=config.inter
        )
    if config.system == "multilevel":
        hierarchy = _to_lists(config.hierarchy)
        return MultilevelComposition(
            sim, net, topology, hierarchy, list(config.algorithms)
        )
    raise ConfigurationError(f"unknown system {config.system!r}")


def _to_lists(spec):
    if isinstance(spec, int):
        return spec
    return [_to_lists(s) for s in spec]


def _app_cs_filter(app_nodes) -> Callable:
    """Safety-checker predicate: application CS events only.

    Coordinators enter their intra/inter CSes as part of the bridging
    automaton; the paper's mutual exclusion invariant is over the
    *application* processes.  Reads the record's field dict directly —
    this runs on every CS entry/exit of every checked run.
    """
    app_set = frozenset(app_nodes)

    def include(rec) -> bool:
        fields = rec.fields
        if fields["node"] not in app_set:
            return False
        port = fields["port"]
        return port.startswith("intra") or port == "flat"

    return include


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
def run_experiment(
    config: ExperimentConfig,
    obs_hook: Optional[Callable[[ObservabilityLayer], None]] = None,
    cache: Optional[ExperimentCache] = None,
) -> ExperimentResult:
    """Run one configured simulation to completion and aggregate.

    ``obs_hook``, if given, is called with the attached
    :class:`~repro.obs.ObservabilityLayer` after the run completes
    (before the report is frozen) — the CLI uses it to export Chrome
    traces.  It requires ``config.obs != "off"``.

    ``cache``, if given, consults a :class:`~repro.cache.ExperimentCache`
    before executing and stores the result afterwards.  Caching is
    strictly opt-in here: without an explicit cache this function always
    executes, so tier-1 correctness paths (which run with
    ``check_safety=True``) exercise the safety checker on every call.
    An ``obs_hook`` needs the live observability layer, so it bypasses
    the cache entirely.
    """
    config.validate()
    if obs_hook is not None and config.obs == "off":
        raise ConfigurationError("obs_hook requires config.obs != 'off'")
    if cache is None or obs_hook is not None:
        return _execute_experiment(config, obs_hook)
    cached = cache.get(config)
    if cached is not None:
        if cache.should_verify():
            fresh = _execute_experiment(config, None)
            if not cache.record_verification(cached, fresh):
                cache.put(config, fresh)  # replace the stale entry
            return fresh
        return cached
    result = _execute_experiment(config, None)
    cache.put(config, result)
    return result


def _execute_experiment(
    config: ExperimentConfig,
    obs_hook: Optional[Callable[[ObservabilityLayer], None]] = None,
) -> ExperimentResult:
    """The uncached run: build, simulate, check, aggregate."""
    if config.parallel_clusters > 1 and obs_hook is None:
        # Cluster-parallel horizon execution: whole windows farmed to
        # worker processes.  Returns None (after one info log) when the
        # run is ineligible — observation, jitter, too few clusters —
        # in which case the serial path below takes over.
        from .clusterpool import try_parallel_experiment

        parallel_result = try_parallel_experiment(config)
        if parallel_result is not None:
            return parallel_result
    sim = Simulator(
        seed=config.seed, tie_seed=config.tie_seed, queue=config.queue
    )
    topology, latency = build_platform(config)
    if config.batch_jitter:
        latency.enable_batched_jitter()
    if config.backend == "compiled":
        from ..compile import CompiledNetwork

        net: Network = CompiledNetwork(
            sim, topology, latency, fifo=config.fifo,
            batch=config.batch_delivery,
        )
    else:
        net = Network(
            sim, topology, latency, fifo=config.fifo,
            batch=config.batch_delivery,
        )
    system = build_system(sim, net, topology, config)

    # Attach after build_system (every handler registered, so the
    # causality layer wraps them all) and before the workload deploys.
    obs: Optional[ObservabilityLayer] = None
    if config.obs != "off":
        obs = ObservabilityLayer(
            sim,
            net,
            level=config.obs,
            app_nodes=system.app_nodes,
            coordinator_nodes=tuple(
                c.node for c in getattr(system, "coordinators", ())
            ),
        )

    safety: Optional[MutualExclusionChecker] = None
    if config.check_safety:
        safety = MutualExclusionChecker(
            sim.trace, include=_app_cs_filter(system.app_nodes)
        )

    remaining = {"count": len(system.app_nodes)}

    def app_done(_app) -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            sim.stop()

    # Above the scale-out threshold the exact collector's per-CS record
    # list (n_apps * n_cs entries) dominates peak memory; switch to the
    # bounded collector, which keeps exact streaming moments plus a
    # reservoir sample (deterministic per seed, digest-neutral).
    collector_arg = None
    if config.n_apps >= LARGE_GRID_NODES:
        collector_arg = BoundedMetricsCollector(seed=config.seed)
    apps, collector = deploy_workload(
        system,
        alpha_ms=config.alpha_ms,
        rho=config.rho,
        n_cs=config.n_cs,
        collector=collector_arg,
        distribution=config.distribution,
        on_done=app_done,
    )
    if config.backend == "compiled":
        # Promote live instances onto the table-driven fast path once
        # everything (system, observers, workload) is attached.  A no-op
        # on runs the fast path cannot serve (crash/fault/FIFO): those
        # execute the interpreted code, equivalent by construction.
        from ..compile import compile_system

        compile_system(net, system, apps)
    deadline = (
        config.deadline_ms
        if config.deadline_ms is not None
        else config.default_deadline()
    )
    horizon_engaged = False
    if config.horizon:
        from ..sim.horizon import HorizonScheduler, derive_plan

        reason = HorizonScheduler.refusal(sim, net)
        if reason is not None:
            logger.info(
                "horizon execution refused (%s): running serial", reason
            )
        else:
            plan = derive_plan(latency, topology)
            if plan is not None:
                HorizonScheduler(sim, net, plan).run(until=deadline)
                horizon_engaged = True
    if not horizon_engaged:
        sim.run(until=deadline)
    unfinished = [a.name for a in apps if not a.done]
    if unfinished:
        raise LivenessViolation(
            f"{config.describe()}: {len(unfinished)} application "
            f"process(es) unfinished at t={sim.now:.0f}ms "
            f"(first: {unfinished[:5]})"
        )
    obs_report: Optional[ObsReport] = None
    if obs is not None:
        if obs_hook is not None:
            obs_hook(obs)
        obs_report = obs.report()
        obs.detach()
    stats = net.stats
    return ExperimentResult(
        config=config,
        name=system.name,
        obtaining=collector.obtaining_stats(),
        cs_count=collector.cs_count,
        total_messages=stats.total,
        inter_cluster_messages=stats.inter_cluster,
        intra_cluster_messages=stats.intra_cluster,
        total_bytes=stats.bytes_total,
        inter_cluster_bytes=stats.bytes_inter_cluster,
        sim_time_ms=sim.now,
        per_cluster=collector.by_cluster(),
        inter_algorithm_final=getattr(system, "inter_name", ""),
        obs_report=obs_report,
    )


#: ``run_many`` routes through the warm worker pool once a seed batch
#: reaches this size; smaller jobs stay serial in-process (a pool round
#: trip costs more than two or three quick runs).
PARALLEL_SEED_THRESHOLD = 4


def run_many(
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2),
    cache: Optional[ExperimentCache] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> AggregateResult:
    """Run the same configuration over several seeds and pool the stats.

    Seed batches of :data:`PARALLEL_SEED_THRESHOLD` or more run through
    the shared warm pool (``parallel=None`` is this auto mode; pass
    ``True``/``False`` to force either way).  Results are bit-identical
    to serial execution and come back in seed order.  ``cache`` streams
    known seeds from the experiment cache and only computes the misses.
    """
    if not seeds:
        raise ConfigurationError("run_many needs at least one seed")
    configs = [config.with_(seed=s) for s in seeds]
    if parallel is None:
        parallel = len(configs) >= PARALLEL_SEED_THRESHOLD
    if parallel and len(configs) > 1 and max_workers != 1:
        from .parallel import run_configs_cached  # runtime import: no cycle

        runs = tuple(run_configs_cached(
            configs, cache=cache, max_workers=max_workers, reuse_pool=True,
        ))
    else:
        runs = tuple(run_experiment(c, cache=cache) for c in configs)
    return AggregateResult(
        name=runs[0].name,
        runs=runs,
        obtaining=pooled([r.obtaining for r in runs]),
    )


# --------------------------------------------------------------------- #
# convenience front doors (re-exported at package top level)
# --------------------------------------------------------------------- #
def run_composition(
    intra: str = "naimi", inter: str = "naimi", rho: float = 180.0, **kw
) -> ExperimentResult:
    """One composition run with paper-like defaults (quick entry point)."""
    return run_experiment(
        ExperimentConfig(system="composition", intra=intra, inter=inter,
                         rho=rho, **kw)
    )


def run_flat(algorithm: str = "naimi", rho: float = 180.0, **kw) -> ExperimentResult:
    """One flat-baseline run with paper-like defaults."""
    return run_experiment(
        ExperimentConfig(system="flat", intra=algorithm, rho=rho, **kw)
    )
