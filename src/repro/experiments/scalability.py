"""Scalability study (paper §4.7).

The paper argues the composition scales better than the original (flat)
algorithms: "Suzuki-Suzuki" needs per-CS messages proportional to the
number of clusters (inter) plus cluster size (intra) instead of the
total node count N — and flat Suzuki's token also *grows* with N.
"Naimi-Naimi" similarly beats flat Naimi by never routing a request
through a WAN cycle.

This module sweeps the grid size and reports per-CS message counts and
bytes for flat vs composed deployments, on the uniform two-tier platform
(so the trend is not confounded by the Grid'5000 matrix's heterogeneity).

Large sweeps route through :func:`repro.experiments.parallel.run_configs_cached`
— the cache-aware batch entry point (incremental re-sweeps hit the
experiment cache, misses run in the warm worker pool) — and accept the
``backend``/``queue`` execution knobs so 1k+-node points can use the
compiled fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.store import ExperimentCache
from .config import ExperimentConfig
from .parallel import run_configs_cached

__all__ = ["ScalabilityPoint", "scalability_study"]


@dataclass(frozen=True)
class ScalabilityPoint:
    """Per-CS costs of one deployment at one grid size."""

    label: str
    n_clusters: int
    apps_per_cluster: int
    inter_messages_per_cs: float
    total_messages_per_cs: float
    bytes_per_cs: float
    obtaining_mean_ms: float

    @property
    def n_apps(self) -> int:
        return self.n_clusters * self.apps_per_cluster


def scalability_study(
    algorithm: str = "suzuki",
    cluster_counts: Sequence[int] = (2, 4, 8),
    apps_per_cluster: int = 4,
    n_cs: int = 10,
    rho_over_n: float = 1.0,
    seed: int = 0,
    backend: str = "interpreted",
    queue: str = "heap",
    cache: Optional[ExperimentCache] = None,
) -> Dict[str, Tuple[ScalabilityPoint, ...]]:
    """Flat ``algorithm`` vs the ``algorithm-algorithm`` composition over
    growing cluster counts.  Returns ``{label: points}``.

    ``backend``/``queue`` select the execution fast paths (equivalence-
    gated: they change nothing but the wall clock); ``cache`` makes
    repeated sweeps incremental.
    """
    flat_label = f"{algorithm} (flat)"
    comp_label = f"{algorithm}-{algorithm}"
    labels: List[str] = []
    configs: List[ExperimentConfig] = []
    for n_clusters in cluster_counts:
        n_apps = n_clusters * apps_per_cluster
        base = ExperimentConfig(
            platform="two-tier",
            n_clusters=n_clusters,
            apps_per_cluster=apps_per_cluster,
            n_cs=n_cs,
            rho=rho_over_n * n_apps,
            seed=seed,
            backend=backend,
            queue=queue,
        )
        labels.append(flat_label)
        configs.append(base.with_(system="flat", intra=algorithm))
        labels.append(comp_label)
        configs.append(
            base.with_(system="composition", intra=algorithm, inter=algorithm)
        )
    results = run_configs_cached(configs, cache=cache)
    out: Dict[str, list] = {flat_label: [], comp_label: []}
    for label, cfg, r in zip(labels, configs, results):
        out[label].append(
            ScalabilityPoint(
                label=label,
                n_clusters=cfg.n_clusters,
                apps_per_cluster=apps_per_cluster,
                inter_messages_per_cs=r.inter_messages_per_cs,
                total_messages_per_cs=r.messages_per_cs,
                bytes_per_cs=r.total_bytes / r.cs_count,
                obtaining_mean_ms=r.obtaining.mean,
            )
        )
    return {label: tuple(points) for label, points in out.items()}
