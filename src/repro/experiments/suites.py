"""One-shot reproduction suite.

``reproduce_all(out_dir, scale)`` regenerates every figure of the
paper's evaluation at the given scale and writes, per figure, a text
table (what the benchmarks print), a long-format CSV and a JSON
document — plus a ``summary.json`` with scale metadata.  Exposed on the
CLI as ``repro-mutex reproduce``.

With a cache (``cache="auto"`` honours ``REPRO_CACHE=1``; the CLI's
``--cache`` flags pass one explicitly), every (config, seed) cell
already present in the experiment cache streams instead of re-running,
and the cache counters land in ``summary.json`` under ``"cache"``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

from ..cache.store import ExperimentCache, resolve_cache
from .figures import ALL_FIGURES, FigureData, FigureScale, scale_from_env
from .export import figure_to_csv, figure_to_json

__all__ = ["reproduce_all"]


def reproduce_all(
    out_dir: str | Path,
    scale: Optional[FigureScale] = None,
    figures: Optional[list[str]] = None,
    cache: "ExperimentCache | str | None" = "auto",
) -> Dict[str, FigureData]:
    """Regenerate figures and write their artefacts under ``out_dir``.

    Returns the generated :class:`FigureData` by figure id.  ``figures``
    restricts the set (default: all six).  ``cache`` follows the sweep
    convention: ``"auto"`` (environment-controlled), an explicit
    :class:`~repro.cache.ExperimentCache`, or ``None`` for no caching.
    """
    if scale is None:
        scale = scale_from_env()
    wanted = figures if figures is not None else sorted(ALL_FIGURES)
    unknown = [f for f in wanted if f not in ALL_FIGURES]
    if unknown:
        raise KeyError(f"unknown figures: {unknown}")
    store = resolve_cache(cache)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    results: Dict[str, FigureData] = {}
    timings: Dict[str, float] = {}
    for figure_id in wanted:
        # Wall-clock here times the *generation* of a figure for the run
        # summary; no simulated behaviour depends on it.
        started = time.perf_counter()  # repro: allow[RPR001] host-side telemetry
        data = ALL_FIGURES[figure_id](scale, cache=store)
        timings[figure_id] = time.perf_counter() - started  # repro: allow[RPR001] host-side telemetry
        results[figure_id] = data
        (out / f"{figure_id}.txt").write_text(data.to_table() + "\n")
        (out / f"{figure_id}.csv").write_text(figure_to_csv(data))
        (out / f"{figure_id}.json").write_text(figure_to_json(data) + "\n")

    summary = {
        "figures": wanted,
        "scale": {
            "n_clusters": scale.n_clusters,
            "apps_per_cluster": scale.apps_per_cluster,
            "n_apps": scale.n_apps,
            "n_cs": scale.n_cs,
            "seeds": list(scale.seeds),
            "rho_over_n": list(scale.rho_over_n),
        },
        "wall_seconds": timings,
    }
    if store is not None:
        summary["cache"] = {
            "dir": str(store.root),
            "fingerprint": store.fingerprint,
            "hits": store.stats.hits,
            "misses": store.stats.misses,
            "stores": store.stats.stores,
            "evictions": store.stats.evictions,
            "corrupt": store.stats.corrupt,
            "verified": store.stats.verified,
            "verify_failures": store.stats.verify_failures,
        }
    (out / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return results
