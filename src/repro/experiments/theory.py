"""Analytical cost models from the paper (§2 and §4.3).

For each algorithm §2 gives closed-form per-CS message counts and the
request/grant delays ``T_req`` / ``T_token``; §4.3 composes them into
the expected *obtaining time* of a coordinator at high parallelism
(no queueing):

    obtaining ≈ T_req + T_token

with, for an inter level of C coordinators and mean inter-coordinator
one-way delay T:

* Martin:        T_req ≈ (C/2)·T        T_token ≈ (C/2)·T
* Naimi-Tréhel:  T_req ≈ log2(C)·T      T_token ≈ T
* Suzuki-Kasami: T_req ≈ T              T_token ≈ T

These are *models*, not measurements: the benchmarks compare the
simulator's high-ρ numbers against them (within generous tolerance) —
catching both simulator bugs and accidental deviations from the paper's
reasoning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ConfigurationError
from ..net.latency import MatrixLatency
from ..net.topology import GridTopology

__all__ = [
    "CostModel",
    "ALGORITHM_MODELS",
    "expected_messages_per_cs",
    "mean_inter_coordinator_delay",
    "expected_obtaining_high_parallelism",
]


@dataclass(frozen=True)
class CostModel:
    """Per-CS cost model of one algorithm over ``n`` peers (§2)."""

    name: str
    #: average protocol messages per CS under contention
    messages: "callable"
    #: request-path delay in units of T
    t_req: "callable"
    #: token-grant delay in units of T
    t_token: "callable"


ALGORITHM_MODELS: Dict[str, CostModel] = {
    "martin": CostModel(
        "martin",
        messages=lambda n: float(n),            # 2(x+1), x ~ U => N avg
        t_req=lambda n: n / 2.0,
        t_token=lambda n: n / 2.0,
    ),
    "naimi": CostModel(
        "naimi",
        messages=lambda n: math.log2(n) + 1 if n > 1 else 0.0,
        t_req=lambda n: math.log2(n) if n > 1 else 0.0,
        t_token=lambda n: 1.0,
    ),
    "suzuki": CostModel(
        "suzuki",
        messages=lambda n: float(n),             # N-1 requests + token
        t_req=lambda n: 1.0,
        t_token=lambda n: 1.0,
    ),
}


def expected_messages_per_cs(algorithm: str, n_peers: int) -> float:
    """§2's average per-CS message count for ``algorithm`` over
    ``n_peers`` participants."""
    try:
        model = ALGORITHM_MODELS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"no analytical model for {algorithm!r}; "
            f"known: {sorted(ALGORITHM_MODELS)}"
        ) from None
    if n_peers < 1:
        raise ConfigurationError(f"n_peers must be >= 1, got {n_peers}")
    return model.messages(n_peers)


def mean_inter_coordinator_delay(
    topology: GridTopology, latency: MatrixLatency
) -> float:
    """Mean one-way delay T between distinct coordinators (ms), from the
    latency matrix — the T of §4.3's formulas."""
    n = topology.n_clusters
    if n < 2:
        return 0.0
    delays = [
        latency.mean_one_way(i, j)
        for i in range(n)
        for j in range(n)
        if i != j
    ]
    return float(np.mean(delays))


def expected_obtaining_high_parallelism(
    inter_algorithm: str,
    topology: GridTopology,
    latency: MatrixLatency,
) -> float:
    """§4.3's model of a coordinator's obtaining time when requests are
    sparse: ``T_req + T_token`` over the inter level.

    The application process additionally pays two LAN hops (request to
    its coordinator, intra token back), which are negligible against the
    WAN terms and therefore omitted, exactly as the paper does.
    """
    model = ALGORITHM_MODELS.get(inter_algorithm)
    if model is None:
        raise ConfigurationError(
            f"no analytical model for {inter_algorithm!r}"
        )
    c = topology.n_clusters
    t = mean_inter_coordinator_delay(topology, latency)
    return (model.t_req(c) + model.t_token(c)) * t
