"""Multi-worker experiment farm over the content-addressed store.

``repro.farm`` promotes the single-host cache + incremental scheduler
(:mod:`repro.cache`, :func:`repro.experiments.run_configs_cached`) to a
multi-worker service:

* a **shared cache tier** — the existing ``.repro-cache`` layout used
  concurrently by many worker processes/hosts over a shared filesystem,
  plus an optional thin HTTP cache proxy (:class:`HttpCache` against a
  :class:`FarmServer`) for hosts without one;
* a **work-stealing sweep distributor** — a filesystem-backed
  lease-file work queue (:mod:`repro.farm.leases`) where each worker
  claims config chunks; lease expiry + heartbeats mean a crashed or
  hung worker's chunk is re-claimed by a peer, and re-execution is
  idempotent because every result lands in the content-addressed store;
* a **thin server + CLI client** (``python -m repro.farm serve`` /
  ``submit``/``status``/``fetch``) so many concurrent users request
  sweeps and hit warm results.

See ``docs/farm.md`` for the architecture, the lease protocol and the
failure-mode matrix.
"""

from __future__ import annotations

from .client import FarmClient
from .distribute import FarmReport, run_configs_farm
from .httpcache import HttpCache, HttpCacheSpec
from .leases import JobState, JobStore, job_id_for
from .server import FarmServer
from .worker import work_loop

__all__ = [
    "FarmClient",
    "FarmReport",
    "FarmServer",
    "HttpCache",
    "HttpCacheSpec",
    "JobState",
    "JobStore",
    "job_id_for",
    "run_configs_farm",
    "work_loop",
]
