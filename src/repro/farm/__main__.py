"""Entry point for ``python -m repro.farm``."""

import sys

from .cli import main

sys.exit(main())
