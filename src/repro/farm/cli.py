"""``python -m repro.farm`` — the farm's operator surface.

Subcommands
-----------
``serve``
    Start the thin HTTP server (job intake + cache proxy) with a
    resident worker fleet over one farm directory.
``work``
    Run one worker process against a farm directory (add as many as
    the hardware allows, on any host sharing the directory).
``submit`` / ``status`` / ``fetch``
    The client side: send a figure sweep to a server, watch it, and
    download the results (pickled list + merged worker stats).
``sweep``
    Serverless convenience: distribute a figure sweep over a local
    worker fleet (:func:`repro.farm.run_configs_farm`) and print the
    figure-independent summary.
``drain``
    Ask every worker to finish its current chunk and exit (via the
    server, or by touching the farm directory's drain marker).
"""

from __future__ import annotations

import argparse
import pickle
import sys
from typing import Optional, Sequence

from ..experiments.figures import (
    ALL_FIGURES,
    PAPER_SCALE,
    QUICK_SCALE,
    figure_configs,
)
from .client import FarmClient
from .distribute import DEFAULT_CHUNK_SIZE, run_configs_farm
from .leases import JobStore
from .server import FarmServer
from .worker import work_loop, worker_id_for_process

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-farm",
        description="Multi-worker experiment farm over the shared "
                    "content-addressed store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run the farm server")
    serve_p.add_argument("--farm-dir", default=".repro-farm")
    serve_p.add_argument("--cache-dir", default=None,
                         help="store directory (default: <farm-dir>/cache)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8734)
    serve_p.add_argument("--workers", type=int, default=2,
                         help="resident worker subprocesses (0 = none; "
                              "attach external 'work' processes instead)")
    serve_p.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE)
    serve_p.add_argument("--lease-timeout", type=float, default=5.0,
                         metavar="S")
    serve_p.add_argument("--chunk-timeout", type=float, default=300.0,
                         metavar="S")
    serve_p.add_argument("--verbose", action="store_true")

    work_p = sub.add_parser("work", help="run one farm worker")
    work_p.add_argument("--farm-dir", required=True)
    work_p.add_argument("--job", default=None,
                        help="pin to one job id (default: steal from all)")
    work_p.add_argument("--tag", default="",
                        help="human-readable worker-id prefix")
    work_p.add_argument("--poll", type=float, default=0.2, metavar="S")
    work_p.add_argument("--idle-exit", type=float, default=None, metavar="S",
                        help="exit after S seconds with nothing claimable")
    work_p.add_argument("--max-chunks", type=int, default=None)
    work_p.add_argument("--exit-when-done", action="store_true",
                        help="exit once the pinned job (or all jobs) "
                             "completed")

    def add_url(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="http://127.0.0.1:8734",
                       help="farm server base URL")

    submit_p = sub.add_parser("submit", help="submit a figure sweep")
    add_url(submit_p)
    submit_p.add_argument("figure", choices=sorted(ALL_FIGURES))
    submit_p.add_argument("--full", action="store_true",
                          help="paper scale (default: quick)")

    status_p = sub.add_parser("status", help="query a job")
    add_url(status_p)
    status_p.add_argument("job_id")

    fetch_p = sub.add_parser("fetch", help="download a job's results")
    add_url(fetch_p)
    fetch_p.add_argument("job_id")
    fetch_p.add_argument("--out", required=True, metavar="FILE",
                         help="write the pickled result list here")
    fetch_p.add_argument("--deadline", type=float, default=900.0, metavar="S")

    sweep_p = sub.add_parser(
        "sweep", help="distribute a figure sweep over local workers"
    )
    sweep_p.add_argument("figure", choices=sorted(ALL_FIGURES))
    sweep_p.add_argument("--full", action="store_true")
    sweep_p.add_argument("--farm-dir", default=None,
                         help="shared directory (default: a temp dir)")
    sweep_p.add_argument("--workers", type=int, default=2)
    sweep_p.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE)
    sweep_p.add_argument("--out", default=None, metavar="FILE",
                         help="also write the pickled result list here")

    drain_p = sub.add_parser("drain", help="gracefully stop workers")
    drain_p.add_argument("--url", default=None,
                         help="drain via the server at this URL")
    drain_p.add_argument("--farm-dir", default=None,
                         help="or touch the drain marker directly")

    return parser


def _scale(args: argparse.Namespace):
    return PAPER_SCALE if args.full else QUICK_SCALE


def _cmd_serve(args: argparse.Namespace) -> int:
    server = FarmServer(
        farm_dir=args.farm_dir,
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        chunk_size=args.chunk_size,
        lease_timeout_s=args.lease_timeout,
        chunk_timeout_s=args.chunk_timeout,
        verbose=args.verbose,
    )
    # Machine-parseable first line: scripts read the bound URL from it.
    print(f"repro-farm serving on {server.url} "
          f"(farm={args.farm_dir}, workers={args.workers})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        server.shutdown()
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    summary = work_loop(
        farm_dir=args.farm_dir,
        worker_id=worker_id_for_process(args.tag) if args.tag else None,
        job_id=args.job,
        poll_s=args.poll,
        idle_exit_s=args.idle_exit,
        max_chunks=args.max_chunks,
        exit_when_done=args.exit_when_done,
    )
    print(f"worker {summary['worker']}: {summary['completed']} chunk(s) "
          f"completed, {summary['abandoned']} abandoned")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = FarmClient(args.url)
    status = client.submit(figure_configs(args.figure, _scale(args)))
    state = "complete" if status["complete"] else "running"
    print(f"job {status['job_id']}: {state}, "
          f"{status['chunks_done']}/{status['chunks_total']} chunk(s), "
          f"{status['configs_total']} config(s)")
    print(status["job_id"])
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    status = FarmClient(args.url).status(args.job_id)
    for key in ("job_id", "complete", "chunks_done", "chunks_total",
                "configs_done", "configs_total", "leases"):
        print(f"{key:>14}: {status[key]}")
    stats = status.get("stats", {})
    print(f"{'worker stats':>14}: " + ", ".join(
        f"{k}={v}" for k, v in sorted(stats.items()) if v
    ))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    results, stats = FarmClient(args.url).fetch(
        args.job_id, deadline_s=args.deadline
    )
    with open(args.out, "wb") as fh:
        pickle.dump(results, fh, protocol=pickle.HIGHEST_PROTOCOL)
    print(f"wrote {len(results)} result(s) to {args.out}")
    print(stats.format(), file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    configs = figure_configs(args.figure, _scale(args))
    report = run_configs_farm(
        configs,
        num_workers=args.workers,
        farm_dir=args.farm_dir,
        chunk_size=args.chunk_size,
    )
    print(f"job {report.job_id}: {len(report.results)} result(s) over "
          f"{report.chunks_total} chunk(s), "
          f"{report.workers_spawned} worker(s)"
          + (f", {report.respawns} respawn(s)" if report.respawns else "")
          + (" [inline]" if report.inline else ""))
    print(report.worker_stats.format(), file=sys.stderr)
    if args.out:
        with open(args.out, "wb") as fh:
            pickle.dump(report.results, fh, protocol=pickle.HIGHEST_PROTOCOL)
        print(f"wrote {len(report.results)} result(s) to {args.out}")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    if args.url:
        FarmClient(args.url).drain()
        print("drain requested via server")
    elif args.farm_dir:
        JobStore(args.farm_dir).request_drain()
        print(f"drain marker written under {args.farm_dir}")
    else:
        raise SystemExit("drain needs --url or --farm-dir")
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "work": _cmd_work,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "sweep": _cmd_sweep,
    "drain": _cmd_drain,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
