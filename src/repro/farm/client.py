"""Client for the farm server: submit / status / fetch / drain.

A thin wrapper over ``urllib`` with the same retry-with-backoff policy
as the HTTP cache tier, so a server restart mid-conversation costs a
delay, not a failed sweep.  Many concurrent clients may submit the
same sweep: job ids are content-addressed, so they all converge on one
job and one set of warm results.
"""

from __future__ import annotations

import json
import pickle
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cache.retry import with_retries
from ..cache.store import CacheStats
from ..errors import FarmError
from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult

__all__ = ["FarmClient"]

_TRANSIENT = (urllib.error.URLError, OSError)


class FarmClient:
    """Talks to one :class:`repro.farm.server.FarmServer`."""

    def __init__(
        self, url: str, timeout_s: float = 30.0, attempts: int = 4
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s
        self.attempts = attempts

    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        req = urllib.request.Request(
            f"{self.url}{path}", data=body, method=method
        )
        req.add_header("Content-Type", "application/octet-stream")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            status = exc.code
            exc.close()
            if status >= 500:
                raise urllib.error.URLError(
                    f"server returned {status} for {method} {path}"
                ) from exc
            return status, payload

    def _retrying(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        return with_retries(
            lambda: self._request(method, path, body),
            attempts=self.attempts,
            retry_on=_TRANSIENT,
        )

    @staticmethod
    def _json(status: int, body: bytes, what: str) -> Dict[str, Any]:
        if status >= 400:
            raise FarmError(f"{what}: HTTP {status}: {body[:200]!r}")
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise FarmError(f"{what}: unparseable response") from exc

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        return self._json(*self._retrying("GET", "/healthz"), "health")

    def workers(self) -> List[int]:
        payload = self._json(*self._retrying("GET", "/v1/workers"), "workers")
        return [int(p) for p in payload["pids"]]

    def submit(self, configs: Sequence[ExperimentConfig]) -> Dict[str, Any]:
        """Submit a sweep; returns the job status (possibly already
        complete — submissions are content-addressed)."""
        body = pickle.dumps(list(configs), protocol=pickle.HIGHEST_PROTOCOL)
        return self._json(
            *self._retrying("POST", "/v1/jobs", body), "submit"
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json(
            *self._retrying("GET", f"/v1/jobs/{job_id}"), f"job {job_id}"
        )

    def drain(self) -> None:
        self._json(*self._retrying("POST", "/v1/drain"), "drain")

    # ------------------------------------------------------------------ #
    def try_fetch(
        self, job_id: str
    ) -> Optional[Tuple[List[ExperimentResult], CacheStats]]:
        """One fetch attempt; ``None`` while the job is still running."""
        status, body = self._retrying("GET", f"/v1/jobs/{job_id}/results")
        if status == 202:
            return None
        if status != 200:
            raise FarmError(
                f"fetch {job_id}: HTTP {status}: {body[:200]!r}"
            )
        payload = pickle.loads(body)
        return payload["results"], CacheStats.from_dict(payload["stats"])

    def fetch(
        self,
        job_id: str,
        poll_s: float = 0.5,
        deadline_s: float = 900.0,
    ) -> Tuple[List[ExperimentResult], CacheStats]:
        """Block until the job completes and return ``(results, merged
        worker stats)``, results in submission (config) order."""
        deadline = time.monotonic() + deadline_s  # repro: allow[RPR001] host-side fetch deadline, outside any simulation
        while True:
            got = self.try_fetch(job_id)
            if got is not None:
                return got
            if time.monotonic() > deadline:  # repro: allow[RPR001] host-side fetch deadline, outside any simulation
                raise FarmError(
                    f"fetch {job_id}: deadline ({deadline_s:.0f}s) elapsed; "
                    f"last status: {self.status(job_id)}"
                )
            time.sleep(poll_s)

    def run(
        self,
        configs: Sequence[ExperimentConfig],
        poll_s: float = 0.5,
        deadline_s: float = 900.0,
    ) -> Tuple[List[ExperimentResult], CacheStats]:
        """Submit-and-fetch convenience: the remote counterpart of
        :func:`repro.experiments.run_configs_cached`."""
        job = self.submit(configs)
        return self.fetch(
            job["job_id"], poll_s=poll_s, deadline_s=deadline_s
        )
