"""The farm-side sweep distributor: one call, many workers, one store.

:func:`run_configs_farm` is the multi-process counterpart of
:func:`repro.experiments.run_configs_cached`: it creates a lease-file
job over the config batch, runs a worker fleet against it (real
subprocesses by default, in-process threads where spawning is
impossible), and collects the results from the shared
content-addressed store in config order.  Results are byte-identical
to the serial path — the workers run exactly ``run_experiment`` and the
store round-trip is the same pickle layer the single-host cache uses.

Fault tolerance is structural rather than bolted on: a SIGKILLed or
hung worker's chunk goes stale and is re-claimed by a peer
(:mod:`repro.farm.leases`), the distributor respawns dead workers while
chunks remain, and any result evicted between completion and
collection is recomputed locally.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Sequence

from ..cache.store import CacheSpec, CacheStats, ExperimentCache
from ..errors import FarmError
from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult, run_experiment
from .leases import JobState, JobStore
from .worker import work_loop, worker_id_for_process

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FarmReport",
    "run_configs_farm",
    "spawn_worker",
]

#: Default configs per chunk.  Small chunks spread better over a fleet
#: and bound the work lost to a crash; the store amortises the rest.
DEFAULT_CHUNK_SIZE = 2

#: Cap on worker respawns per farm call, so a config that crashes its
#: worker deterministically cannot respawn forever.
_MAX_RESPAWNS = 8


@dataclass
class FarmReport:
    """Outcome of one distributed sweep."""

    job_id: str
    results: List[ExperimentResult]
    #: Per-chunk worker stats merged across every completion marker —
    #: ``hits + misses`` equals the number of configs executed by
    #: completed chunks (each config is looked up exactly once per
    #: completed chunk).
    worker_stats: CacheStats
    chunks_total: int
    workers_spawned: int = 0
    respawns: int = 0
    #: Results missing from the store at collection time (evicted under
    #: cache pressure) and recomputed locally.
    recovered: int = 0
    inline: bool = False
    events: List[str] = field(default_factory=list)


def spawn_worker(
    farm_dir: "str | os.PathLike[str]",
    job_id: Optional[str] = None,
    tag: str = "",
    idle_exit_s: Optional[float] = None,
    exit_when_done: bool = True,
    poll_s: float = 0.2,
) -> "subprocess.Popen[bytes]":
    """Start one real worker subprocess against ``farm_dir``.

    The child runs ``python -m repro.farm work``; the repro package's
    source root is prepended to its ``PYTHONPATH`` so the call works
    from a source checkout without installation.
    """
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    cmd = [
        sys.executable, "-m", "repro.farm", "work",
        "--farm-dir", str(farm_dir),
        "--poll", str(poll_s),
    ]
    if job_id is not None:
        cmd += ["--job", job_id]
    if tag:
        cmd += ["--tag", tag]
    if idle_exit_s is not None:
        cmd += ["--idle-exit", str(idle_exit_s)]
    if exit_when_done:
        cmd += ["--exit-when-done"]
    return subprocess.Popen(cmd, env=env)


def _resolve_spec(
    cache: "ExperimentCache | CacheSpec | None", farm_dir: Path
) -> Any:
    if cache is None:
        return ExperimentCache(cache_dir=farm_dir / "cache").spec
    if isinstance(cache, ExperimentCache):
        return cache.spec
    if isinstance(cache, CacheSpec):
        if cache.fingerprint is None:
            # Workers must agree on the fingerprint; compute it once
            # here instead of once per worker process.
            return cache.open().spec
        return cache
    if hasattr(cache, "spec"):  # HttpCache and other duck-typed tiers
        return cache.spec
    if hasattr(cache, "open"):  # already a picklable spec (HttpCacheSpec)
        return cache
    raise FarmError(f"unsupported cache argument {cache!r}")


def _run_inline_fleet(
    farm_dir: Path, job: JobState, num_workers: int, poll_s: float
) -> None:
    """Worker loops on threads — the no-subprocess fallback.

    Simulations are CPU-bound so threads do not parallelise them, but
    the lease/claim/complete protocol is exercised identically, which
    is what the equivalence contract needs.
    """
    threads = [
        threading.Thread(
            target=work_loop,
            kwargs=dict(
                farm_dir=farm_dir,
                worker_id=worker_id_for_process(f"t{i}"),
                job_id=job.job_id,
                poll_s=poll_s,
                exit_when_done=True,
            ),
            daemon=True,
        )
        for i in range(max(1, num_workers))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def run_configs_farm(
    configs: Sequence[ExperimentConfig],
    cache: "ExperimentCache | CacheSpec | None" = None,
    num_workers: int = 2,
    farm_dir: "str | os.PathLike[str] | None" = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    lease_timeout_s: float = 5.0,
    chunk_timeout_s: float = 300.0,
    poll_s: float = 0.1,
    deadline_s: float = 900.0,
    spawn: Optional[bool] = None,
) -> FarmReport:
    """Distribute ``configs`` over a worker fleet; results in config order.

    ``cache=None`` opens a store under the farm directory (the farm
    *requires* a store — it is the result channel).  ``spawn`` picks the
    fleet flavour: ``True`` real subprocesses, ``False`` in-process
    threads, ``None`` tries subprocesses and falls back.
    """
    if not configs:
        raise FarmError("run_configs_farm needs >= 1 config")
    for config in configs:
        config.validate()

    tmp_ctx: Optional[tempfile.TemporaryDirectory] = None
    if farm_dir is None:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-farm-")
        farm_dir = tmp_ctx.name
    farm_path = Path(farm_dir)
    try:
        store = JobStore(farm_path)
        spec = _resolve_spec(cache, farm_path)
        job = store.create_job(
            configs,
            cache_spec=spec,
            chunk_size=chunk_size,
            lease_timeout_s=lease_timeout_s,
            chunk_timeout_s=chunk_timeout_s,
        )
        report = FarmReport(
            job_id=job.job_id,
            results=[],
            worker_stats=CacheStats(),
            chunks_total=len(job.chunks),
        )

        if not job.is_complete():
            if spawn is False:
                report.inline = True
                _run_inline_fleet(farm_path, job, num_workers, poll_s)
            else:
                try:
                    _run_spawned_fleet(
                        farm_path, job, num_workers, poll_s, deadline_s,
                        report,
                    )
                except OSError:
                    if spawn:  # explicitly requested subprocesses
                        raise
                    report.inline = True
                    report.events.append(
                        "subprocess spawn unavailable; inline fallback"
                    )
                    _run_inline_fleet(farm_path, job, num_workers, poll_s)
        if not job.is_complete():
            raise FarmError(
                f"job {job.job_id}: fleet exited with "
                f"{len(job.chunks) - len(job.done_markers())} chunk(s) "
                "outstanding"
            )

        report.worker_stats = job.merged_stats()
        collector = (
            spec.open() if not isinstance(cache, ExperimentCache) else cache
        )
        # Collection reads go through a snapshot-and-restore so the
        # caller-visible stats reflect the sweep, not the fetch loop.
        stats_before = collector.stats.snapshot()
        results: List[Optional[ExperimentResult]] = [None] * len(configs)
        for i, config in enumerate(configs):
            got = collector.get(config)
            if got is None:
                # Evicted between completion and collection (tiny cap or
                # a concurrent sweep): recompute locally, exactly once.
                got = run_experiment(config)
                collector.put(config, got)
                report.recovered += 1
            results[i] = got
        collector.stats.hits = stats_before.hits
        collector.stats.misses = stats_before.misses
        collector.stats.stores = stats_before.stores
        report.results = results  # type: ignore[assignment]
        return report
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()


def _run_spawned_fleet(
    farm_dir: Path,
    job: JobState,
    num_workers: int,
    poll_s: float,
    deadline_s: float,
    report: FarmReport,
) -> None:
    """Keep ``num_workers`` live workers on the job until it completes.

    Dead workers (crashed, SIGKILLed, OOM-killed) are respawned while
    chunks remain, up to a respawn cap; their abandoned leases expire
    and are re-claimed by the survivors either way.
    """
    fleet: List["subprocess.Popen[bytes]"] = []
    deadline = time.monotonic() + deadline_s  # repro: allow[RPR001] host-side farm deadline, outside any simulation
    try:
        for i in range(max(1, num_workers)):
            fleet.append(
                spawn_worker(farm_dir, job_id=job.job_id, tag=f"f{i}")
            )
            report.workers_spawned += 1
        while not job.is_complete():
            if time.monotonic() > deadline:  # repro: allow[RPR001] host-side farm deadline, outside any simulation
                raise FarmError(
                    f"job {job.job_id}: farm deadline ({deadline_s:.0f}s) "
                    f"elapsed with {len(job.done_markers())}/"
                    f"{len(job.chunks)} chunks done"
                )
            alive = [p for p in fleet if p.poll() is None]
            died = len(fleet) - len(alive)
            if died and report.respawns < _MAX_RESPAWNS:
                for _ in range(min(died, _MAX_RESPAWNS - report.respawns)):
                    alive.append(
                        spawn_worker(
                            farm_dir, job_id=job.job_id,
                            tag=f"r{report.respawns}",
                        )
                    )
                    report.respawns += 1
                    report.workers_spawned += 1
                    report.events.append("respawned a dead worker")
            elif died and not alive:
                raise FarmError(
                    f"job {job.job_id}: every worker died and the respawn "
                    f"cap ({_MAX_RESPAWNS}) is exhausted"
                )
            fleet = alive
            time.sleep(poll_s)
    finally:
        for proc in fleet:
            if proc.poll() is None:
                proc.terminate()
        for proc in fleet:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
