"""HTTP cache tier: the shared store for hosts without the shared fs.

:class:`HttpCache` speaks the same ``get``/``put``/``stats`` surface as
:class:`repro.cache.ExperimentCache`, but moves the pickled blobs over
the farm server's ``/v1/cache/<fingerprint>/<key>`` endpoints instead
of a shared directory.  The sweep scheduler and the farm workers only
duck-type that surface, so an ``HttpCache`` drops in anywhere an
``ExperimentCache`` does.

Trust model: the *client* re-checks the stored canonical key after
unpickling, exactly like the on-disk store — a confused or malicious
proxy can cost a recomputation, never a wrong result being attributed
to a config.  (The transport itself is plain HTTP carrying pickles:
run it on a trusted lab network only, as ``docs/farm.md`` spells out.)

Robustness: every request retries with exponential backoff on
transport errors; a GET that still fails degrades to a *miss* and a
PUT that still fails is dropped with a counter bump — a flaky proxy
slows a sweep down, it never fails one.
"""

from __future__ import annotations

import pickle
import urllib.error
import urllib.request
from dataclasses import dataclass, replace
from typing import Any, Optional

from ..cache.keys import code_fingerprint, config_key
from ..cache.retry import with_retries
from ..cache.store import CacheStats, canonical_dumps

__all__ = ["HttpCache", "HttpCacheSpec"]

#: Transport failures worth retrying (urllib raises URLError for
#: connection problems; OSError covers socket-level resets).
_TRANSIENT = (urllib.error.URLError, OSError)


@dataclass(frozen=True)
class HttpCacheSpec:
    """Picklable description of an HTTP cache tier (mirrors CacheSpec)."""

    url: str
    verify_every: int = 0
    fingerprint: Optional[str] = None

    def open(self) -> "HttpCache":
        return HttpCache(
            self.url,
            verify_every=self.verify_every,
            fingerprint=self.fingerprint,
        )


class HttpCache:
    """Experiment-result cache backed by a farm server's proxy endpoints."""

    def __init__(
        self,
        url: str,
        verify_every: int = 0,
        fingerprint: Optional[str] = None,
        timeout_s: float = 30.0,
        attempts: int = 4,
    ) -> None:
        if verify_every < 0:
            raise ValueError("verify_every must be >= 0")
        self.url = url.rstrip("/")
        self.verify_every = verify_every
        self.fingerprint = fingerprint or code_fingerprint()
        self.timeout_s = timeout_s
        self.attempts = attempts
        self.stats = CacheStats()
        #: PUTs dropped after exhausting retries (results stay correct —
        #: the config is simply recomputed by the next cold sweep).
        self.put_failures = 0

    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> HttpCacheSpec:
        return HttpCacheSpec(
            url=self.url,
            verify_every=self.verify_every,
            fingerprint=self.fingerprint,
        )

    def key_for(self, config: Any) -> str:
        return config_key(config)

    def _entry_url(self, key: str) -> str:
        return f"{self.url}/v1/cache/{self.fingerprint}/{key}"

    def _request(
        self, method: str, url: str, body: Optional[bytes] = None
    ) -> Optional[bytes]:
        """One HTTP round trip; ``None`` for 404 (a clean miss).

        ``HTTPError`` subclasses ``URLError``, so status handling must
        happen *before* the retry policy sees the exception: 404 is a
        miss (never retried), 5xx is re-raised as a plain ``URLError``
        (retried — the proxy is restarting), any other 4xx propagates
        as a hard error (a malformed request will not get better).
        """
        req = urllib.request.Request(url, data=body, method=method)
        req.add_header("Content-Type", "application/octet-stream")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            status = exc.code
            exc.close()
            if status == 404:
                return None
            if status >= 500:
                raise urllib.error.URLError(
                    f"proxy returned {status} for {method} {url}"
                ) from exc
            raise

    # ------------------------------------------------------------------ #
    def get(self, config: Any) -> Optional[Any]:
        key = self.key_for(config)
        try:
            blob = with_retries(
                lambda: self._request("GET", self._entry_url(key)),
                attempts=self.attempts,
                retry_on=_TRANSIENT,
            )
        except _TRANSIENT:
            self.stats.misses += 1  # unreachable proxy degrades to a miss
            return None
        if blob is None:
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            stored_key = payload["key"]
            result = payload["result"]
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if stored_key != config.cache_key():
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: Any, result: Any) -> None:
        key = self.key_for(config)
        blob = canonical_dumps({"key": config.cache_key(), "result": result})
        try:
            with_retries(
                lambda: self._request("PUT", self._entry_url(key), blob),
                attempts=self.attempts,
                retry_on=_TRANSIENT,
            )
        except (urllib.error.HTTPError, *_TRANSIENT):
            self.put_failures += 1
            return
        self.stats.stores += 1

    # ------------------------------------------------------------------ #
    # verification sampling: same contract as ExperimentCache
    # ------------------------------------------------------------------ #
    def should_verify(self) -> bool:
        if self.verify_every <= 0:
            return False
        return self.stats.hits % self.verify_every == 1 % self.verify_every

    def record_verification(self, cached: Any, fresh: Any) -> bool:
        self.stats.verified += 1
        if cached == fresh:
            return True
        self.stats.verify_failures += 1
        return False

    def with_verify(self, verify_every: int) -> "HttpCache":
        """A sibling handle with a different sampling cadence."""
        return replace(self.spec, verify_every=verify_every).open()
