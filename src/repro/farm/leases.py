"""The filesystem-backed work queue: jobs, chunks, leases, done markers.

One *job* is one sweep: an ordered list of :class:`ExperimentConfig`
split into contiguous index *chunks*.  The queue is just files on a
directory tree every worker can reach::

    <farm_dir>/
      DRAIN                      # present => workers finish and exit
      jobs/<job_id>/
        job.json                 # manifest: chunks, timeouts, cache spec
        configs.pkl              # the pickled config list
        leases/<chunk>.lease     # claim marker; mtime is the heartbeat
        done/<chunk>.json        # completion marker + per-chunk stats

Lease protocol
--------------
* **claim** — atomically create ``leases/<chunk>.lease`` with
  ``O_CREAT | O_EXCL``; exactly one creator wins.  A lease whose mtime
  is older than the job's ``lease_timeout_s`` is *stale*: a claimer
  takes it over by atomically renaming it aside (``os.replace`` — again
  exactly one winner) and then re-creating it exclusively.
* **heartbeat** — the owner refreshes the lease mtime while it works;
  the refresh first re-reads the owner field, so a worker whose lease
  was stolen (it hung past the timeout) can never extend the thief's
  lease.
* **complete** — write ``done/<chunk>.json`` (atomic tmp + replace),
  then unlink the lease *iff still owned*.  Completion markers are
  keyed by chunk, so a chunk re-executed after a crash still completes
  exactly once — the marker is replaced, never duplicated, and the
  underlying results are idempotent puts into the content-addressed
  store.

Every wall-clock read below is lease bookkeeping on the host
filesystem, entirely outside the simulation (leases never influence
simulated behaviour — results are pinned byte-identical to serial
execution by ``tests/farm/``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..cache.store import CacheSpec, CacheStats
from ..errors import FarmError

__all__ = [
    "DRAIN_MARKER",
    "JobState",
    "JobStore",
    "default_chunks",
    "job_id_for",
]

#: Name of the farm-level drain marker file.
DRAIN_MARKER = "DRAIN"

_MANIFEST_VERSION = 1


def job_id_for(configs: Sequence[Any], fingerprint: str) -> str:
    """Content-addressed job id: same sweep + same code => same job.

    Hashes the *canonical cache keys* (not the pickle bytes), so the id
    is exactly as stable as the cache addressing itself, and a
    re-submitted warm sweep lands on the already-complete job.
    """
    h = hashlib.sha256()
    h.update(fingerprint.encode("ascii"))
    for config in configs:
        h.update(b"\0")
        h.update(config.cache_key().encode("utf-8"))
    return h.hexdigest()[:16]


def default_chunks(n_configs: int, chunk_size: int) -> List[List[int]]:
    """Contiguous index chunks of at most ``chunk_size`` configs."""
    if chunk_size < 1:
        raise FarmError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(range(start, min(start + chunk_size, n_configs)))
        for start in range(0, n_configs, chunk_size)
    ]


def _write_atomic(path: Path, data: bytes, exclusive: bool = False) -> bool:
    """Write ``data`` to ``path`` via tmp + rename/link.

    With ``exclusive=True`` the publish uses ``os.link``, which fails if
    ``path`` already exists — first writer wins, racing writers of a
    content-addressed file are no-ops.  Returns whether *this* call
    published the file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        if exclusive:
            try:
                os.link(tmp_name, path)
                return True
            except FileExistsError:
                return False
        os.replace(tmp_name, path)
        tmp_name = None
        return True
    finally:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


@dataclass(frozen=True)
class _LeaseInfo:
    chunk_id: int
    worker: Optional[str]
    age_s: float


class JobState:
    """Handle on one job directory; every method is safe to call from
    any process on any host sharing the farm directory."""

    def __init__(self, job_dir: Path) -> None:
        self.job_dir = Path(job_dir)
        self.job_id = self.job_dir.name
        self._manifest: Optional[Dict[str, Any]] = None
        self._configs: Optional[List[Any]] = None

    # -- layout -------------------------------------------------------- #
    @property
    def manifest_path(self) -> Path:
        return self.job_dir / "job.json"

    @property
    def configs_path(self) -> Path:
        return self.job_dir / "configs.pkl"

    @property
    def leases_dir(self) -> Path:
        return self.job_dir / "leases"

    @property
    def done_dir(self) -> Path:
        return self.job_dir / "done"

    def _lease_path(self, chunk_id: int) -> Path:
        return self.leases_dir / f"{chunk_id}.lease"

    def _done_path(self, chunk_id: int) -> Path:
        return self.done_dir / f"{chunk_id}.json"

    # -- manifest ------------------------------------------------------ #
    @property
    def manifest(self) -> Dict[str, Any]:
        if self._manifest is None:
            try:
                self._manifest = json.loads(
                    self.manifest_path.read_text(encoding="utf-8")
                )
            except (OSError, ValueError) as exc:
                raise FarmError(
                    f"job {self.job_id}: unreadable manifest "
                    f"({self.manifest_path}): {exc}"
                ) from exc
        return self._manifest

    @property
    def chunks(self) -> List[List[int]]:
        return [list(c) for c in self.manifest["chunks"]]

    @property
    def n_configs(self) -> int:
        return int(self.manifest["n_configs"])

    @property
    def lease_timeout_s(self) -> float:
        return float(self.manifest["lease_timeout_s"])

    @property
    def chunk_timeout_s(self) -> float:
        return float(self.manifest["chunk_timeout_s"])

    def cache_spec(self) -> Any:
        """The cache every worker of this job must use (fs or HTTP)."""
        spec = self.manifest["cache"]
        if spec.get("kind", "fs") == "http":
            from .httpcache import HttpCacheSpec  # local: avoid cycle

            return HttpCacheSpec(
                url=spec["url"], fingerprint=spec.get("fingerprint")
            )
        return CacheSpec(
            cache_dir=spec["cache_dir"],
            max_bytes=int(spec["max_bytes"]),
            fingerprint=spec.get("fingerprint"),
        )

    def load_configs(self) -> List[Any]:
        if self._configs is None:
            try:
                with open(self.configs_path, "rb") as fh:
                    self._configs = pickle.load(fh)
            except (OSError, pickle.UnpicklingError) as exc:
                raise FarmError(
                    f"job {self.job_id}: unreadable config list: {exc}"
                ) from exc
        return self._configs

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    # -- claims -------------------------------------------------------- #
    def claim(self, worker_id: str) -> Optional[int]:
        """Claim the lowest-numbered available chunk, or ``None``.

        Available means: no done marker and no live lease.  A stale
        lease (no heartbeat for ``lease_timeout_s``) is taken over.
        """
        for chunk_id in range(len(self.chunks)):
            if self._done_path(chunk_id).exists():
                continue
            if self._try_claim(chunk_id, worker_id):
                return chunk_id
        return None

    def _try_claim(self, chunk_id: int, worker_id: str) -> bool:
        lease = self._lease_path(chunk_id)
        payload = json.dumps(
            {"worker": worker_id, "chunk": chunk_id}
        ).encode("utf-8")
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                mtime = lease.stat().st_mtime
            except OSError:
                return False  # released/completed under us; next scan
            age = time.time() - mtime  # repro: allow[RPR001] host-side lease staleness, outside any simulation
            if age <= self.lease_timeout_s:
                return False
            # Takeover: os.replace of the stale lease has exactly one
            # winner; the loser sees FileNotFoundError and moves on.
            aside = self.leases_dir / f".steal-{chunk_id}-{worker_id}"
            try:
                os.replace(lease, aside)
            except OSError:
                return False
            try:
                os.unlink(aside)
            except OSError:
                pass
            try:
                fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False  # a third worker slipped in; its claim wins
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        return True

    def _lease_owner(self, chunk_id: int) -> Optional[str]:
        try:
            data = json.loads(
                self._lease_path(chunk_id).read_text(encoding="utf-8")
            )
            return str(data["worker"])
        except (OSError, ValueError, KeyError):
            # Missing, or mid-write by a racing claimant: not ours.
            return None

    def heartbeat(self, chunk_id: int, worker_id: str) -> bool:
        """Refresh the lease mtime; ``False`` means the lease was lost
        (stolen after a stall, or released) and the worker should stop
        renewing — finishing the chunk anyway is harmless (idempotent
        puts) but the thief now owns completion."""
        if self._lease_owner(chunk_id) != worker_id:
            return False
        try:
            os.utime(self._lease_path(chunk_id))
            return True
        except OSError:
            return False

    def release(self, chunk_id: int, worker_id: str) -> None:
        """Drop a claim without completing (abandon / drain / timeout)."""
        if self._lease_owner(chunk_id) == worker_id:
            try:
                os.unlink(self._lease_path(chunk_id))
            except OSError:
                pass

    def complete(
        self, chunk_id: int, worker_id: str, stats: CacheStats
    ) -> None:
        """Publish the chunk's completion marker, then release the lease.

        The marker is written before the lease is dropped, so there is
        no window where a chunk is neither leased nor done.
        """
        marker = {
            "worker": worker_id,
            "chunk": chunk_id,
            "indices": self.chunks[chunk_id],
            "stats": stats.as_dict(),
        }
        _write_atomic(
            self._done_path(chunk_id),
            json.dumps(marker, sort_keys=True).encode("utf-8"),
        )
        self.release(chunk_id, worker_id)

    # -- progress ------------------------------------------------------ #
    def done_markers(self) -> Dict[int, Dict[str, Any]]:
        markers: Dict[int, Dict[str, Any]] = {}
        if not self.done_dir.is_dir():
            return markers
        for path in sorted(self.done_dir.glob("*.json")):
            try:
                markers[int(path.stem)] = json.loads(
                    path.read_text(encoding="utf-8")
                )
            except (OSError, ValueError):
                continue  # mid-replace; the next poll sees it
        return markers

    def merged_stats(self) -> CacheStats:
        """Per-chunk worker stats merged across every done marker —
        the farm-level totals the distributor and server report."""
        total = CacheStats()
        for marker in self.done_markers().values():
            total.merge(CacheStats.from_dict(marker.get("stats", {})))
        return total

    def reopen_chunks(self, chunk_ids: Iterable[int]) -> int:
        """Remove completion markers so the chunks can be re-claimed
        (used when cached results were evicted between completion and
        fetch).  Returns how many markers were removed."""
        removed = 0
        for chunk_id in chunk_ids:
            try:
                os.unlink(self._done_path(chunk_id))
                removed += 1
            except OSError:
                pass
        return removed

    def is_complete(self) -> bool:
        return all(
            self._done_path(cid).exists()
            for cid in range(len(self.chunks))
        )

    def leases(self) -> List[_LeaseInfo]:
        """Live leases (diagnostics and leak assertions in tests)."""
        out: List[_LeaseInfo] = []
        if not self.leases_dir.is_dir():
            return out
        for path in sorted(self.leases_dir.glob("*.lease")):
            try:
                age = time.time() - path.stat().st_mtime  # repro: allow[RPR001] host-side lease age, outside any simulation
            except OSError:
                continue
            out.append(
                _LeaseInfo(
                    chunk_id=int(path.stem),
                    worker=self._lease_owner(int(path.stem)),
                    age_s=age,
                )
            )
        return out

    def status(self) -> Dict[str, Any]:
        markers = self.done_markers()
        done_configs = sum(len(m.get("indices", ())) for m in markers.values())
        return {
            "job_id": self.job_id,
            "chunks_total": len(self.chunks),
            "chunks_done": len(markers),
            "configs_total": self.n_configs,
            "configs_done": done_configs,
            "leases": len(self.leases()),
            "complete": len(markers) == len(self.chunks),
            "stats": self.merged_stats().as_dict(),
        }


class JobStore:
    """The farm directory: job creation, lookup, and the drain marker."""

    def __init__(self, farm_dir: "str | os.PathLike[str]") -> None:
        self.root = Path(farm_dir)

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    def job(self, job_id: str) -> JobState:
        return JobState(self.jobs_dir / job_id)

    def list_jobs(self) -> List[JobState]:
        if not self.jobs_dir.is_dir():
            return []
        return [
            JobState(path)
            for path in sorted(self.jobs_dir.iterdir())
            if (path / "job.json").is_file()
        ]

    def create_job(
        self,
        configs: Sequence[Any],
        cache_spec: Any,
        chunk_size: int,
        lease_timeout_s: float,
        chunk_timeout_s: float,
    ) -> JobState:
        """Create (or find) the job for ``configs``.

        Content-addressed and idempotent: racing submitters of the same
        sweep converge on one job directory, and the manifest is
        published exclusively so a second submission with different
        chunking can never rewrite a job mid-run.
        """
        if not configs:
            raise FarmError("a farm job needs >= 1 config")
        fingerprint = getattr(cache_spec, "fingerprint", None) or ""
        job = self.job(job_id_for(configs, fingerprint))
        if job.exists():
            return job
        _write_atomic(
            job.configs_path,
            pickle.dumps(list(configs), protocol=pickle.HIGHEST_PROTOCOL),
            exclusive=True,
        )
        if hasattr(cache_spec, "url"):
            cache_field: Dict[str, Any] = {
                "kind": "http",
                "url": cache_spec.url,
                "fingerprint": cache_spec.fingerprint,
            }
        else:
            cache_field = {
                "kind": "fs",
                "cache_dir": cache_spec.cache_dir,
                "max_bytes": cache_spec.max_bytes,
                "fingerprint": cache_spec.fingerprint,
            }
        manifest = {
            "version": _MANIFEST_VERSION,
            "job_id": job.job_id,
            "n_configs": len(configs),
            "chunks": default_chunks(len(configs), chunk_size),
            "lease_timeout_s": lease_timeout_s,
            "chunk_timeout_s": chunk_timeout_s,
            "cache": cache_field,
        }
        _write_atomic(
            job.manifest_path,
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
            exclusive=True,
        )
        return job

    # -- drain --------------------------------------------------------- #
    @property
    def drain_path(self) -> Path:
        return self.root / DRAIN_MARKER

    def request_drain(self) -> None:
        """Ask every worker to finish its current chunk and exit."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.drain_path.touch()

    def clear_drain(self) -> None:
        try:
            os.unlink(self.drain_path)
        except OSError:
            pass

    def draining(self) -> bool:
        return self.drain_path.exists()
