"""The thin farm server: job intake, status, results, cache proxy.

``python -m repro.farm serve`` hosts three things over plain HTTP:

* **job intake** — ``POST /v1/jobs`` with a pickled config list creates
  (or finds — job ids are content-addressed) a lease-file job in the
  farm directory and returns its id;
* **a worker fleet** — the server keeps ``--workers`` worker
  subprocesses alive against the farm directory (respawning any that
  die, which is also how an operator-injected SIGKILL heals), so
  submitted jobs execute without any client-side orchestration;
* **the cache proxy** — ``GET``/``PUT /v1/cache/<fingerprint>/<key>``
  move raw store blobs for hosts without the shared filesystem
  (:class:`repro.farm.httpcache.HttpCache` is the client side).

The server is deliberately *thin*: every piece of persistent state
lives in the farm directory and the content-addressed store, so a
server restart loses nothing — jobs resume from their done markers and
warm results stay warm.

Transport is unauthenticated HTTP carrying pickles: bind it to
loopback or a trusted lab network only (see ``docs/farm.md``).

Every wall-clock read below is host-side fleet bookkeeping, outside
any simulation.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..cache.store import ExperimentCache
from ..experiments.config import ExperimentConfig
from .distribute import DEFAULT_CHUNK_SIZE, spawn_worker
from .leases import JobStore

__all__ = ["FarmServer"]

#: Reject request bodies above this size (a config list of millions of
#: entries is a mistake, not a sweep).
MAX_BODY_BYTES = 256 * 1024 * 1024

_FLEET_POLL_S = 0.5


class FarmServer:
    """One farm directory + store served over HTTP with a worker fleet."""

    def __init__(
        self,
        farm_dir: "str | Path",
        cache_dir: "str | Path | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lease_timeout_s: float = 5.0,
        chunk_timeout_s: float = 300.0,
        verbose: bool = False,
    ) -> None:
        self.farm_dir = Path(farm_dir)
        self.store = JobStore(self.farm_dir)
        self.cache = ExperimentCache(
            cache_dir=Path(cache_dir) if cache_dir else self.farm_dir / "cache"
        )
        self.chunk_size = chunk_size
        self.lease_timeout_s = lease_timeout_s
        self.chunk_timeout_s = chunk_timeout_s
        self.target_workers = workers
        self.verbose = verbose
        self.respawns = 0
        self._fleet: List["subprocess.Popen[bytes]"] = []
        self._fleet_lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None

        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve in background threads (tests and embedding)."""
        threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        ).start()
        self._start_fleet()

    def serve_forever(self) -> None:  # pragma: no cover - CLI path
        self._start_fleet()
        try:
            self.httpd.serve_forever()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        self._stopping.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        with self._fleet_lock:
            fleet, self._fleet = self._fleet, []
        for proc in fleet:
            if proc.poll() is None:
                proc.terminate()
        for proc in fleet:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)

    # -- fleet --------------------------------------------------------- #
    def _start_fleet(self) -> None:
        if self.target_workers <= 0:
            return
        with self._fleet_lock:
            for i in range(self.target_workers):
                self._fleet.append(self._spawn(f"s{i}"))
        self._monitor = threading.Thread(
            target=self._monitor_fleet, daemon=True
        )
        self._monitor.start()

    def _spawn(self, tag: str) -> "subprocess.Popen[bytes]":
        # Persistent stealers: no job pin, no idle exit; the drain
        # marker (or server shutdown) is their off switch.
        return spawn_worker(
            self.farm_dir, job_id=None, tag=tag,
            exit_when_done=False, idle_exit_s=None,
        )

    def _monitor_fleet(self) -> None:
        while not self._stopping.wait(_FLEET_POLL_S):
            if self.store.draining():
                continue
            with self._fleet_lock:
                alive = [p for p in self._fleet if p.poll() is None]
                dead = len(self._fleet) - len(alive)
                for _ in range(dead):
                    self.respawns += 1
                    alive.append(self._spawn(f"r{self.respawns}"))
                self._fleet = alive

    def worker_pids(self) -> List[int]:
        with self._fleet_lock:
            return [p.pid for p in self._fleet if p.poll() is None]

    # -- request-side operations --------------------------------------- #
    def health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "fingerprint": self.cache.fingerprint,
            "jobs": len(self.store.list_jobs()),
            "workers": self.worker_pids(),
            "respawns": self.respawns,
            "draining": self.store.draining(),
        }

    def submit(self, configs: List[ExperimentConfig]) -> Dict[str, Any]:
        for config in configs:
            if not isinstance(config, ExperimentConfig):
                raise TypeError(
                    f"submission must be a list of ExperimentConfig, "
                    f"got {type(config).__name__}"
                )
            config.validate()
        job = self.store.create_job(
            configs,
            cache_spec=self.cache.spec,
            chunk_size=self.chunk_size,
            lease_timeout_s=self.lease_timeout_s,
            chunk_timeout_s=self.chunk_timeout_s,
        )
        return job.status()

    def job_results(self, job_id: str) -> Tuple[int, bytes, str]:
        """(status, body, content_type) for a results fetch.

        202 while chunks are outstanding.  On a completed job whose
        results were since evicted from the store, the affected chunks
        are *reopened* (their done markers removed) so the fleet redoes
        exactly those, and the fetch returns 202 — self-healing instead
        of a permanent hole.
        """
        job = self.store.job(job_id)
        if not job.exists():
            return 404, b'{"error": "unknown job"}', "application/json"
        if not job.is_complete():
            return (
                202,
                json.dumps(job.status()).encode("utf-8"),
                "application/json",
            )
        configs = job.load_configs()
        results = []
        missing: List[int] = []
        for i, config in enumerate(configs):
            got = self.cache.get(config)
            if got is None:
                missing.append(i)
            else:
                results.append(got)
        if missing:
            chunk_of = {
                idx: cid
                for cid, indices in enumerate(job.chunks)
                for idx in indices
            }
            reopened = job.reopen_chunks(sorted({chunk_of[i] for i in missing}))
            body = json.dumps(
                {**job.status(), "reopened_chunks": reopened}
            ).encode("utf-8")
            return 202, body, "application/json"
        payload = {
            "results": results,
            "stats": job.merged_stats().as_dict(),
        }
        return (
            200,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            "application/octet-stream",
        )


def _make_handler(server: FarmServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing -------------------------------------------------- #
        def log_message(self, fmt: str, *args: Any) -> None:
            if server.verbose:  # pragma: no cover - debug aid
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send(
            self, status: int, body: bytes,
            content_type: str = "application/json",
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            self._send(status, json.dumps(payload).encode("utf-8"))

        def _read_body(self) -> Optional[bytes]:
            length = int(self.headers.get("Content-Length", "0"))
            if length > MAX_BODY_BYTES:
                self._send_json(413, {"error": "body too large"})
                return None
            return self.rfile.read(length)

        def _fail(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        # -- routes ---------------------------------------------------- #
        def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
            try:
                parts = [p for p in self.path.split("?")[0].split("/") if p]
                if parts == ["healthz"]:
                    self._send_json(200, server.health())
                elif parts == ["v1", "workers"]:
                    self._send_json(200, {"pids": server.worker_pids()})
                elif parts == ["v1", "jobs"]:
                    self._send_json(200, {
                        "jobs": [j.status() for j in server.store.list_jobs()]
                    })
                elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                    job = server.store.job(parts[2])
                    if not job.exists():
                        self._fail(404, "unknown job")
                    else:
                        self._send_json(200, job.status())
                elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                        and parts[3] == "results"):
                    status, body, ctype = server.job_results(parts[2])
                    self._send(status, body, ctype)
                elif len(parts) == 4 and parts[:2] == ["v1", "cache"]:
                    blob = server.cache.get_blob(parts[2], parts[3])
                    if blob is None:
                        self._fail(404, "cache miss")
                    else:
                        self._send(200, blob, "application/octet-stream")
                else:
                    self._fail(404, f"no route for GET {self.path}")
            except ValueError as exc:
                self._fail(400, str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                self._fail(500, f"{type(exc).__name__}: {exc}")

        def do_POST(self) -> None:  # noqa: N802
            try:
                parts = [p for p in self.path.split("?")[0].split("/") if p]
                if parts == ["v1", "jobs"]:
                    body = self._read_body()
                    if body is None:
                        return
                    try:
                        configs = pickle.loads(body)
                    except Exception as exc:
                        self._fail(400, f"unreadable submission: {exc}")
                        return
                    if not isinstance(configs, list) or not configs:
                        self._fail(400, "submission must be a non-empty list")
                        return
                    self._send_json(200, server.submit(configs))
                elif parts == ["v1", "drain"]:
                    server.store.request_drain()
                    self._send_json(200, {"draining": True})
                else:
                    self._fail(404, f"no route for POST {self.path}")
            except (TypeError, ValueError) as exc:
                self._fail(400, str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                self._fail(500, f"{type(exc).__name__}: {exc}")

        def do_PUT(self) -> None:  # noqa: N802
            try:
                parts = [p for p in self.path.split("?")[0].split("/") if p]
                if len(parts) == 4 and parts[:2] == ["v1", "cache"]:
                    body = self._read_body()
                    if body is None:
                        return
                    server.cache.put_blob(parts[2], parts[3], body)
                    self._send_json(200, {"stored": True})
                else:
                    self._fail(404, f"no route for PUT {self.path}")
            except ValueError as exc:
                self._fail(400, str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                self._fail(500, f"{type(exc).__name__}: {exc}")

    return Handler
