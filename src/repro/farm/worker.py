"""The farm worker: claim a chunk, run it, store results, repeat.

One worker process serves *every* job in the farm directory — idle
workers steal pending chunks from whichever job has them, so a fleet
started for one sweep naturally absorbs the next one submitted.

Per chunk the worker:

1. claims the lease (:meth:`JobState.claim`), starting a heartbeat
   thread that refreshes the lease mtime — but only while the chunk is
   inside its ``chunk_timeout_s`` budget.  A worker that hangs inside a
   single simulation stops heartbeating when the budget lapses, the
   lease goes stale, and a peer re-claims the chunk (duplicated compute
   is safe: results are idempotent puts into the content-addressed
   store);
2. for each config: consult the shared cache, run the experiment on a
   miss, and put the result back *from this process* with
   retry-with-backoff on transient store errors;
3. publishes the completion marker carrying the per-chunk
   :class:`CacheStats`, then drops the lease.

Wall-clock reads here are all host-side lease/timeout bookkeeping —
nothing below ever feeds simulated time.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from ..cache.retry import with_retries
from ..experiments.runner import run_experiment
from .leases import JobState, JobStore

__all__ = ["run_one_chunk", "work_loop", "worker_id_for_process"]

#: Environment knob (milliseconds) slowing each config down; used by the
#: fault-injection tests to hold a worker mid-chunk long enough to be
#: SIGKILLed deterministically.  Unset or 0 in real deployments.
SLOW_MS_ENV = "REPRO_FARM_SLOW_MS"


def worker_id_for_process(tag: str = "") -> str:
    """A farm-unique, path-safe worker id for this process."""
    base = f"w{os.getpid()}"
    if tag:
        safe = "".join(c for c in tag if c.isalnum() or c in "_-")
        base = f"{safe}-{base}"
    return base


class _Heartbeat(threading.Thread):
    """Refreshes the chunk lease until stopped, the budget lapses, or
    the lease is lost to a takeover."""

    def __init__(
        self, job: JobState, chunk_id: int, worker_id: str, budget_s: float
    ) -> None:
        super().__init__(daemon=True)
        self.job = job
        self.chunk_id = chunk_id
        self.worker_id = worker_id
        self.budget_s = budget_s
        self.interval_s = max(0.05, job.lease_timeout_s / 4.0)
        self.stop_event = threading.Event()

    def run(self) -> None:
        deadline = time.monotonic() + self.budget_s  # repro: allow[RPR001] host-side chunk budget, outside any simulation
        while not self.stop_event.wait(self.interval_s):
            if time.monotonic() > deadline:  # repro: allow[RPR001] host-side chunk budget, outside any simulation
                return  # stop renewing: let a peer steal the chunk
            if not self.job.heartbeat(self.chunk_id, self.worker_id):
                return

    def stop(self) -> None:
        self.stop_event.set()
        self.join(timeout=2.0)


def _slow_ms() -> float:
    raw = os.environ.get(SLOW_MS_ENV, "")
    try:
        return float(raw) if raw else 0.0
    except ValueError:
        return 0.0


def run_one_chunk(
    job: JobState, chunk_id: int, worker_id: str
) -> bool:
    """Execute one claimed chunk; returns whether it completed.

    ``False`` means the chunk budget lapsed mid-chunk: the lease is
    released (results computed so far are already in the store) and a
    peer finishes the remainder.
    """
    configs = job.load_configs()
    indices = job.chunks[chunk_id]
    cache = job.cache_spec().open()  # fresh handle => per-chunk stats
    budget_s = job.chunk_timeout_s
    heartbeat = _Heartbeat(job, chunk_id, worker_id, budget_s)
    heartbeat.start()
    deadline = time.monotonic() + budget_s  # repro: allow[RPR001] host-side chunk budget, outside any simulation
    slow_ms = _slow_ms()
    try:
        for idx in indices:
            if time.monotonic() > deadline:  # repro: allow[RPR001] host-side chunk budget, outside any simulation
                job.release(chunk_id, worker_id)
                return False
            config = configs[idx]
            if slow_ms:
                time.sleep(slow_ms / 1000.0)
            cached = cache.get(config)
            if cached is None:
                result = run_experiment(config)
                with_retries(lambda: cache.put(config, result))
        job.complete(chunk_id, worker_id, cache.stats)
        return True
    finally:
        heartbeat.stop()


def work_loop(
    farm_dir: "str | os.PathLike[str]",
    worker_id: Optional[str] = None,
    job_id: Optional[str] = None,
    poll_s: float = 0.2,
    idle_exit_s: Optional[float] = None,
    max_chunks: Optional[int] = None,
    exit_when_done: bool = False,
) -> Dict[str, Any]:
    """Run chunks until drained, idle-expired, or out of work.

    * ``job_id`` pins the worker to one job; otherwise it steals work
      from every job in the farm directory (lowest job id first).
    * ``idle_exit_s`` exits after that long with nothing claimable;
      ``None`` polls forever (server-managed fleets — the drain marker
      is the off switch).
    * ``exit_when_done`` exits once the pinned job (or every known job)
      is complete — the distributor uses this for one-shot fleets.

    Returns a small summary dict (chunks completed/abandoned) for the
    CLI to print.
    """
    store = JobStore(farm_dir)
    me = worker_id or worker_id_for_process()
    completed = 0
    abandoned = 0
    idle_since: Optional[float] = None
    while True:
        if store.draining():
            break
        jobs: List[JobState]
        if job_id is not None:
            job = store.job(job_id)
            jobs = [job] if job.exists() else []
        else:
            jobs = store.list_jobs()
        claimed = False
        for job in jobs:
            chunk_id = job.claim(me)
            if chunk_id is None:
                continue
            claimed = True
            idle_since = None
            if run_one_chunk(job, chunk_id, me):
                completed += 1
            else:
                abandoned += 1
            break  # rescan: an earlier job may have opened up
        if claimed:
            if max_chunks is not None and completed >= max_chunks:
                break
            continue
        if exit_when_done and jobs and all(j.is_complete() for j in jobs):
            break
        if idle_exit_s is not None:
            now = time.monotonic()  # repro: allow[RPR001] host-side idle timer, outside any simulation
            if idle_since is None:
                idle_since = now
            elif now - idle_since > idle_exit_s:
                break
        time.sleep(poll_s)
    return {"worker": me, "completed": completed, "abandoned": abandoned}
