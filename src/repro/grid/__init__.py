"""Platform models: the measured Grid'5000 testbed and synthetic grids."""

from .builders import random_wan_grid, two_tier_grid
from .clustering import derive_zones, zone_spread
from .grid5000 import (
    GRID5000_RTT_MS,
    GRID5000_SITES,
    PAPER_N_PROCESSES,
    PAPER_NODES_PER_CLUSTER,
    grid5000_latency,
    grid5000_topology,
)

__all__ = [
    "GRID5000_SITES",
    "GRID5000_RTT_MS",
    "PAPER_NODES_PER_CLUSTER",
    "PAPER_N_PROCESSES",
    "grid5000_topology",
    "grid5000_latency",
    "two_tier_grid",
    "random_wan_grid",
    "derive_zones",
    "zone_spread",
]
