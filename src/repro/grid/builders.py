"""Synthetic platform builders.

Besides the measured Grid'5000 matrix, the scalability and ablation
studies need platforms of arbitrary size with controlled latency
structure.  These builders produce (topology, latency-model) pairs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import TopologyError
from ..net.latency import MatrixLatency, TwoTierLatency
from ..net.topology import GridTopology, uniform_topology

__all__ = ["two_tier_grid", "random_wan_grid"]


def two_tier_grid(
    n_clusters: int,
    nodes_per_cluster: int,
    lan_ms: float = 0.05,
    wan_ms: float = 10.0,
    jitter: float = 0.0,
) -> Tuple[GridTopology, TwoTierLatency]:
    """A grid where every WAN link has the same latency.

    Isolates the *hierarchy* effect (LAN vs WAN) from the
    *heterogeneity* effect (different WAN links) that the Grid'5000
    matrix mixes together.
    """
    topo = uniform_topology(n_clusters, nodes_per_cluster)
    return topo, TwoTierLatency(topo, lan_ms=lan_ms, wan_ms=wan_ms, jitter=jitter)


def random_wan_grid(
    n_clusters: int,
    nodes_per_cluster: int,
    lan_rtt_ms: float = 0.05,
    wan_rtt_range_ms: Tuple[float, float] = (3.0, 20.0),
    seed: Optional[int] = 0,
    jitter: float = 0.0,
    symmetric: bool = True,
) -> Tuple[GridTopology, MatrixLatency]:
    """A grid with heterogeneous WAN RTTs drawn uniformly from a range.

    Mimics the spread of the Grid'5000 matrix (most links 3-20 ms) at any
    scale.  ``symmetric=False`` additionally perturbs the two directions
    of each link independently, as the measured matrix does.
    """
    lo, hi = wan_rtt_range_ms
    if lo <= 0 or hi < lo:
        raise TopologyError(f"invalid WAN RTT range {wan_rtt_range_ms}")
    topo = uniform_topology(n_clusters, nodes_per_cluster)
    rng = np.random.default_rng(seed)
    rtt = rng.uniform(lo, hi, size=(n_clusters, n_clusters))
    if symmetric:
        rtt = (rtt + rtt.T) / 2.0
    np.fill_diagonal(rtt, lan_rtt_ms)
    return topo, MatrixLatency(topo, rtt, jitter=jitter)
