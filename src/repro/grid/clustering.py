"""Deriving hierarchy levels from measured latencies.

The paper groups machines by *cluster membership*, which on Grid'5000
coincides with the latency structure.  For platforms where the grouping
is not given (or for building the §6 multi-level hierarchy's *zones*),
this module derives it from the RTT matrix itself: sites are
agglomeratively clustered (average linkage over symmetrised RTT
distances), so WAN-close sites — e.g. toulouse/bordeaux at 3.1 ms or
grenoble/lyon at 3.3 ms on the paper's own matrix — end up in one zone.

The output plugs directly into
:class:`~repro.core.multilevel.MultilevelComposition` as its hierarchy
spec.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from ..errors import TopologyError

__all__ = ["derive_zones", "zone_spread"]


def derive_zones(
    rtt_ms: Sequence[Sequence[float]] | np.ndarray,
    n_zones: int,
) -> List[List[int]]:
    """Group sites into ``n_zones`` latency-coherent zones.

    Parameters
    ----------
    rtt_ms:
        Square (possibly asymmetric) RTT matrix between sites.
    n_zones:
        Number of zones wanted, ``1 <= n_zones <= n_sites``.

    Returns
    -------
    A list of ``n_zones`` site-index lists (each sorted, jointly covering
    every site exactly once), ordered by their smallest member — ready to
    use as a :class:`~repro.core.multilevel.MultilevelComposition`
    hierarchy level.
    """
    matrix = np.asarray(rtt_ms, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise TopologyError(f"RTT matrix must be square, got {matrix.shape}")
    n = matrix.shape[0]
    if not 1 <= n_zones <= n:
        raise TopologyError(
            f"n_zones must be in 1..{n}, got {n_zones}"
        )
    if n_zones == n:
        return [[i] for i in range(n)]
    if n_zones == 1:
        return [list(range(n))]
    # Symmetrise (measured matrices are directionally noisy) and zero
    # the diagonal so it is a valid dissimilarity.
    sym = (matrix + matrix.T) / 2.0
    np.fill_diagonal(sym, 0.0)
    condensed = squareform(sym, checks=False)
    tree = linkage(condensed, method="average")
    labels = fcluster(tree, t=n_zones, criterion="maxclust")
    zones: dict[int, List[int]] = {}
    for site, label in enumerate(labels):
        zones.setdefault(int(label), []).append(site)
    out = [sorted(members) for members in zones.values()]
    out.sort(key=lambda z: z[0])
    if len(out) != n_zones:
        # fcluster can merge below the requested count on degenerate
        # matrices (all-equal distances); fail loudly rather than hand
        # back a surprise hierarchy.
        raise TopologyError(
            f"could not split {n} sites into {n_zones} zones "
            f"(got {len(out)}); the latency matrix may be degenerate"
        )
    return out


def zone_spread(
    rtt_ms: Sequence[Sequence[float]] | np.ndarray,
    zones: Sequence[Sequence[int]],
) -> dict:
    """Quality measures of a zoning: mean intra-zone vs inter-zone RTT.

    A good zoning for a multi-level hierarchy maximises the gap —
    cheap token circulation inside a zone, rare expensive hops between
    zones.
    """
    matrix = np.asarray(rtt_ms, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise TopologyError(f"RTT matrix must be square, got {matrix.shape}")
    n = matrix.shape[0]
    intra, inter = [], []
    zone_of = {}
    for zi, members in enumerate(zones):
        for site in members:
            # Validate membership against the matrix, not just the count:
            # an out-of-range index would otherwise satisfy the coverage
            # check below and surface as a raw KeyError in the pair loop.
            if not 0 <= site < n:
                raise TopologyError(
                    f"zone {zi} contains site {site}, outside 0..{n - 1}"
                )
            if site in zone_of:
                raise TopologyError(f"site {site} in two zones")
            zone_of[site] = zi
    if len(zone_of) != n:
        raise TopologyError("zones do not cover every site")
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            (intra if zone_of[i] == zone_of[j] else inter).append(matrix[i, j])
    return {
        "intra_mean_ms": float(np.mean(intra)) if intra else 0.0,
        "inter_mean_ms": float(np.mean(inter)) if inter else 0.0,
        "separation": (
            float(np.mean(inter) / np.mean(intra)) if intra and inter else
            float("inf")
        ),
    }
