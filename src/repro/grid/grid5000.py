"""The Grid'5000 platform model.

The paper's experiments ran on 9 Grid'5000 clusters (one per French
city), 20 nodes each, and report the average inter-site RTTs in
Figure 3.  This module embeds that matrix verbatim so the simulated
platform exhibits exactly the latency heterogeneity the paper measured
— including its quirks, such as the pathological orsay→nancy (95 ms)
and nancy→toulouse (98 ms) paths and the asymmetry of several pairs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import TopologyError
from ..net.latency import MatrixLatency
from ..net.topology import GridTopology, uniform_topology

__all__ = [
    "GRID5000_SITES",
    "GRID5000_RTT_MS",
    "grid5000_topology",
    "grid5000_latency",
    "PAPER_NODES_PER_CLUSTER",
    "PAPER_N_PROCESSES",
]

#: Site names in the order of the paper's Figure 3.
GRID5000_SITES: Tuple[str, ...] = (
    "orsay",
    "grenoble",
    "lyon",
    "rennes",
    "lille",
    "nancy",
    "toulouse",
    "sophia",
    "bordeaux",
)

#: Average round-trip times in milliseconds between Grid'5000 sites
#: (paper Figure 3; row = from, column = to).
GRID5000_RTT_MS: np.ndarray = np.array(
    [
        # orsay  grenobl lyon    rennes  lille   nancy   toulous sophia  bordeaux
        [0.034, 15.039, 9.128, 8.881, 4.489, 95.282, 15.556, 20.239, 7.900],
        [14.976, 0.066, 3.293, 15.269, 12.954, 13.246, 10.582, 9.904, 16.288],
        [9.136, 3.309, 0.026, 12.672, 10.377, 10.634, 7.956, 7.289, 10.078],
        [8.913, 15.258, 12.617, 0.059, 11.269, 11.654, 19.911, 19.224, 8.114],
        [10.000, 10.001, 10.001, 10.001, 0.001, 10.001, 20.000, 20.001, 10.001],
        [5.657, 13.279, 10.623, 11.679, 9.228, 0.032, 98.398, 17.215, 12.827],
        [15.547, 10.586, 7.934, 19.888, 19.102, 17.886, 0.043, 14.540, 3.131],
        [20.332, 9.889, 7.254, 19.215, 16.811, 17.238, 14.529, 0.051, 10.629],
        [7.925, 16.338, 10.043, 8.129, 10.845, 12.795, 3.150, 10.640, 0.045],
    ],
    dtype=float,
)
GRID5000_RTT_MS.setflags(write=False)

#: Scale used in the paper: 9 clusters x 20 nodes = 180 application
#: processes.
PAPER_NODES_PER_CLUSTER = 20
PAPER_N_PROCESSES = len(GRID5000_SITES) * PAPER_NODES_PER_CLUSTER


def grid5000_topology(
    nodes_per_cluster: int = PAPER_NODES_PER_CLUSTER,
    n_sites: Optional[int] = None,
) -> GridTopology:
    """Build the 9-site Grid'5000 topology.

    Parameters
    ----------
    nodes_per_cluster:
        Nodes per site; the paper uses 20.  Smaller values give the same
        latency structure at reduced simulation cost.
    n_sites:
        Use only the first ``n_sites`` sites (default: all 9).
    """
    if n_sites is None:
        n_sites = len(GRID5000_SITES)
    if not 1 <= n_sites <= len(GRID5000_SITES):
        raise TopologyError(
            f"n_sites must be in 1..{len(GRID5000_SITES)}, got {n_sites}"
        )
    return uniform_topology(
        n_sites, nodes_per_cluster, names=GRID5000_SITES[:n_sites]
    )


def grid5000_latency(
    topology: GridTopology, jitter: float = 0.0
) -> MatrixLatency:
    """Latency model realising the Figure 3 RTT matrix over ``topology``.

    ``topology`` must have been built by :func:`grid5000_topology` (or at
    least have no more clusters than there are Grid'5000 sites).
    """
    n = topology.n_clusters
    if n > len(GRID5000_SITES):
        raise TopologyError(
            f"topology has {n} clusters but Grid'5000 has only "
            f"{len(GRID5000_SITES)} sites"
        )
    return MatrixLatency(topology, GRID5000_RTT_MS[:n, :n], jitter=jitter)
