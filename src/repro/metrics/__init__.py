"""Measurement layer: per-CS records, aggregation, text reports."""

from .analysis import SummaryStats, jain_index, pooled, summarize
from .collector import BoundedMetricsCollector, MetricsCollector
from .records import CSRecord, RecoveryRecord
from .report import format_matrix, format_series_table, format_table
from .timeline import TimelineRecorder

__all__ = [
    "CSRecord",
    "RecoveryRecord",
    "MetricsCollector",
    "BoundedMetricsCollector",
    "SummaryStats",
    "summarize",
    "pooled",
    "jain_index",
    "TimelineRecorder",
    "format_table",
    "format_series_table",
    "format_matrix",
]
