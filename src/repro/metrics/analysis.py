"""Statistical summaries of obtaining times.

The paper's three metrics (§4.1) are the **obtaining time** average, the
**number of sent messages** (inter-cluster in particular), and the
obtaining time's **standard deviation** — §4.5 additionally studies the
*relative* deviation ``σ_r = σ / mean`` to factor out the mean's own
variation with ρ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize", "pooled", "jain_index"]


@dataclass(frozen=True)
class SummaryStats:
    """Moments of a sample of obtaining times (ms)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @property
    def relative_std(self) -> float:
        """The paper's σ_r = σ / mean (0 when the mean is 0)."""
        return self.std / self.mean if self.mean else 0.0

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f}ms std={self.std:.3f}ms "
            f"(σ_r={self.relative_std:.2f}) p50={self.p50:.3f} "
            f"p95={self.p95:.3f} min={self.minimum:.3f} max={self.maximum:.3f}"
        )


_EMPTY = SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summary statistics of ``values`` (population std, like the paper's
    measured σ over all observed CS entries)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return _EMPTY
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
    )


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``.

    1.0 means perfectly equal values; ``1/n`` is the worst case (one
    process gets everything).  Used to quantify §4.6's observation that
    Suzuki-Kasami's token queue — which appends in peer-id order, not
    arrival order — treats processes less evenly than Naimi-Tréhel's
    arrival-ordered distributed queue.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    denom = arr.size * float((arr**2).sum())
    if denom == 0.0:
        return 1.0
    return float(arr.sum()) ** 2 / denom


def pooled(stats: Sequence[SummaryStats]) -> SummaryStats:
    """Combine per-run summaries into one, as if the samples were pooled.

    Uses exact pooled-moment formulas, so ``pooled(map(summarize, runs))``
    equals ``summarize(concatenation)`` up to floating point — except for
    the percentiles, which cannot be pooled exactly and are approximated
    by the count-weighted average of the per-run percentiles.
    """
    stats = [s for s in stats if s.count > 0]
    if not stats:
        return _EMPTY
    n = sum(s.count for s in stats)
    mean = sum(s.mean * s.count for s in stats) / n
    second_moment = sum((s.std**2 + s.mean**2) * s.count for s in stats) / n
    var = max(0.0, second_moment - mean**2)
    return SummaryStats(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(s.minimum for s in stats),
        maximum=max(s.maximum for s in stats),
        p50=sum(s.p50 * s.count for s in stats) / n,
        p95=sum(s.p95 * s.count for s in stats) / n,
    )
