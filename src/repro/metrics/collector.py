"""Collection of per-CS records during a run."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .analysis import SummaryStats, jain_index, summarize
from .records import CSRecord, RecoveryRecord

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates :class:`~repro.metrics.records.CSRecord` objects.

    Application processes push a record per completed CS; the experiment
    layer reads the aggregations after the run.  The recovery layer
    (:mod:`repro.core.recovery`) additionally pushes
    :class:`~repro.metrics.records.RecoveryRecord` entries and per-kind
    retry counts; both stay empty on fault-free runs.
    """

    def __init__(self) -> None:
        self.records: List[CSRecord] = []
        self.recoveries: List[RecoveryRecord] = []
        self.retries: Dict[str, int] = defaultdict(int)

    def add(self, record: CSRecord) -> None:
        self.records.append(record)

    def add_recovery(self, record: RecoveryRecord) -> None:
        self.recoveries.append(record)

    def record_retry(self, kind: str) -> None:
        """Count one detector escalation of ``kind`` (e.g.
        ``"deadline:intra/0"`` or ``"heartbeat:1"``)."""
        self.retries[kind] += 1

    # ------------------------------------------------------------------ #
    @property
    def cs_count(self) -> int:
        return len(self.records)

    def obtaining_times(self) -> List[float]:
        return [r.obtaining_time for r in self.records]

    def obtaining_stats(self) -> SummaryStats:
        """The paper's headline metric over the whole run."""
        return summarize(self.obtaining_times())

    def by_cluster(self) -> Dict[int, SummaryStats]:
        """Obtaining time summary per cluster — used to study how latency
        heterogeneity spreads the per-cluster experience (§4.5)."""
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.cluster].append(r.obtaining_time)
        return {ci: summarize(v) for ci, v in sorted(groups.items())}

    def by_node(self) -> Dict[int, SummaryStats]:
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.node].append(r.obtaining_time)
        return {node: summarize(v) for node, v in sorted(groups.items())}

    def completion_time(self) -> float:
        """Simulated time of the last CS release (0 when empty)."""
        return max((r.released_at for r in self.records), default=0.0)

    def recovery_times(self) -> List[float]:
        return [r.recovery_time for r in self.recoveries]

    def recovery_stats(self) -> SummaryStats:
        """Detection-to-completion time over all recoveries of the run."""
        return summarize(self.recovery_times())

    def fairness(self) -> Dict[str, float]:
        """Fairness indicators across application processes.

        * ``obtaining_jain`` — Jain's index over each node's *mean*
          obtaining time (1.0 = every node waits equally long);
        * ``worst_over_best`` — ratio of the slowest node's mean
          obtaining time to the fastest node's (1.0 = perfectly even).
        """
        per_node = [s.mean for s in self.by_node().values()]
        if not per_node:
            return {"obtaining_jain": 1.0, "worst_over_best": 1.0}
        best = min(per_node)
        return {
            "obtaining_jain": jain_index(per_node),
            "worst_over_best": max(per_node) / best if best else float("inf"),
        }
