"""Collection of per-CS records during a run."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .analysis import SummaryStats, jain_index, summarize
from .records import CSRecord

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates :class:`~repro.metrics.records.CSRecord` objects.

    Application processes push a record per completed CS; the experiment
    layer reads the aggregations after the run.
    """

    def __init__(self) -> None:
        self.records: List[CSRecord] = []

    def add(self, record: CSRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------ #
    @property
    def cs_count(self) -> int:
        return len(self.records)

    def obtaining_times(self) -> List[float]:
        return [r.obtaining_time for r in self.records]

    def obtaining_stats(self) -> SummaryStats:
        """The paper's headline metric over the whole run."""
        return summarize(self.obtaining_times())

    def by_cluster(self) -> Dict[int, SummaryStats]:
        """Obtaining time summary per cluster — used to study how latency
        heterogeneity spreads the per-cluster experience (§4.5)."""
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.cluster].append(r.obtaining_time)
        return {ci: summarize(v) for ci, v in sorted(groups.items())}

    def by_node(self) -> Dict[int, SummaryStats]:
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.node].append(r.obtaining_time)
        return {node: summarize(v) for node, v in sorted(groups.items())}

    def completion_time(self) -> float:
        """Simulated time of the last CS release (0 when empty)."""
        return max((r.released_at for r in self.records), default=0.0)

    def fairness(self) -> Dict[str, float]:
        """Fairness indicators across application processes.

        * ``obtaining_jain`` — Jain's index over each node's *mean*
          obtaining time (1.0 = every node waits equally long);
        * ``worst_over_best`` — ratio of the slowest node's mean
          obtaining time to the fastest node's (1.0 = perfectly even).
        """
        per_node = [s.mean for s in self.by_node().values()]
        if not per_node:
            return {"obtaining_jain": 1.0, "worst_over_best": 1.0}
        best = min(per_node)
        return {
            "obtaining_jain": jain_index(per_node),
            "worst_over_best": max(per_node) / best if best else float("inf"),
        }
