"""Collection of per-CS records during a run.

Two collectors share one interface: the exact :class:`MetricsCollector`
keeps every :class:`~repro.metrics.records.CSRecord` (paper-scale runs,
a few thousand records), and :class:`BoundedMetricsCollector` keeps
O(cap) state for 1k-10k-node sweeps — exact streaming moments (count,
mean, std, min, max, overall and per cluster) plus a uniform reservoir
sample of records for the percentile and per-node views.  The experiment
runner switches to the bounded collector automatically above
:data:`~repro.net.topology.LARGE_GRID_NODES` application processes.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List

import numpy as np

from .analysis import SummaryStats, jain_index, summarize
from .records import CSRecord, RecoveryRecord

__all__ = ["MetricsCollector", "BoundedMetricsCollector"]


class MetricsCollector:
    """Accumulates :class:`~repro.metrics.records.CSRecord` objects.

    Application processes push a record per completed CS; the experiment
    layer reads the aggregations after the run.  The recovery layer
    (:mod:`repro.core.recovery`) additionally pushes
    :class:`~repro.metrics.records.RecoveryRecord` entries and per-kind
    retry counts; both stay empty on fault-free runs.
    """

    def __init__(self) -> None:
        self.records: List[CSRecord] = []
        self.recoveries: List[RecoveryRecord] = []
        self.retries: Dict[str, int] = defaultdict(int)

    def add(self, record: CSRecord) -> None:
        self.records.append(record)

    def add_recovery(self, record: RecoveryRecord) -> None:
        self.recoveries.append(record)

    def record_retry(self, kind: str) -> None:
        """Count one detector escalation of ``kind`` (e.g.
        ``"deadline:intra/0"`` or ``"heartbeat:1"``)."""
        self.retries[kind] += 1

    # ------------------------------------------------------------------ #
    @property
    def cs_count(self) -> int:
        return len(self.records)

    def obtaining_times(self) -> List[float]:
        return [r.obtaining_time for r in self.records]

    def obtaining_stats(self) -> SummaryStats:
        """The paper's headline metric over the whole run."""
        return summarize(self.obtaining_times())

    def by_cluster(self) -> Dict[int, SummaryStats]:
        """Obtaining time summary per cluster — used to study how latency
        heterogeneity spreads the per-cluster experience (§4.5)."""
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.cluster].append(r.obtaining_time)
        return {ci: summarize(v) for ci, v in sorted(groups.items())}

    def by_node(self) -> Dict[int, SummaryStats]:
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.node].append(r.obtaining_time)
        return {node: summarize(v) for node, v in sorted(groups.items())}

    def completion_time(self) -> float:
        """Simulated time of the last CS release (0 when empty)."""
        return max((r.released_at for r in self.records), default=0.0)

    def recovery_times(self) -> List[float]:
        return [r.recovery_time for r in self.recoveries]

    def recovery_stats(self) -> SummaryStats:
        """Detection-to-completion time over all recoveries of the run."""
        return summarize(self.recovery_times())

    def fairness(self) -> Dict[str, float]:
        """Fairness indicators across application processes.

        * ``obtaining_jain`` — Jain's index over each node's *mean*
          obtaining time (1.0 = every node waits equally long);
        * ``worst_over_best`` — ratio of the slowest node's mean
          obtaining time to the fastest node's (1.0 = perfectly even).
        """
        per_node = [s.mean for s in self.by_node().values()]
        if not per_node:
            return {"obtaining_jain": 1.0, "worst_over_best": 1.0}
        best = min(per_node)
        return {
            "obtaining_jain": jain_index(per_node),
            "worst_over_best": max(per_node) / best if best else float("inf"),
        }


class _Moments:
    """Exact streaming count/sum/sum-of-squares/min/max accumulator."""

    __slots__ = ("n", "total", "total_sq", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        self.total_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def stats(self, p50: float, p95: float) -> SummaryStats:
        """Exact moments with externally supplied percentiles."""
        n = self.n
        mean = self.total / n
        var = max(0.0, self.total_sq / n - mean * mean)
        return SummaryStats(
            count=n,
            mean=mean,
            std=math.sqrt(var),
            minimum=self.minimum,
            maximum=self.maximum,
            p50=p50,
            p95=p95,
        )


class BoundedMetricsCollector(MetricsCollector):
    """O(cap) drop-in for :class:`MetricsCollector` on large grids.

    Count, mean, std, min, max and completion time — overall and per
    cluster — are **exact** (streaming moments; population std like
    :func:`~repro.metrics.analysis.summarize`).  Percentiles and the
    per-node views (``by_node``, ``fairness``, ``obtaining_times``) are
    computed over a uniform reservoir sample of ``max_records`` records
    (Vitter's algorithm R), so they are deterministic for a given seed
    and insertion order but approximate once the run exceeds the cap.
    The reservoir RNG is an explicit private generator: it never touches
    the simulation's seeded streams, so enabling the bounded collector
    cannot perturb a run's digest.
    """

    def __init__(self, max_records: int = 8192, seed: int = 0) -> None:
        super().__init__()
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.max_records = int(max_records)
        self._rng = np.random.default_rng(seed ^ 0x5EED_CA9)
        self._all = _Moments()
        self._clusters: Dict[int, _Moments] = {}
        self._last_release = 0.0

    def add(self, record: CSRecord) -> None:
        t = record.obtaining_time
        self._all.add(t)
        cluster = self._clusters.get(record.cluster)
        if cluster is None:
            cluster = self._clusters[record.cluster] = _Moments()
        cluster.add(t)
        if record.released_at > self._last_release:
            self._last_release = record.released_at
        records = self.records
        seen = self._all.n - 1  # records seen before this one
        if seen < self.max_records:
            records.append(record)
        else:
            j = int(self._rng.integers(0, seen + 1))
            if j < self.max_records:
                records[j] = record

    @property
    def cs_count(self) -> int:
        return self._all.n

    def obtaining_stats(self) -> SummaryStats:
        if self._all.n == 0:
            return summarize(())
        sample = np.asarray(
            [r.obtaining_time for r in self.records], dtype=float
        )
        return self._all.stats(
            p50=float(np.percentile(sample, 50)),
            p95=float(np.percentile(sample, 95)),
        )

    def by_cluster(self) -> Dict[int, SummaryStats]:
        groups: Dict[int, List[float]] = defaultdict(list)
        for r in self.records:
            groups[r.cluster].append(r.obtaining_time)
        out: Dict[int, SummaryStats] = {}
        for ci, moments in sorted(self._clusters.items()):
            sampled = groups.get(ci)
            if sampled:
                arr = np.asarray(sampled, dtype=float)
                p50 = float(np.percentile(arr, 50))
                p95 = float(np.percentile(arr, 95))
            else:  # cluster fell out of the reservoir: mean as fallback
                p50 = p95 = moments.total / moments.n
            out[ci] = moments.stats(p50=p50, p95=p95)
        return out

    def completion_time(self) -> float:
        return self._last_release
