"""Per-critical-section measurement records."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CSRecord"]


@dataclass(frozen=True)
class CSRecord:
    """One completed critical section of one application process.

    All timestamps are simulated milliseconds.  The paper's **obtaining
    time** — "the time between the moment a node requests the CS and the
    moment it gets it" — is :attr:`obtaining_time`.
    """

    node: int
    cluster: int
    requested_at: float
    granted_at: float
    released_at: float

    @property
    def obtaining_time(self) -> float:
        return self.granted_at - self.requested_at

    @property
    def cs_duration(self) -> float:
        return self.released_at - self.granted_at

    def __post_init__(self) -> None:
        if not (
            self.requested_at <= self.granted_at <= self.released_at
        ):
            raise ValueError(
                f"inconsistent CS timestamps: req={self.requested_at} "
                f"grant={self.granted_at} rel={self.released_at}"
            )
