"""Per-critical-section and per-recovery measurement records."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CSRecord", "RecoveryRecord"]


@dataclass(frozen=True)
class CSRecord:
    """One completed critical section of one application process.

    All timestamps are simulated milliseconds.  The paper's **obtaining
    time** — "the time between the moment a node requests the CS and the
    moment it gets it" — is :attr:`obtaining_time`.
    """

    node: int
    cluster: int
    requested_at: float
    granted_at: float
    released_at: float

    @property
    def obtaining_time(self) -> float:
        return self.granted_at - self.requested_at

    @property
    def cs_duration(self) -> float:
        return self.released_at - self.granted_at

    def __post_init__(self) -> None:
        if not (
            self.requested_at <= self.granted_at <= self.released_at
        ):
            raise ValueError(
                f"inconsistent CS timestamps: req={self.requested_at} "
                f"grant={self.granted_at} rel={self.released_at}"
            )


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed recovery action of the fault-tolerance layer
    (:mod:`repro.core.recovery`).

    ``kind`` is ``"token_regeneration"`` for an instance-level epoch
    reset or ``"failover"`` for a full coordinator replacement; ``scope``
    names what recovered (an instance port, or ``cluster/<i>``).
    :attr:`recovery_time` spans detection to completion — for a failover
    that covers the intra re-acquisition and the inter reset, i.e. the
    whole service interruption as the recovery layer saw it.
    """

    kind: str
    scope: str
    reason: str
    detected_at: float
    completed_at: float
    elected: int

    @property
    def recovery_time(self) -> float:
        return self.completed_at - self.detected_at

    def __post_init__(self) -> None:
        if self.detected_at > self.completed_at:
            raise ValueError(
                f"recovery completed at {self.completed_at} before it was "
                f"detected at {self.detected_at}"
            )
