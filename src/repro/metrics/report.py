"""Plain-text tables for experiment output.

The benchmark harness prints the same rows the paper plots; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "format_table",
    "format_series_table",
    "format_matrix",
    "format_breakdown",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width text table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    xs: Sequence[float],
    series: dict,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render ``{name: [y...]}`` series against a shared x axis — the
    shape of every figure in the paper (x = ρ, one column per
    composition)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(series[name][i] for name in series)])
    return format_table(headers, rows, float_fmt=float_fmt)


def format_breakdown(
    parts: Sequence[tuple],
    total: float,
    value_label: str = "ms",
) -> str:
    """Render ``(name, value)`` parts as a table with a share column.

    Used by the observability report to show how critical-path segment
    categories split a total obtaining time; shares are computed against
    ``total`` so a lossless decomposition sums to 100%.
    """
    rows = []
    for name, value in parts:
        share = value / total if total else 0.0
        rows.append([name, value, f"{share:.1%}"])
    rows.append(["total", total, "100.0%" if total else "-"])
    return format_table(["segment", value_label, "share"], rows)


def format_matrix(
    labels: Sequence[str], matrix, float_fmt: str = "{:.3f}"
) -> str:
    """Render a square matrix with row/column labels (e.g. the realised
    latency matrix vs the paper's Figure 3)."""
    headers = ["from\\to", *labels]
    rows = [[label, *row] for label, row in zip(labels, matrix)]
    return format_table(headers, rows, float_fmt=float_fmt)
