"""Critical-section timelines and token-locality analysis.

Records application CS occupancy from trace events and renders an ASCII
gantt (one row per cluster).  Beyond debugging, it quantifies the
mechanism behind Figure 4: the composition *batches* consecutive
critical sections inside one cluster while the inter token is home —
visible as runs of same-cluster entries — whereas the flat algorithm
bounces across clusters.  :meth:`locality_ratio` measures exactly that.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..net.topology import GridTopology
from ..sim.trace import TraceRecord, Tracer

__all__ = ["TimelineRecorder"]


class TimelineRecorder:
    """Collects application CS enter/exit events for one run.

    Parameters
    ----------
    tracer:
        The simulator's tracer.
    topology:
        Used to map nodes to clusters.
    app_nodes:
        Nodes whose CS events count as *application* critical sections
        (coordinator slots are excluded).
    """

    def __init__(
        self,
        tracer: Tracer,
        topology: GridTopology,
        app_nodes,
    ) -> None:
        self.topology = topology
        self._apps = frozenset(app_nodes)
        #: (enter_time, exit_time, node, cluster); exit may be nan while open
        self.intervals: List[Tuple[float, float, int, int]] = []
        self._open: dict[int, float] = {}
        tracer.subscribe("cs_enter", self._on_enter)
        tracer.subscribe("cs_exit", self._on_exit)

    # ------------------------------------------------------------------ #
    def _relevant(self, rec: TraceRecord) -> bool:
        return rec.node in self._apps and (
            rec.port.startswith("intra") or rec.port == "flat"
        )

    def _on_enter(self, rec: TraceRecord) -> None:
        if self._relevant(rec):
            self._open[rec.node] = rec.time

    def _on_exit(self, rec: TraceRecord) -> None:
        if not self._relevant(rec):
            return
        start = self._open.pop(rec.node, None)
        if start is not None:
            self.intervals.append(
                (start, rec.time, rec.node, self.topology.cluster_of(rec.node))
            )

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def entry_clusters(self) -> List[int]:
        """Cluster of each CS entry, in entry order — the token's journey
        at cluster granularity."""
        return [c for _, _, _, c in sorted(self.intervals)]

    def locality_ratio(self) -> float:
        """Fraction of consecutive CS entries that stay in the same
        cluster.  High values mean the mutual exclusion service batches
        local requests (the composition's whole point); a flat algorithm
        at high contention approaches the random baseline ``1/n_clusters``.
        """
        clusters = self.entry_clusters()
        if len(clusters) < 2:
            return 1.0
        same = sum(
            1 for a, b in zip(clusters, clusters[1:]) if a == b
        )
        return same / (len(clusters) - 1)

    def cluster_runs(self) -> List[Tuple[int, int]]:
        """Maximal runs of consecutive same-cluster entries as
        ``(cluster, length)`` pairs."""
        runs: List[Tuple[int, int]] = []
        for cluster in self.entry_clusters():
            if runs and runs[-1][0] == cluster:
                runs[-1] = (cluster, runs[-1][1] + 1)
            else:
                runs.append((cluster, 1))
        return runs

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(self, width: int = 72) -> str:
        """ASCII gantt: one row per cluster, ``#`` where some application
        process of that cluster occupied the CS during the bucket."""
        if not self.intervals:
            return "(no critical sections recorded)"
        start = min(t0 for t0, _, _, _ in self.intervals)
        end = max(t1 for _, t1, _, _ in self.intervals)
        span = max(end - start, 1e-9)
        bucket = span / width
        rows = []
        for ci in range(self.topology.n_clusters):
            cells = [" "] * width
            for t0, t1, _, cluster in self.intervals:
                if cluster != ci:
                    continue
                first = int((t0 - start) / bucket)
                last = int(math.ceil((t1 - start) / bucket)) - 1
                for k in range(max(first, 0), min(last, width - 1) + 1):
                    cells[k] = "#"
            name = self.topology.clusters[ci].name[:10].ljust(10)
            rows.append(f"{name}|{''.join(cells)}|")
        header = (
            f"CS occupancy, t = {start:.1f} .. {end:.1f} ms "
            f"({bucket:.1f} ms/column)"
        )
        return "\n".join([header, *rows])
