"""Distributed mutual exclusion algorithms.

The paper's evaluated trio — Martin's ring (§2.1), Naimi-Tréhel's tree
(§2.2) and Suzuki-Kasami's broadcast (§2.3) — plus extension/baseline
algorithms (Raymond, Ricart-Agrawala, Lamport, centralized server).  All
share the :class:`~repro.mutex.base.MutexPeer` interface, which is what
lets the composition layer plug any of them in at either level.
"""

from .base import MutexPeer, PeerState
from .centralized import CentralizedPeer
from .lamport import LamportPeer
from .maekawa import MaekawaPeer, grid_quorums
from .martin import MartinPeer
from .naimi_trehel import NaimiTrehelPeer
from .priority_naimi import (
    ClusterAffinityPolicy,
    FifoPolicy,
    PriorityNaimiPeer,
    PriorityPolicy,
    QueueEntry,
    SchedulingPolicy,
)
from .raymond import RaymondPeer, balanced_tree_parents
from .registry import (
    AlgorithmInfo,
    available_algorithms,
    get_algorithm,
    register,
)
from .ricart_agrawala import RicartAgrawalaPeer
from .suzuki_kasami import SuzukiKasamiPeer

__all__ = [
    "MutexPeer",
    "PeerState",
    "MartinPeer",
    "NaimiTrehelPeer",
    "SuzukiKasamiPeer",
    "RaymondPeer",
    "balanced_tree_parents",
    "RicartAgrawalaPeer",
    "LamportPeer",
    "MaekawaPeer",
    "grid_quorums",
    "CentralizedPeer",
    "PriorityNaimiPeer",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "ClusterAffinityPolicy",
    "QueueEntry",
    "AlgorithmInfo",
    "register",
    "get_algorithm",
    "available_algorithms",
]
