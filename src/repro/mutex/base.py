"""Common interface of every mutual exclusion algorithm.

The composition approach's central requirement (paper §3.1) is that the
composed algorithms need **no modification**: the coordinator drives each
level purely through the classical interface — request the CS, release
the CS, get told when the CS is granted.  One extension is needed for the
coordinator to work (paper Fig 2, lines 8 and 15): the process currently
*holding* the right to the CS must be able to learn that someone else is
waiting.  Every algorithm here therefore exposes:

``request_cs()`` / ``release_cs()``
    The classical entry points (the paper's ``IntraCSRequest`` /
    ``IntraCSRelease`` and ``InterCSRequest`` / ``InterCSRelease``).
``on_granted``
    Callbacks fired when this peer enters the CS.
``on_pending_request`` / ``has_pending_request``
    Callbacks fired (and a queryable flag) when this peer, while holding
    the token / being inside the CS, learns another peer wants in.  This
    is observable in every algorithm without modifying its protocol: it
    is exactly the event "a request reached the current holder and had to
    be queued or deferred".

Peers are state machines over three states (paper Fig 1a): ``NO_REQ``,
``REQ`` and ``CS``.
"""

from __future__ import annotations

import enum
from abc import abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..net.message import DEFAULT_MESSAGE_SIZE, Message
from ..net.network import Network
from ..sim.kernel import Simulator
from ..sim.process import Process

__all__ = ["PeerState", "MutexPeer"]

#: Identity memo of already-validated peer tuples: ``id(tuple) ->
#: tuple``.  The strong reference pins the id for the memo's lifetime,
#: so a hit is always the same live object.  Bounded: cleared wholesale
#: past the cap (re-validation is the only cost).
_PEER_TABLES: dict = {}
_PEER_TABLES_MAX = 4096


def _intern_peers(peers: Sequence[int]) -> Tuple[int, ...]:
    """Validated, canonical peer tuple — shared across an instance.

    Every peer of one algorithm instance receives the same ``peers``
    sequence; interning makes them share **one** tuple object (O(N)
    total instead of an O(N) copy per peer, i.e. O(N²) per instance) and
    runs the duplicate check once instead of once per peer.  Constructing
    a 5k-node flat instance goes from ~25M tuple slots to 5k.
    """
    if type(peers) is tuple and _PEER_TABLES.get(id(peers)) is peers:
        return peers
    canon = tuple(int(p) for p in peers)
    if len(set(canon)) != len(canon):
        raise ProtocolError(f"duplicate peers in {peers}")
    if type(peers) is tuple and canon == peers:
        canon = peers  # reuse the caller's tuple: later peers hit the memo
    if len(_PEER_TABLES) >= _PEER_TABLES_MAX:
        _PEER_TABLES.clear()
    _PEER_TABLES[id(canon)] = canon
    return canon


class PeerState(enum.Enum):
    """The classical mutual exclusion automaton states (paper Fig 1a)."""

    NO_REQ = "NO_REQ"
    REQ = "REQ"
    CS = "CS"


class MutexPeer(Process):
    """One participant in a distributed mutual exclusion algorithm.

    Parameters
    ----------
    sim, net:
        Kernel and transport.
    node:
        The node this peer runs on.
    peers:
        Node ids of **all** participants of this algorithm instance (in a
        composition: the nodes of one cluster for an intra instance, the
        coordinator nodes for the inter instance).  Must include ``node``.
    port:
        Network port shared by the instance's peers; also its identity
        for message statistics (ports starting with ``"inter"`` are
        counted as inter-algorithm traffic).
    initial_holder:
        The peer initially holding the token (or, for permission-based
        algorithms, the notional favourite).  Defaults to ``peers[0]``.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        node: int,
        peers: Sequence[int],
        port: str,
        initial_holder: Optional[int] = None,
    ) -> None:
        super().__init__(sim, f"{port}@{node}")
        if node not in peers:
            raise ProtocolError(f"node {node} not in peer set {peers}")
        self.net = net
        self.node = int(node)
        self.peers: Tuple[int, ...] = _intern_peers(peers)
        self.port = port
        if initial_holder is None:
            initial_holder = self.peers[0]
        if initial_holder not in self.peers:
            raise ProtocolError(
                f"initial holder {initial_holder} not in peer set"
            )
        self.initial_holder = int(initial_holder)
        self._state = PeerState.NO_REQ
        self.on_granted: List[Callable[[], None]] = []
        self.on_pending_request: List[Callable[[], None]] = []
        #: number of times this peer entered the CS
        self.cs_count = 0
        net.register(node, port, self._on_message)

    # ------------------------------------------------------------------ #
    # public state
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> PeerState:
        """Current automaton state (Fig 1a)."""
        return self._state

    @property
    def in_cs(self) -> bool:
        return self._state is PeerState.CS

    @property
    @abstractmethod
    def holds_token(self) -> bool:
        """Whether this peer currently holds the algorithm's token.

        Permission-based algorithms report ``True`` exactly while in the
        CS (the moment they hold every permission)."""

    @property
    @abstractmethod
    def has_pending_request(self) -> bool:
        """Whether this peer knows of another peer waiting for the CS.

        Only meaningful (and only guaranteed accurate) while this peer
        holds the token / is in the CS — which is the only situation the
        coordinator consults it in."""

    # ------------------------------------------------------------------ #
    # state fingerprinting (model checker support)
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> Tuple:
        """Canonical, hashable snapshot of this peer's protocol state.

        Used by the bounded model checker (:mod:`repro.analysis.explore`)
        to deduplicate explored global states.  The snapshot must be a
        pure function of protocol state — backend-independent (the
        interpreted and compiled implementations of one algorithm must
        fingerprint identically) and free of kernel/transport artefacts
        such as timestamps or sequence numbers.  Reading it never mutates
        anything.
        """
        return (
            self.algorithm_name,
            self.node,
            self._state.value,
            *self._fingerprint_state(),
        )

    def _fingerprint_state(self) -> Tuple:
        """Algorithm-specific part of :meth:`fingerprint`.

        Subclasses return a flat tuple of hashable values covering every
        protocol variable that influences future behaviour (token
        position, queues, sequence counters ...).  Values must be
        canonical across backends: e.g. numpy integers normalised with
        ``int()``, dict contents listed in ``self.peers`` order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the state-"
            "fingerprint protocol required by repro.analysis.explore"
        )

    # ------------------------------------------------------------------ #
    # public operations
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        """Ask for the critical section (``NO_REQ -> REQ``, or straight
        to ``CS`` when the request can be granted locally).

        Raises :class:`ProtocolError` if called while already requesting
        or inside the CS.
        """
        if self._state is not PeerState.NO_REQ:
            raise ProtocolError(
                f"{self.name}: request_cs() in state {self._state.value}"
            )
        self._state = PeerState.REQ
        if "cs_request" in self.sim.trace.active_kinds:
            self.sim.trace.emit(
                "cs_request", time=self.now, node=self.node, port=self.port
            )
        self._do_request()

    def release_cs(self) -> None:
        """Leave the critical section (``CS -> NO_REQ``).

        Raises :class:`ProtocolError` if not currently in the CS.
        """
        if self._state is not PeerState.CS:
            raise ProtocolError(
                f"{self.name}: release_cs() in state {self._state.value}"
            )
        self._state = PeerState.NO_REQ
        if "cs_exit" in self.sim.trace.active_kinds:
            self.sim.trace.emit(
                "cs_exit", time=self.now, node=self.node, port=self.port
            )
        self._do_release()

    # ------------------------------------------------------------------ #
    # subclass protocol
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _do_request(self) -> None:
        """Algorithm-specific request logic (state already set to REQ)."""

    @abstractmethod
    def _do_release(self) -> None:
        """Algorithm-specific release logic (state already set to NO_REQ)."""

    # ------------------------------------------------------------------ #
    # helpers for subclasses
    # ------------------------------------------------------------------ #
    def _grant(self) -> None:
        """Enter the CS and notify subscribers.  Subclasses call this when
        the token arrives (or all permissions are in)."""
        if self._state is PeerState.CS:
            raise ProtocolError(f"{self.name}: double grant")
        self._state = PeerState.CS
        self.cs_count += 1
        if "cs_enter" in self.sim.trace.active_kinds:
            self.sim.trace.emit(
                "cs_enter", time=self.now, node=self.node, port=self.port
            )
        for fn in tuple(self.on_granted):
            fn()

    def _notify_pending(self) -> None:
        """Tell subscribers that, while we hold the CS right, another peer
        asked for it.  May fire more than once per holding period;
        subscribers must be idempotent."""
        for fn in tuple(self.on_pending_request):
            fn()

    def _send(self, dst: int, kind: str, payload: Optional[dict] = None,
              size: int = DEFAULT_MESSAGE_SIZE) -> None:
        """Send a protocol message to peer ``dst`` on this instance's port."""
        self.net.send(self.node, dst, self.port, kind, payload, size)

    def _broadcast(self, kind: str, payload: Optional[dict] = None,
                   size: int = DEFAULT_MESSAGE_SIZE) -> None:
        """Send ``kind`` to every other peer (N-1 messages)."""
        for dst in self.peers:
            if dst != self.node:
                self.net.send(self.node, dst, self.port, kind,
                              dict(payload) if payload else {}, size)

    def _on_message(self, msg: Message) -> None:
        """Dispatch an incoming message to ``_on_<kind>``."""
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ProtocolError(
                f"{self.name}: unexpected message kind {msg.kind!r}"
            )
        handler(msg)

    def shutdown(self) -> None:
        """Detach from the network and cancel timers (test teardown)."""
        self.cancel_timers()
        self.net.unregister(self.node, self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} state={self._state.value} "
            f"token={self.holds_token}>"
        )
