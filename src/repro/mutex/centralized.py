"""Centralized coordinator-server algorithm (baseline).

The textbook baseline and the scheme several related-work systems use at
the lower level (Madhuram & Kumar, DSM protocols [1, 2]): one designated
peer — the *server*, by convention the initial holder — grants the CS.
Clients send ``request`` / ``release`` to the server; the server queues
and answers with ``grant``.  3 messages per CS, but the server is a
bottleneck and every exchange pays the client-server latency, which is
why the paper's decentralised token algorithms are preferred on a grid.

The server peer participates like any other (its own requests just skip
the network), so the class satisfies the common interface, composition
included.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..errors import ProtocolError
from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["CentralizedPeer"]


class CentralizedPeer(MutexPeer):
    """One peer of the centralized server algorithm.

    Message kinds: ``request``, ``release`` (client -> server) and
    ``grant`` (server -> client).
    """

    algorithm_name = "centralized"
    topology = "star"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.server = self.initial_holder
        # Server-side state (meaningful only on the server peer).
        self._busy_with: Optional[int] = None
        self._wait_q: Deque[int] = deque()

    # ------------------------------------------------------------------ #
    @property
    def is_server(self) -> bool:
        return self.node == self.server

    @property
    def holds_token(self) -> bool:
        return self.state is PeerState.CS

    @property
    def has_pending_request(self) -> bool:
        if self.is_server:
            return bool(self._wait_q)
        # A client only knows about others through its own grant; the
        # composition consults the flag on the CS holder, so the server
        # relays the information when it notifies.
        return self._client_pending

    def _fingerprint_state(self) -> tuple:
        return (
            int(self.server),
            None if self._busy_with is None else int(self._busy_with),
            tuple(int(w) for w in self._wait_q),
            self._client_pending,
        )

    # ------------------------------------------------------------------ #
    # Set on a client when the server reports a waiter behind its CS.
    _client_pending = False

    def _do_request(self) -> None:
        if self.is_server:
            self._server_handle_request(self.node)
        else:
            self._client_pending = False
            self._send(self.server, "request")

    def _do_release(self) -> None:
        self._client_pending = False
        if self.is_server:
            self._server_handle_release(self.node)
        else:
            self._send(self.server, "release")

    # ------------------------------------------------------------------ #
    # server logic
    # ------------------------------------------------------------------ #
    def _server_handle_request(self, origin: int) -> None:
        if self._busy_with is None:
            self._busy_with = origin
            self._grant_to(origin)
        else:
            self._wait_q.append(origin)
            if self._busy_with == self.node and self.state is PeerState.CS:
                self._notify_pending()
            elif self._busy_with != self.node:
                # Tell the current CS holder someone is waiting, so a
                # composition coordinator holding the CS can react.
                self._send(self._busy_with, "waiting")

    def _server_handle_release(self, origin: int) -> None:
        if self._busy_with != origin:
            raise ProtocolError(
                f"{self.name}: release from {origin} but CS belongs to "
                f"{self._busy_with}"
            )
        if self._wait_q:
            nxt = self._wait_q.popleft()
            self._busy_with = nxt
            self._grant_to(nxt)
        else:
            self._busy_with = None

    def _grant_to(self, origin: int) -> None:
        if origin == self.node:
            if self.state is not PeerState.REQ:
                raise ProtocolError(f"{self.name}: self-grant while not requesting")
            self._grant()
        else:
            # The grant carries whether waiters are already queued, so a
            # composition coordinator entering IN learns about demand that
            # predates its own grant (has_pending_request must be true).
            self._send(origin, "grant", {"pending": bool(self._wait_q)})

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        if not self.is_server:
            raise ProtocolError(f"{self.name}: client got a request")
        self._server_handle_request(msg.src)

    def _on_release(self, msg: Message) -> None:
        if not self.is_server:
            raise ProtocolError(f"{self.name}: client got a release")
        self._server_handle_release(msg.src)

    def _on_grant(self, msg: Message) -> None:
        if self.state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: grant arrived in state {self.state.value}"
            )
        self._client_pending = bool(msg.payload.get("pending"))
        self._grant()

    def _on_waiting(self, msg: Message) -> None:
        # Server-side notification: someone queued behind our CS.  May
        # race with our own release (then it is stale — ignore).
        if self.state is PeerState.CS:
            self._client_pending = True
            self._notify_pending()
