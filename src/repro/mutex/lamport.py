"""Lamport's queue-based permission algorithm (baseline; paper ref [7]).

The oldest distributed mutual exclusion algorithm: every peer maintains a
replicated request queue ordered by Lamport timestamps.  A requester
broadcasts ``request``; every receiver acknowledges with ``ack``; a
release is broadcast as ``release``.  A peer enters the CS when its own
request heads its local queue *and* it has received a message (ack or
later request) timestamped after its request from every other peer —
``3(N-1)`` messages per CS.

Provided as a second permission-based baseline for the benchmarks; like
Ricart-Agrawala it also satisfies the composition interface.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["LamportPeer"]


class LamportPeer(MutexPeer):
    """One peer of Lamport's mutual exclusion algorithm.

    Message kinds: ``request``, ``ack``, ``release`` (all timestamped).
    """

    algorithm_name = "lamport"
    topology = "complete-graph"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.clock = 0
        # Replicated queue of (timestamp, origin) requests.
        self._queue: List[Tuple[int, int]] = []
        # Highest timestamp seen from each other peer.
        self._seen: Dict[int, int] = {p: 0 for p in self.peers if p != self.node}

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self.state is PeerState.CS

    @property
    def has_pending_request(self) -> bool:
        return any(origin != self.node for _, origin in self._queue)

    # ------------------------------------------------------------------ #
    def _tick(self, received_ts: int = 0) -> int:
        self.clock = max(self.clock, received_ts) + 1
        return self.clock

    def _do_request(self) -> None:
        ts = self._tick()
        heapq.heappush(self._queue, (ts, self.node))
        if not self._seen:
            self._grant()
            return
        self._broadcast("request", {"ts": ts, "origin": self.node})

    def _do_release(self) -> None:
        self._drop_own_request()
        ts = self._tick()
        self._broadcast("release", {"ts": ts, "origin": self.node})

    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        ts, origin = msg.payload["ts"], msg.payload["origin"]
        self._tick(ts)
        self._seen[origin] = max(self._seen[origin], ts)
        heapq.heappush(self._queue, (ts, origin))
        if self.state is PeerState.CS:
            self._notify_pending()
        self._send(origin, "ack", {"ts": self._tick()})
        self._try_enter()

    def _on_ack(self, msg: Message) -> None:
        ts = msg.payload["ts"]
        self._tick(ts)
        self._seen[msg.src] = max(self._seen[msg.src], ts)
        self._try_enter()

    def _on_release(self, msg: Message) -> None:
        ts, origin = msg.payload["ts"], msg.payload["origin"]
        self._tick(ts)
        self._seen[origin] = max(self._seen[origin], ts)
        self._queue = [(t, o) for (t, o) in self._queue if o != origin]
        heapq.heapify(self._queue)
        self._try_enter()

    # ------------------------------------------------------------------ #
    def _try_enter(self) -> None:
        if self.state is not PeerState.REQ:
            return
        own = self._own_request()
        if own is None or not self._queue:
            return
        if self._queue[0] != own:
            return
        # Order-insensitive reduction (`all` over pure comparisons) of a
        # dict keyed and populated from the ordered `peers` tuple — the
        # iteration order can never reach the wire.
        # repro: allow[RPR003] order-insensitive all() over insertion-ordered dict
        if all(seen > own[0] for seen in self._seen.values()):
            self._grant()

    def _own_request(self) -> Optional[Tuple[int, int]]:
        for entry in self._queue:
            if entry[1] == self.node:
                return entry
        return None

    def _drop_own_request(self) -> None:
        self._queue = [(t, o) for (t, o) in self._queue if o != self.node]
        heapq.heapify(self._queue)
