"""Maekawa's √N quorum algorithm (extension; paper ref [9]).

The second permission-based family member the paper cites: instead of
asking *all* other peers, each peer asks only its **quorum** — a set of
size ≈ √N arranged so any two quorums intersect.  Each peer grants a
single ``locked`` vote at a time; a peer enters the CS once its whole
quorum has voted for it.  Because votes are exclusive, intersecting
quorums serialise critical sections.

Deadlock avoidance uses Maekawa's classic inquire/relinquish machinery:
requests carry Lamport ``(timestamp, id)`` priorities; an arbiter that
has voted for a *younger* request than a newly arrived older one sends
``inquire`` to its current candidate, who gives the vote back
(``relinquish``) unless it is already in the CS; younger arrivals are
answered with ``failed`` so the candidate knows a relinquish may be
required.

Quorums here are the standard grid construction: peers are laid out on a
⌈√N⌉ × ⌈√N⌉ grid; a peer's quorum is its row plus its column (including
itself), giving |Q| ≈ 2√N and pairwise intersection.

Message cost: 3|Q| per CS uncontended (request/locked/release), up to
5|Q| under contention — the ``O(√N)`` the paper's taxonomy refers to.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ProtocolError
from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["MaekawaPeer", "grid_quorums"]


def grid_quorums(peers: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Row+column quorums over a √N × √N layout of ``peers``.

    Every quorum contains its owner; any two quorums intersect (two grid
    positions always share a row-column crossing).  The last grid row may
    be partial; column walks simply skip the missing cells.
    """
    n = len(peers)
    side = math.ceil(math.sqrt(n))
    quorums: Dict[int, Tuple[int, ...]] = {}
    for idx, peer in enumerate(peers):
        row, col = divmod(idx, side)
        members: Set[int] = set()
        for c in range(side):  # the row
            j = row * side + c
            if j < n:
                members.add(peers[j])
        for r in range(side):  # the column
            j = r * side + col
            if j < n:
                members.add(peers[j])
        quorums[peer] = tuple(sorted(members))
    return quorums


class MaekawaPeer(MutexPeer):
    """One peer of Maekawa's quorum-based mutual exclusion algorithm.

    Message kinds: ``request``, ``locked`` (vote), ``failed``,
    ``inquire``, ``relinquish``, ``release``.
    """

    algorithm_name = "maekawa"
    topology = "sqrt-N grid quorums"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.quorum: Tuple[int, ...] = grid_quorums(self.peers)[self.node]
        self.clock = 0
        # --- requester side ------------------------------------------- #
        self._my_ts: Optional[Tuple[int, int]] = None
        self._votes: Set[int] = set()
        self._failed_seen = False
        # Inquires that overtook their own "locked" message (UDP-like
        # reordering): answered the moment the vote arrives.
        self._pending_inquires: Set[int] = set()
        # --- arbiter side ---------------------------------------------- #
        #: request currently holding our vote: (ts, origin) or None
        self._voted_for: Optional[Tuple[int, int]] = None
        #: deferred requests, kept sorted by (ts, id)
        self._wait: List[Tuple[int, int]] = []
        self._inquired = False
        #: whether this arbiter already hinted its vote holder that a
        #: request is waiting (one hint per holding period)
        self._hinted = False
        #: holder side: a "waiting" hint was received while in the CS
        self._remote_pending = False

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self.state is PeerState.CS

    @property
    def has_pending_request(self) -> bool:
        # A waiter is visible either through our own arbiter queue (its
        # quorum contains us) or through a "waiting" hint from an arbiter
        # whose vote we hold (its quorum intersects ours elsewhere).
        return self._remote_pending or any(
            origin != self.node for _, origin in self._wait
        )

    # ------------------------------------------------------------------ #
    # requester side
    # ------------------------------------------------------------------ #
    def _tick(self, seen: int = 0) -> int:
        self.clock = max(self.clock, seen) + 1
        return self.clock

    def _do_request(self) -> None:
        ts = self._tick()
        self._my_ts = (ts, self.node)
        self._votes = set()
        self._failed_seen = False
        self._pending_inquires = set()
        self._remote_pending = False
        for member in self.quorum:
            if member == self.node:
                self._arbiter_request(ts, self.node)
            else:
                self._send(member, "request", {"ts": ts, "origin": self.node})

    def _do_release(self) -> None:
        self._my_ts = None
        self._votes = set()
        self._remote_pending = False
        for member in self.quorum:
            if member == self.node:
                self._arbiter_release(self.node)
            else:
                self._send(member, "release")

    def _got_vote(self, arbiter: int) -> None:
        if self.state is not PeerState.REQ:
            return  # stale vote after relinquish bookkeeping
        if arbiter in self._pending_inquires:
            # The inquire overtook this vote: give it straight back.
            self._pending_inquires.discard(arbiter)
            self._return_vote(arbiter)
            return
        self._votes.add(arbiter)
        if len(self._votes) == len(self.quorum):
            self._pending_inquires.clear()
            self._grant()

    # ------------------------------------------------------------------ #
    # arbiter side
    # ------------------------------------------------------------------ #
    def _arbiter_request(self, ts: int, origin: int) -> None:
        entry = (ts, origin)
        if self._voted_for is None:
            self._voted_for = entry
            self._vote(origin)
            return
        self._enqueue(entry)
        holder = self._voted_for[1]
        if holder == self.node:
            if self.state is PeerState.CS:
                self._notify_pending()
        elif not self._hinted:
            # Hint the peer our vote currently backs that someone is
            # waiting.  Not part of classic Maekawa: it is the extra
            # observable the composition interface needs, since the
            # waiter's quorum may not contain the CS holder itself.
            self._hinted = True
            self._send(holder, "waiting")
        if entry < self._voted_for and not self._inquired:
            # An older request lost the race: ask our candidate to give
            # the vote back (it refuses only if already in the CS).
            self._inquired = True
            self._ask_relinquish(self._voted_for[1])
        elif entry > self._voted_for:
            self._fail(origin)

    def _arbiter_release(self, origin: int) -> None:
        if self._voted_for is None or self._voted_for[1] != origin:
            raise ProtocolError(
                f"{self.name}: release from {origin} but vote is held by "
                f"{self._voted_for}"
            )
        self._voted_for = None
        self._inquired = False
        self._hinted = False
        if self._wait:
            self._voted_for = self._wait.pop(0)
            self._vote(self._voted_for[1])
            self._hint_remaining()

    def _arbiter_relinquished(self, origin: int) -> None:
        """Our candidate gave the vote back: hand it to the queue head."""
        if self._voted_for is None or self._voted_for[1] != origin:
            return  # stale (release crossed the inquire)
        self._enqueue(self._voted_for)
        self._voted_for = self._wait.pop(0)
        self._inquired = False
        self._hinted = False
        self._vote(self._voted_for[1])
        self._hint_remaining()

    def _hint_remaining(self) -> None:
        """After handing the vote to a new candidate, tell it about
        entries still queued behind it — otherwise a candidate whose own
        quorum does not overlap the waiters would enter the CS blind to
        them (fatal for the composition's holder-observable semantics)."""
        if (
            self._wait
            and self._voted_for is not None
            and self._voted_for[1] != self.node
        ):
            self._hinted = True
            self._send(self._voted_for[1], "waiting")

    def _enqueue(self, entry: Tuple[int, int]) -> None:
        if entry not in self._wait:
            self._wait.append(entry)
            self._wait.sort()

    # local-vs-remote helpers: the arbiter may be voting for itself.
    def _vote(self, origin: int) -> None:
        if origin == self.node:
            self._got_vote(self.node)
        else:
            self._send(origin, "locked")

    def _fail(self, origin: int) -> None:
        if origin == self.node:
            self._failed_seen = True
        else:
            self._send(origin, "failed")

    def _ask_relinquish(self, origin: int) -> None:
        if origin == self.node:
            self._maybe_relinquish(self.node)
        else:
            self._send(origin, "inquire")

    def _maybe_relinquish(self, arbiter: int) -> None:
        """Inquire handling on the requester side: give the vote back
        unless we already won (then our release frees it).  Priorities
        guarantee an inquire only ever serves a strictly older request,
        so relinquishing cannot livelock the oldest requester."""
        if self.state is PeerState.CS:
            return  # we won; the release will free the vote
        if self.state is not PeerState.REQ:
            return  # stale inquire
        if arbiter in self._votes:
            self._votes.discard(arbiter)
            self._return_vote(arbiter)
        else:
            # The vote itself is still in flight (reordered link);
            # answer as soon as it lands.
            self._pending_inquires.add(arbiter)

    def _return_vote(self, arbiter: int) -> None:
        if arbiter == self.node:
            self._arbiter_relinquished(self.node)
        else:
            self._send(arbiter, "relinquish")

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        self._tick(msg.payload["ts"])
        self._arbiter_request(msg.payload["ts"], msg.payload["origin"])

    def _on_locked(self, msg: Message) -> None:
        self._got_vote(msg.src)

    def _on_failed(self, msg: Message) -> None:
        if self.state is PeerState.REQ:
            self._failed_seen = True

    def _on_inquire(self, msg: Message) -> None:
        self._maybe_relinquish(msg.src)

    def _on_relinquish(self, msg: Message) -> None:
        self._arbiter_relinquished(msg.src)

    def _on_release(self, msg: Message) -> None:
        self._arbiter_release(msg.src)

    def _on_waiting(self, msg: Message) -> None:
        # Arbiter hint: a request queued behind the vote backing us.
        if self.state is PeerState.CS:
            self._remote_pending = True
            self._notify_pending()
        elif self.state is PeerState.REQ:
            # The hint raced ahead of our own CS entry (the arbiter voted
            # for us before we collected the full quorum).  Remember it:
            # has_pending_request must already be true when we enter, or
            # a composition coordinator would park in IN forever.
            self._remote_pending = True
        # NO_REQ: stale (we released before the hint landed) — ignore;
        # _do_request resets the flag for the next cycle.
