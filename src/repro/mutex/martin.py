"""Martin's ring algorithm (paper §2.1).

Peers form a logical ring (the order of the ``peers`` tuple).  Token
*requests* travel in one direction — each peer sends requests to its ring
**successor** — while the *token* travels in the opposite direction, from
holder to **predecessor**.

Two optimisations from the paper are implemented:

* a peer that is itself requesting absorbs an incoming request instead of
  forwarding it: the token it is waiting for will pass through here
  anyway, and it remembers to hand it onward after its own CS;
* when the token passes a peer that merely relayed a request, that peer
  forwards the token toward its predecessor (the ``_owe_pred`` flag keeps
  the promise made when the request was relayed).

Per-CS cost: ``2(x+1)`` messages, where ``x`` is the number of peers
between requester and holder — ``N`` on average.  ``T_req`` and
``T_token`` are both ``(x+1)·T``.
"""

from __future__ import annotations

from typing import Any

from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["MartinPeer"]


class MartinPeer(MutexPeer):
    """One peer of Martin's ring-based token algorithm.

    Message kinds: ``request`` (to successor), ``token`` (to predecessor).
    """

    #: registry name
    algorithm_name = "martin"
    topology = "ring"
    #: Hot-state layout consumed by :mod:`repro.compile.state` (ring
    #: position scalars; no per-peer maps).
    compiled_state = {
        "scalars": ("_holds_token", "_owe_pred", "successor", "predecessor"),
        "peer_arrays": (),
    }

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        index = self.peers.index(self.node)
        self.successor = self.peers[(index + 1) % len(self.peers)]
        self.predecessor = self.peers[(index - 1) % len(self.peers)]
        self._holds_token = self.node == self.initial_holder
        # True when the token, once through with our own needs, must be
        # passed to our predecessor (a request came from that side and has
        # not been satisfied yet).
        self._owe_pred = False

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self._holds_token

    @property
    def has_pending_request(self) -> bool:
        return self._owe_pred

    def _fingerprint_state(self) -> tuple:
        return (self._holds_token, self._owe_pred)

    # ------------------------------------------------------------------ #
    # requesting
    # ------------------------------------------------------------------ #
    def _do_request(self) -> None:
        if self._holds_token:
            # Already privileged: enter directly, zero messages.
            self._grant()
            return
        if len(self.peers) == 1:
            # Degenerate single-peer ring without the token cannot happen
            # (the single peer is always the initial holder).
            raise AssertionError("single-peer ring lost its token")
        self._send(self.successor, "request")

    # ------------------------------------------------------------------ #
    # releasing
    # ------------------------------------------------------------------ #
    def _do_release(self) -> None:
        if self._owe_pred:
            self._pass_token()
        # Otherwise keep the token idle; a later request will collect it.

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        if self._holds_token:
            if self.state is PeerState.CS:
                # Serve the predecessor side after our own CS.
                first = not self._owe_pred
                self._owe_pred = True
                if first:
                    self._notify_pending()
            else:
                # Idle holder: hand the token over immediately.
                self._owe_pred = True
                self._pass_token()
        else:
            if self.state is PeerState.REQ or self._owe_pred:
                # Our own pending request (or an earlier relayed one)
                # already guarantees the token will come through here;
                # absorb the duplicate and remember the obligation.
                self._owe_pred = True
            else:
                self._owe_pred = True
                self._send(self.successor, "request")

    def _on_token(self, msg: Message) -> None:
        self._holds_token = True
        if self.state is PeerState.REQ:
            self._grant()
        elif self._owe_pred:
            # We only relayed a request: keep the token moving.
            self._pass_token()
        # A token arriving with no local interest and no obligation would
        # be a protocol violation, but it legitimately happens transiently
        # under fault injection; holding it keeps the system safe.

    # ------------------------------------------------------------------ #
    def _pass_token(self) -> None:
        """Send the token to our predecessor, discharging the obligation."""
        self._holds_token = False
        self._owe_pred = False
        self._send(self.predecessor, "token")
