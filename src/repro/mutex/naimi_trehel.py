"""Naimi-Tréhel's tree algorithm (paper §2.2).

Two distributed structures are maintained:

* the **last tree**: each peer's ``last`` points toward the *probable*
  owner — the peer that will hold the token last among current
  requesters.  Requests are forwarded along ``last`` pointers and every
  hop performs *path reversal*, re-pointing ``last`` at the requester, so
  the tree stays shallow (``O(log N)`` average request path).
* the **next queue**: a distributed FIFO of unsatisfied requests; each
  peer's ``next`` names the peer to hand the token to after its own CS.

Per-CS cost: ``O(log N)`` messages on average; ``T_req ≈ log(N)·T``,
``T_token = T``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ProtocolError
from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["NaimiTrehelPeer"]


class NaimiTrehelPeer(MutexPeer):
    """One peer of the Naimi-Tréhel token algorithm.

    Message kinds: ``request`` (carries the original requester's id,
    forwarded along ``last`` pointers), ``token``.
    """

    algorithm_name = "naimi"
    topology = "tree"
    #: Hot-state layout consumed by :mod:`repro.compile.state` (plain
    #: data, so the mutex layer never imports the compile package).
    compiled_state = {
        "scalars": ("_holds_token", "last", "next"),
        "peer_arrays": (),
    }

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._holds_token = self.node == self.initial_holder
        # Probable owner.  The initial holder is the tree root (last ==
        # itself); everyone else points at it.
        self.last: int = self.initial_holder
        # Next peer to hand the token to after our CS (None = nobody).
        self.next: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self._holds_token

    @property
    def has_pending_request(self) -> bool:
        return self.next is not None

    @property
    def is_root(self) -> bool:
        """Whether this peer is the current root of the last tree."""
        return self.last == self.node

    def _fingerprint_state(self) -> tuple:
        return (self._holds_token, int(self.last),
                None if self.next is None else int(self.next))

    # ------------------------------------------------------------------ #
    # requesting
    # ------------------------------------------------------------------ #
    def _do_request(self) -> None:
        if self._holds_token:
            # We are the idle root holding the token: enter directly.
            self._grant()
            return
        self._send(self.last, "request", {"origin": self.node})
        # Path reversal: we are the new probable owner.
        self.last = self.node

    # ------------------------------------------------------------------ #
    # releasing
    # ------------------------------------------------------------------ #
    def _do_release(self) -> None:
        if self.next is not None:
            dst, self.next = self.next, None
            self._holds_token = False
            self._send(dst, "token")
        # else: keep the token idle; we stay the tree root.

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        origin = msg.payload["origin"]
        if self.is_root:
            if self._holds_token and self.state is PeerState.NO_REQ:
                # Idle holder: grant straight away.
                self._holds_token = False
                self._send(origin, "token")
            else:
                # Either we are in the CS holding the token, or we are
                # ourselves waiting for it: origin comes right after us.
                if self.next is not None:
                    raise ProtocolError(
                        f"{self.name}: second request reached the root "
                        f"while next={self.next} is set"
                    )
                self.next = origin
                if self._holds_token:
                    self._notify_pending()
        else:
            # Not the root: forward toward the probable owner.
            self._send(self.last, "request", {"origin": origin})
        # Path reversal: origin is now the probable owner.
        self.last = origin

    def _on_token(self, msg: Message) -> None:
        if self._holds_token:
            raise ProtocolError(f"{self.name}: received a second token")
        self._holds_token = True
        if self.state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: token arrived in state {self.state.value}"
            )
        self._grant()
