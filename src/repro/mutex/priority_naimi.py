"""Prioritized Naimi-Tréhel with pluggable token scheduling
(extension; paper refs [11] Mueller and [3] Bertier et al.).

The related work offers an *alternative* to the paper's composition:
keep one flat token algorithm but make its scheduling hierarchy-aware.
Mueller [11] extends Naimi-Tréhel with priorities; Bertier et al. [3]
"treat intra-cluster requests before inter-cluster ones".  This module
implements that family so the benchmarks can pit it against the
composition:

* the **last tree** routes requests exactly as in Naimi-Tréhel
  (path-reversal, ``O(log N)`` hops);
* instead of the single distributed ``next`` pointer, pending requests
  live in explicit queues: the **token carries the global queue**, and a
  requesting peer that receives someone else's request **buffers** it
  locally, merging the buffer into the token queue when the token
  arrives (Mueller's local queues);
* on release the holder picks the next peer through a pluggable
  :class:`SchedulingPolicy`:

  - :class:`FifoPolicy` — oldest request first (≈ classic fairness);
  - :class:`PriorityPolicy` — explicit priority levels, FIFO within a
    level (Mueller);
  - :class:`ClusterAffinityPolicy` — same-cluster requests first, with a
    bounded streak and aging so remote clusters cannot starve (the
    Bertier-style hierarchy-aware scheduler).

Liveness: every buffered request eventually reaches the token queue
(buffers only exist at requesting peers, which eventually obtain the
token and merge), and every policy here is *finitely unfair* — it must
pick an entry whose ``skips`` counter is below its aging bound, so
every entry's rank eventually dominates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence

from ..errors import ProtocolError
from ..net.message import DEFAULT_MESSAGE_SIZE, Message
from ..net.topology import GridTopology
from .base import MutexPeer, PeerState

__all__ = [
    "QueueEntry",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "ClusterAffinityPolicy",
    "PriorityNaimiPeer",
]


class QueueEntry:
    """One pending request travelling with the token."""

    __slots__ = ("origin", "ts", "priority", "skips")

    def __init__(
        self, origin: int, ts: float, priority: int = 0, skips: int = 0
    ) -> None:
        self.origin = origin
        self.ts = ts
        self.priority = priority
        self.skips = skips

    def to_wire(self) -> dict:
        return {
            "origin": self.origin, "ts": self.ts,
            "priority": self.priority, "skips": self.skips,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "QueueEntry":
        return cls(data["origin"], data["ts"], data["priority"], data["skips"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueueEntry {self.origin} ts={self.ts:.3f} "
            f"prio={self.priority} skips={self.skips}>"
        )


class SchedulingPolicy(ABC):
    """Chooses which queue entry the released token goes to."""

    #: entries skipped more than this many times must be chosen next
    #: (finite unfairness bound; subclasses may tighten it).
    aging_bound = 16

    @abstractmethod
    def select(self, queue: Sequence[QueueEntry], holder: int) -> int:
        """Index of the entry to serve next (queue is non-empty)."""

    def pick(self, queue: List[QueueEntry], holder: int) -> QueueEntry:
        """Apply :meth:`select`, honour aging, update skip counters and
        remove the winner from the queue."""
        overdue = [
            i for i, e in enumerate(queue) if e.skips >= self.aging_bound
        ]
        if overdue:
            # Serve the most-skipped, oldest entry first.
            index = max(
                overdue, key=lambda i: (queue[i].skips, -queue[i].ts)
            )
        else:
            index = self.select(queue, holder)
            if not 0 <= index < len(queue):
                raise ProtocolError(
                    f"scheduling policy returned invalid index {index}"
                )
        winner = queue.pop(index)
        for entry in queue:
            entry.skips += 1
        return winner


class FifoPolicy(SchedulingPolicy):
    """Oldest request first (global FIFO by enqueue timestamp)."""

    def select(self, queue: Sequence[QueueEntry], holder: int) -> int:
        return min(range(len(queue)), key=lambda i: (queue[i].ts, queue[i].origin))


class PriorityPolicy(SchedulingPolicy):
    """Mueller [11]: highest priority level first, FIFO within a level."""

    def select(self, queue: Sequence[QueueEntry], holder: int) -> int:
        return min(
            range(len(queue)),
            key=lambda i: (-queue[i].priority, queue[i].ts, queue[i].origin),
        )


class ClusterAffinityPolicy(SchedulingPolicy):
    """Bertier et al. [3]: intra-cluster requests before inter-cluster
    ones, with a bounded local streak.

    Parameters
    ----------
    topology:
        Used to compare the holder's cluster with each entry's.
    max_streak:
        After this many consecutive same-cluster grants the policy must
        serve a remote entry (if any) — Bertier's threshold guarding
        against remote starvation, on top of the generic aging bound.
    """

    def __init__(self, topology: GridTopology, max_streak: int = 8) -> None:
        if max_streak < 1:
            raise ProtocolError(f"max_streak must be >= 1, got {max_streak}")
        self.topology = topology
        self.max_streak = max_streak
        self._streak = 0
        self._streak_cluster: Optional[int] = None

    def select(self, queue: Sequence[QueueEntry], holder: int) -> int:
        cluster = self.topology.cluster_of(holder)
        local = [
            i for i, e in enumerate(queue)
            if self.topology.cluster_of(e.origin) == cluster
        ]
        remote = [i for i in range(len(queue)) if i not in local]
        streak_ok = not (
            self._streak_cluster == cluster and self._streak >= self.max_streak
        )
        if local and (streak_ok or not remote):
            if self._streak_cluster == cluster:
                self._streak += 1
            else:
                self._streak_cluster, self._streak = cluster, 1
            pool = local
        else:
            self._streak_cluster, self._streak = None, 0
            pool = remote if remote else local
        return min(pool, key=lambda i: (queue[i].ts, queue[i].origin))


class PriorityNaimiPeer(MutexPeer):
    """Naimi-Tréhel routing with queue-carrying token and pluggable
    scheduling.

    Message kinds: ``request`` (carries origin/ts/priority, forwarded
    along ``last`` pointers), ``token`` (carries the global queue).

    Parameters
    ----------
    policy:
        The :class:`SchedulingPolicy` applied when this peer releases
        the token.  Defaults to :class:`FifoPolicy`.  (Each peer applies
        its own policy instance; give stateful policies one instance per
        peer.)
    priority:
        Fixed priority level attached to this peer's requests.
    """

    algorithm_name = "priority-naimi"
    topology = "dynamic tree + token queue"

    def __init__(
        self,
        *args: Any,
        policy: Optional[SchedulingPolicy] = None,
        priority: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.policy = policy if policy is not None else FifoPolicy()
        self.priority = int(priority)
        self._holds_token = self.node == self.initial_holder
        self.last: int = self.initial_holder
        #: global queue; only meaningful while holding the token
        self.token_queue: List[QueueEntry] = []
        #: requests buffered here while we are ourselves waiting
        self.local_buffer: List[QueueEntry] = []

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self._holds_token

    @property
    def has_pending_request(self) -> bool:
        return bool(self.token_queue) or bool(self.local_buffer)

    @property
    def is_root(self) -> bool:
        return self.last == self.node

    # ------------------------------------------------------------------ #
    def _do_request(self) -> None:
        if self._holds_token:
            self._grant()
            return
        entry = QueueEntry(self.node, self.now, self.priority)
        self._send(self.last, "request", entry.to_wire())
        self.last = self.node

    def _do_release(self) -> None:
        if self.token_queue:
            self._pass_token()
        # else: keep the token idle; we stay the tree root.

    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        entry = QueueEntry.from_wire(msg.payload)
        if self._holds_token:
            if self.state is PeerState.CS:
                self.token_queue.append(entry)
                self._notify_pending()
            else:
                # Idle holder: serve through the policy so a freshly
                # arrived remote request still respects affinity rules.
                self.token_queue.append(entry)
                self._pass_token()
        elif self.state is PeerState.REQ or self.local_buffer:
            # We are waiting ourselves: buffer, merge on token arrival.
            self.local_buffer.append(entry)
        else:
            self._send(self.last, "request", entry.to_wire())
        self.last = entry.origin

    def _on_token(self, msg: Message) -> None:
        if self._holds_token:
            raise ProtocolError(f"{self.name}: received a second token")
        if self.state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: token arrived in state {self.state.value}"
            )
        self._holds_token = True
        self.token_queue = [
            QueueEntry.from_wire(d) for d in msg.payload["queue"]
        ]
        if self.local_buffer:
            self.token_queue.extend(self.local_buffer)
            self.local_buffer = []
        self._grant()

    # ------------------------------------------------------------------ #
    def _pass_token(self) -> None:
        winner = self.policy.pick(self.token_queue, self.node)
        queue, self.token_queue = self.token_queue, []
        self._holds_token = False
        size = DEFAULT_MESSAGE_SIZE + 16 * len(queue)
        self._send(
            winner.origin, "token",
            {"queue": [e.to_wire() for e in queue]}, size=size,
        )
        # The winner is the most probable owner now.
        self.last = winner.origin
