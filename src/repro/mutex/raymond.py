"""Raymond's static-tree token algorithm (extension; paper ref [14]).

Not part of the paper's evaluated trio, but cited by the related work
(Housni et al. use it inside groups) and a natural fourth plug-in for the
composition framework: peers form a **static** tree; each peer keeps

* ``holder``: which neighbour (or itself) is in the direction of the
  token;
* ``request_q``: FIFO of neighbours (or itself) whose requests await the
  token;
* ``asked``: whether a request has already been sent toward the holder
  (collapses concurrent requests into one message per edge).

Per-CS cost: ``O(log N)`` messages on a balanced tree.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Sequence

from ..errors import ProtocolError
from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["RaymondPeer", "balanced_tree_parents"]


def balanced_tree_parents(peers: Sequence[int], root: int) -> Dict[int, Optional[int]]:
    """Lay ``peers`` out as a balanced binary tree rooted at ``root``.

    Returns a parent map (``root`` maps to ``None``).  The layout is by
    peer order: index 0 is the root, index ``i`` has parent ``(i-1)//2``
    — with the peer list rotated so ``root`` lands at index 0.
    """
    ordered = list(peers)
    ri = ordered.index(root)
    ordered[0], ordered[ri] = ordered[ri], ordered[0]
    parents: Dict[int, Optional[int]] = {ordered[0]: None}
    for i in range(1, len(ordered)):
        parents[ordered[i]] = ordered[(i - 1) // 2]
    return parents


class RaymondPeer(MutexPeer):
    """One peer of Raymond's tree-based token algorithm.

    Message kinds: ``request`` (one hop toward the holder), ``token``
    (one hop toward the requester).
    """

    algorithm_name = "raymond"
    topology = "static-tree"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        parents = balanced_tree_parents(self.peers, self.initial_holder)
        parent = parents[self.node]
        # ``holder`` points at ourselves when we have the token, else at
        # the neighbour in the token's direction — initially the parent,
        # since the initial holder is the tree root.
        self.holder: int = self.node if parent is None else parent
        self.request_q: Deque[int] = deque()
        self.asked = False

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self.holder == self.node

    @property
    def has_pending_request(self) -> bool:
        return any(q != self.node for q in self.request_q)

    # ------------------------------------------------------------------ #
    def _do_request(self) -> None:
        self.request_q.append(self.node)
        self._assign_or_ask()

    def _do_release(self) -> None:
        self._assign_or_ask()

    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        sender = msg.src
        if sender not in self.peers:
            raise ProtocolError(f"{self.name}: request from stranger {sender}")
        self.request_q.append(sender)
        if self.holds_token and self.state is PeerState.CS:
            self._notify_pending()
        self._assign_or_ask()

    def _on_token(self, msg: Message) -> None:
        self.holder = self.node
        self.asked = False
        self._assign_or_ask()

    # ------------------------------------------------------------------ #
    def _assign_or_ask(self) -> None:
        """Raymond's core step: if privileged and idle, serve the queue
        head; otherwise make sure a request is on its way to the holder."""
        if self.holds_token and self.state is not PeerState.CS and self.request_q:
            head = self.request_q.popleft()
            if head == self.node:
                if self.state is not PeerState.REQ:
                    raise ProtocolError(
                        f"{self.name}: queued self while not requesting"
                    )
                self._grant()
            else:
                self.holder = head
                self._send(head, "token")
        if not self.holds_token and self.request_q and not self.asked:
            self.asked = True
            self._send(self.holder, "request")
