"""Algorithm registry.

The composition framework is parameterised by algorithm *names* (the
paper's "Intra-Inter" notation, e.g. ``"naimi-martin"``).  The registry
maps names to peer classes and records the per-algorithm facts the
benchmarks report (token vs permission, logical topology, message
complexity per CS).

User-defined algorithms plug in through :func:`register` — see
``examples/custom_algorithm.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Type

from ..errors import ConfigurationError
from .base import MutexPeer
from .centralized import CentralizedPeer
from .lamport import LamportPeer
from .maekawa import MaekawaPeer
from .martin import MartinPeer
from .naimi_trehel import NaimiTrehelPeer
from .priority_naimi import PriorityNaimiPeer
from .raymond import RaymondPeer
from .ricart_agrawala import RicartAgrawalaPeer
from .suzuki_kasami import SuzukiKasamiPeer

__all__ = ["AlgorithmInfo", "register", "get_algorithm", "available_algorithms"]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata for one registered algorithm."""

    name: str
    peer_class: Type[MutexPeer]
    token_based: bool
    topology: str
    messages_per_cs: str  # human-readable complexity, e.g. "O(log N)"
    paper_section: str = ""


_REGISTRY: Dict[str, AlgorithmInfo] = {}

#: Alternative spellings accepted by :func:`get_algorithm`.
_ALIASES = {
    "naimi-trehel": "naimi",
    "naimi_trehel": "naimi",
    "suzuki-kasami": "suzuki",
    "suzuki_kasami": "suzuki",
    "ricart": "ricart-agrawala",
    "ra": "ricart-agrawala",
    "central": "centralized",
}


def register(info: AlgorithmInfo) -> None:
    """Add an algorithm to the registry.

    Re-registering an existing name is an error — shadowing a built-in
    silently would make experiment configs ambiguous.
    """
    if info.name in _REGISTRY:
        raise ConfigurationError(f"algorithm {info.name!r} already registered")
    if not issubclass(info.peer_class, MutexPeer):
        raise ConfigurationError(
            f"{info.peer_class!r} does not subclass MutexPeer"
        )
    _REGISTRY[info.name] = info


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up an algorithm by name (aliases accepted, case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known: {known}"
        ) from None


def available_algorithms() -> Dict[str, AlgorithmInfo]:
    """A copy of the registry (name -> info)."""
    return dict(_REGISTRY)


# --------------------------------------------------------------------- #
# built-ins
# --------------------------------------------------------------------- #
for _info in (
    AlgorithmInfo("martin", MartinPeer, True, "ring", "N (avg)", "§2.1"),
    AlgorithmInfo("naimi", NaimiTrehelPeer, True, "dynamic tree", "O(log N)", "§2.2"),
    AlgorithmInfo("suzuki", SuzukiKasamiPeer, True, "complete graph", "N", "§2.3"),
    AlgorithmInfo("raymond", RaymondPeer, True, "static tree", "O(log N)", "ref [14]"),
    AlgorithmInfo(
        "ricart-agrawala", RicartAgrawalaPeer, False, "complete graph",
        "2(N-1)", "ref [15]",
    ),
    AlgorithmInfo("lamport", LamportPeer, False, "complete graph", "3(N-1)", "ref [7]"),
    AlgorithmInfo(
        "maekawa", MaekawaPeer, False, "sqrt-N grid quorums",
        "3*sqrt(N) to 5*sqrt(N)", "ref [9]",
    ),
    AlgorithmInfo("centralized", CentralizedPeer, True, "star", "3", "baseline"),
    AlgorithmInfo(
        "priority-naimi", PriorityNaimiPeer, True,
        "dynamic tree + token queue", "O(log N)", "refs [11], [3]",
    ),
):
    register(_info)
