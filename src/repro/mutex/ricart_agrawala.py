"""Ricart-Agrawala's permission-based algorithm (baseline; paper ref [15]).

The paper's taxonomy (§1) opposes *token-based* and *permission-based*
families and argues token algorithms suit grids better.  This baseline
lets the benchmarks quantify that claim: a requester broadcasts a
timestamped request and enters the CS after collecting a ``reply`` from
every other peer (``2(N-1)`` messages per CS).  A peer defers its reply
while it is in the CS, or while it has a pending request with higher
priority (smaller ``(clock, id)``).

Although permission-based, the peer exposes the same interface as the
token algorithms — ``holds_token`` is true exactly while in the CS — so
it can also be plugged into the composition (an extension over the
paper, which composes token algorithms only).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from ..errors import ProtocolError
from ..net.message import Message
from .base import MutexPeer, PeerState

__all__ = ["RicartAgrawalaPeer"]


class RicartAgrawalaPeer(MutexPeer):
    """One peer of the Ricart-Agrawala permission algorithm.

    Message kinds: ``request`` (broadcast, carries a Lamport timestamp),
    ``reply``.
    """

    algorithm_name = "ricart-agrawala"
    topology = "complete-graph"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.clock = 0
        self._request_ts: Optional[Tuple[int, int]] = None
        self._replies_missing: Set[int] = set()
        self._deferred: List[int] = []

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        # Permission-based: "holding the token" == being inside the CS.
        return self.state is PeerState.CS

    @property
    def has_pending_request(self) -> bool:
        return bool(self._deferred)

    # ------------------------------------------------------------------ #
    def _do_request(self) -> None:
        self.clock += 1
        self._request_ts = (self.clock, self.node)
        self._replies_missing = {p for p in self.peers if p != self.node}
        if not self._replies_missing:
            self._enter()
            return
        self._broadcast("request", {"ts": self.clock, "origin": self.node})

    def _do_release(self) -> None:
        self._request_ts = None
        deferred, self._deferred = self._deferred, []
        for dst in deferred:
            self._send(dst, "reply")

    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        ts = msg.payload["ts"]
        origin = msg.payload["origin"]
        self.clock = max(self.clock, ts) + 1
        if self.state is PeerState.CS:
            self._deferred.append(origin)
            self._notify_pending()
        elif (
            self.state is PeerState.REQ
            and self._request_ts is not None
            and self._request_ts < (ts, origin)
        ):
            # Our own pending request has priority: defer the reply.
            self._deferred.append(origin)
        else:
            self._send(origin, "reply")

    def _on_reply(self, msg: Message) -> None:
        if self.state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: reply arrived in state {self.state.value}"
            )
        self._replies_missing.discard(msg.src)
        if not self._replies_missing:
            self._enter()

    # ------------------------------------------------------------------ #
    def _enter(self) -> None:
        self._grant()
