"""Suzuki-Kasami's broadcast algorithm (paper §2.3).

A requester broadcasts ``request(i, x)`` — its id and a per-peer sequence
number — to all other peers.  Every peer keeps ``RN[j]``, the highest
request number seen from each ``j``.  The token carries ``LN[j]`` (the
sequence number of ``j``'s most recently *satisfied* request) and a FIFO
queue ``Q`` of peers with granted-pending requests.  On release the
holder appends every ``j`` with ``RN[j] == LN[j] + 1`` not already in
``Q``, then sends the token to the queue head.

Per-CS cost: ``N`` messages (``N-1`` requests + 1 token);
``T_req = T_token = T``.  The token message size grows with ``N``
(it carries ``LN`` and ``Q``), which the statistics layer accounts for.

Optional request retransmission (``retry_ms``): the paper (§2) notes
that "by diffusing the request to all sites, Suzuki-Kasami's is more
resilient to failures than the other two".  The RN/LN sequence numbers
make a re-broadcast request idempotent, so a requester can simply
re-send its (unchanged) request after a timeout, recovering from lost
request messages — something neither the ring nor the tree algorithm
can do without extra machinery.  Disabled by default (the paper's
evaluation assumes a reliable network).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from ..errors import ProtocolError
from ..net.message import DEFAULT_MESSAGE_SIZE, Message
from .base import MutexPeer, PeerState

__all__ = ["SuzukiKasamiPeer"]


class SuzukiKasamiPeer(MutexPeer):
    """One peer of the Suzuki-Kasami token algorithm.

    Message kinds: ``request`` (broadcast, carries origin + sequence
    number), ``token`` (carries ``LN`` and ``Q``).
    """

    algorithm_name = "suzuki"
    topology = "complete-graph"
    #: Hot-state layout consumed by :mod:`repro.compile.state`: the
    #: RN/LN maps lower to per-peer ``int64`` arrays in ``peers`` order.
    compiled_state = {
        "scalars": ("_holds_token",),
        "peer_arrays": ("rn", "ln"),
    }

    def __init__(self, *args: Any, retry_ms: Optional[float] = None, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if retry_ms is not None and retry_ms <= 0:
            raise ProtocolError(f"retry_ms must be positive, got {retry_ms}")
        self.retry_ms = retry_ms
        self.retries = 0
        self._retry_timer = None
        self.rn: Dict[int, int] = {p: 0 for p in self.peers}
        self._holds_token = self.node == self.initial_holder
        # Token state; only meaningful while holding the token.
        self.ln: Optional[Dict[int, int]] = (
            {p: 0 for p in self.peers} if self._holds_token else None
        )
        self.queue: Optional[Deque[int]] = (
            deque() if self._holds_token else None
        )

    # ------------------------------------------------------------------ #
    @property
    def holds_token(self) -> bool:
        return self._holds_token

    @property
    def has_pending_request(self) -> bool:
        if not self._holds_token:
            return False
        assert self.ln is not None and self.queue is not None
        if self.queue:
            return True
        return any(
            self.rn[j] == self.ln[j] + 1
            for j in self.peers
            if j != self.node
        )

    def _fingerprint_state(self) -> tuple:
        # int() canonicalises across backends: the compiled peer stores
        # RN/LN as numpy int64 arrays behind dict-like views.
        rn = tuple(int(self.rn[p]) for p in self.peers)
        if not self._holds_token:
            return (False, rn, None, None)
        assert self.ln is not None and self.queue is not None
        ln = tuple(int(self.ln[p]) for p in self.peers)
        return (True, rn, ln, tuple(int(q) for q in self.queue))

    # ------------------------------------------------------------------ #
    # requesting
    # ------------------------------------------------------------------ #
    def _do_request(self) -> None:
        if self._holds_token:
            self._grant()
            return
        self.rn[self.node] += 1
        self._broadcast(
            "request", {"origin": self.node, "seq": self.rn[self.node]}
        )
        self._arm_retry()

    def _arm_retry(self) -> None:
        if self.retry_ms is None:
            return
        self._retry_timer = self.set_timer(
            self.retry_ms, self._retry, label=f"{self.name}.retry"
        )

    def _retry(self) -> None:
        """Re-broadcast the outstanding request (same sequence number —
        receivers that already saw it ignore the duplicate via RN)."""
        if self.state is not PeerState.REQ:
            return
        self.retries += 1
        self._broadcast(
            "request", {"origin": self.node, "seq": self.rn[self.node]}
        )
        self._arm_retry()

    # ------------------------------------------------------------------ #
    # releasing
    # ------------------------------------------------------------------ #
    def _do_release(self) -> None:
        assert self.ln is not None and self.queue is not None
        self.ln[self.node] = self.rn[self.node]
        for j in self.peers:
            if j != self.node and self.rn[j] == self.ln[j] + 1 and j not in self.queue:
                self.queue.append(j)
        if self.queue:
            self._send_token(self.queue.popleft())

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #
    def _on_request(self, msg: Message) -> None:
        origin = msg.payload["origin"]
        seq = msg.payload["seq"]
        if seq <= self.rn[origin]:
            return  # outdated or duplicated request
        self.rn[origin] = seq
        if not self._holds_token:
            return
        assert self.ln is not None
        if self.rn[origin] == self.ln[origin] + 1:
            if self.state is PeerState.NO_REQ:
                # Idle holder grants immediately.
                self._send_token(origin)
            else:
                # In the CS: the request will be queued at release time.
                self._notify_pending()

    def _on_token(self, msg: Message) -> None:
        if self._holds_token:
            raise ProtocolError(f"{self.name}: received a second token")
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self._holds_token = True
        self.ln = dict(msg.payload["ln"])
        self.queue = deque(msg.payload["queue"])
        if self.state is not PeerState.REQ:
            raise ProtocolError(
                f"{self.name}: token arrived in state {self.state.value}"
            )
        self._grant()

    # ------------------------------------------------------------------ #
    def _send_token(self, dst: int) -> None:
        """Transfer the token (with its LN array and queue) to ``dst``."""
        assert self.ln is not None and self.queue is not None
        ln, queue = self.ln, self.queue
        self._holds_token = False
        self.ln = None
        self.queue = None
        # The token payload scales with N: LN has one entry per peer.
        size = DEFAULT_MESSAGE_SIZE + 8 * len(self.peers) + 8 * len(queue)
        self._send(dst, "token", {"ln": dict(ln), "queue": list(queue)}, size=size)
