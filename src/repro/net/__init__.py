"""Simulated network substrate: topology, latency models, message
transport, statistics, and (test-only) fault injection.

This package stands in for the paper's Grid'5000 interconnect.  The
latency hierarchy that drives every result in the paper — LAN inside a
cluster, heterogeneous WAN between clusters — is expressed by a
:class:`~repro.net.latency.LatencyModel` over a
:class:`~repro.net.topology.GridTopology`.
"""

from .faults import CrashController, FaultInjector
from .latency import (
    LOCAL_DELIVERY_MS,
    ConstantLatency,
    LatencyModel,
    MatrixLatency,
    TwoTierLatency,
)
from .message import DEFAULT_MESSAGE_SIZE, Message
from .network import Network
from .stats import MessageStats
from .topology import Cluster, GridTopology, uniform_topology

__all__ = [
    "Cluster",
    "GridTopology",
    "uniform_topology",
    "Message",
    "DEFAULT_MESSAGE_SIZE",
    "LatencyModel",
    "ConstantLatency",
    "TwoTierLatency",
    "MatrixLatency",
    "LOCAL_DELIVERY_MS",
    "Network",
    "MessageStats",
    "FaultInjector",
    "CrashController",
]
