"""Fault injection for robustness testing.

The paper's algorithms assume a reliable network (no loss) and
crash-free processes; the fault layer exists so *tests* can assert how
implementations react to message duplication and reordering — both of
which genuinely happen over UDP — to verify that the safety checkers
catch a lost token, and (via :class:`CrashController`) to exercise the
crash/recovery subsystem (``repro.core.recovery``, ``docs/faults.md``).

Faults are applied at send time by the network when a
:class:`FaultInjector` is installed; crashes at delivery time when a
:class:`CrashController` is installed.  Production experiment runs
install neither, so the default path is untouched.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import NetworkError
from ..sim.kernel import Simulator
from ..sim.process import Process

__all__ = ["FaultInjector", "CrashController"]


class FaultInjector:
    """Probabilistic message perturbation.

    Parameters
    ----------
    drop:
        Probability a message is silently discarded.
    duplicate:
        Probability a message is delivered twice (the copy takes an
        independently sampled latency, so copies may reorder).
    delay_factor:
        Extra multiplicative delay applied to a *duplicated* copy, to
        spread the two deliveries apart.
    only_kinds:
        Restrict faults to messages of these kinds (``None`` = all).
        E.g. duplicating only ``"request"`` messages tests a protocol's
        idempotence without forging a second token — duplicating the
        token itself violates the algorithms' system model.
    """

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay_factor: float = 2.0,
        only_kinds: Optional[Iterable[str]] = None,
    ) -> None:
        for name, p in (("drop", drop), ("duplicate", duplicate)):
            if not 0.0 <= p <= 1.0:
                raise NetworkError(f"{name} probability {p} outside [0, 1]")
        if delay_factor < 1.0:
            raise NetworkError(f"delay_factor must be >= 1, got {delay_factor}")
        self.drop = float(drop)
        self.duplicate = float(duplicate)
        self.delay_factor = float(delay_factor)
        self.only_kinds = frozenset(only_kinds) if only_kinds is not None else None
        self.dropped = 0
        self.duplicated = 0

    def _applies(self, kind: str) -> bool:
        return self.only_kinds is None or kind in self.only_kinds

    def should_drop(self, rng: np.random.Generator, kind: str = "") -> bool:
        """Sample the drop decision for one message."""
        if self._applies(kind) and self.drop > 0.0 and rng.random() < self.drop:
            self.dropped += 1
            return True
        return False

    def should_duplicate(self, rng: np.random.Generator, kind: str = "") -> bool:
        """Sample the duplication decision for one message."""
        if (
            self._applies(kind)
            and self.duplicate > 0.0
            and rng.random() < self.duplicate
        ):
            self.duplicated += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector drop={self.drop} dup={self.duplicate} "
            f"dropped={self.dropped} duplicated={self.duplicated}>"
        )


class CrashController:
    """Crash-stop / restart of whole simulated nodes.

    Installed on a :class:`~repro.net.network.Network`, it gives a node
    three failure-model properties the paper's system model excludes:

    * a crashed node's handlers stop receiving — the network drops every
      delivery addressed to it while it is down;
    * messages already in flight toward it are lost — a message *sent*
      before the node's (latest) restart is never delivered, even if its
      delivery time falls after the restart;
    * its processes stop — every :class:`~repro.sim.process.Process`
      bound to the node via :meth:`bind` is halted (outstanding timers
      cancelled, new timers refused) and the network suppresses sends
      originating from it.

    A restart resumes the bound processes and reopens delivery, but the
    node comes back with whatever protocol state it crashed with —
    rejoining the distributed structures is the job of the recovery
    layer (:mod:`repro.core.recovery`), not the transport.

    Crash/restart events are emitted on the tracer (``node_crash`` /
    ``node_restart``) so verification layers can fence CS entries by
    dead nodes, and ``on_crash`` / ``on_restart`` callbacks let failure
    detectors react without polling.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._down: Set[int] = set()
        self._rebooted_at: Dict[int, float] = {}
        self._bound: Dict[int, List[Process]] = defaultdict(list)
        #: callbacks fired as fn(node) on each crash / restart
        self.on_crash: List[Callable[[int], None]] = []
        self.on_restart: List[Callable[[int], None]] = []
        #: (time, "crash"|"restart", node) history, for tests and reports
        self.events: List[Tuple[float, str, int]] = []

    # ------------------------------------------------------------------ #
    def bind(self, node: int, *processes: Process) -> None:
        """Tie ``processes`` to ``node``'s fate: they halt on crash and
        resume on restart."""
        self._bound[node].extend(processes)

    def is_down(self, node: int) -> bool:
        """Whether ``node`` is currently crashed."""
        return node in self._down

    @property
    def down(self) -> frozenset:
        """The currently crashed nodes."""
        return frozenset(self._down)

    def lost_in_flight(self, node: int, sent_at: float) -> bool:
        """Whether a message sent to ``node`` at ``sent_at`` is lost:
        the node is down, or it restarted after the send (messages in
        flight across a crash die with the crash)."""
        if node in self._down:
            return True
        return sent_at < self._rebooted_at.get(node, float("-inf"))

    # ------------------------------------------------------------------ #
    def crash(self, node: int) -> None:
        """Crash-stop ``node`` now.  Crashing a crashed node is an error
        (it almost always means a fault schedule is wrong)."""
        if node in self._down:
            raise NetworkError(f"node {node} is already down")
        self._down.add(node)
        self.events.append((self.sim.now, "crash", node))
        for proc in self._bound[node]:
            proc.halt()
        if self.sim.trace.active:
            self.sim.trace.emit("node_crash", time=self.sim.now, node=node)
        for fn in tuple(self.on_crash):
            fn(node)

    def restart(self, node: int) -> None:
        """Bring ``node`` back up now (see class docstring for what a
        restarted node does and does not recover)."""
        if node not in self._down:
            raise NetworkError(f"node {node} is not down")
        self._down.discard(node)
        self._rebooted_at[node] = self.sim.now
        self.events.append((self.sim.now, "restart", node))
        for proc in self._bound[node]:
            proc.resume()
        if self.sim.trace.active:
            self.sim.trace.emit("node_restart", time=self.sim.now, node=node)
        for fn in tuple(self.on_restart):
            fn(node)

    # ------------------------------------------------------------------ #
    def schedule_crash(self, at_ms: float, node: int) -> None:
        """Schedule a crash at absolute simulated time ``at_ms``."""
        self.sim.schedule_at(at_ms, self.crash, node, label=f"crash@{node}")

    def schedule_restart(self, at_ms: float, node: int) -> None:
        """Schedule a restart at absolute simulated time ``at_ms``."""
        self.sim.schedule_at(at_ms, self.restart, node, label=f"restart@{node}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CrashController down={sorted(self._down)}>"
