"""Fault injection for robustness testing.

The paper's algorithms assume a reliable network (no loss); the fault
layer exists so *tests* can assert how implementations react to message
duplication and reordering — both of which genuinely happen over UDP —
and to verify that the safety checkers catch a lost token.

Faults are applied at send time by the network when a
:class:`FaultInjector` is installed; production experiment runs never
install one.
"""

from __future__ import annotations

import numpy as np

from ..errors import NetworkError

__all__ = ["FaultInjector"]


class FaultInjector:
    """Probabilistic message perturbation.

    Parameters
    ----------
    drop:
        Probability a message is silently discarded.
    duplicate:
        Probability a message is delivered twice (the copy takes an
        independently sampled latency, so copies may reorder).
    delay_factor:
        Extra multiplicative delay applied to a *duplicated* copy, to
        spread the two deliveries apart.
    only_kinds:
        Restrict faults to messages of these kinds (``None`` = all).
        E.g. duplicating only ``"request"`` messages tests a protocol's
        idempotence without forging a second token — duplicating the
        token itself violates the algorithms' system model.
    """

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay_factor: float = 2.0,
        only_kinds=None,
    ) -> None:
        for name, p in (("drop", drop), ("duplicate", duplicate)):
            if not 0.0 <= p <= 1.0:
                raise NetworkError(f"{name} probability {p} outside [0, 1]")
        if delay_factor < 1.0:
            raise NetworkError(f"delay_factor must be >= 1, got {delay_factor}")
        self.drop = float(drop)
        self.duplicate = float(duplicate)
        self.delay_factor = float(delay_factor)
        self.only_kinds = frozenset(only_kinds) if only_kinds is not None else None
        self.dropped = 0
        self.duplicated = 0

    def _applies(self, kind: str) -> bool:
        return self.only_kinds is None or kind in self.only_kinds

    def should_drop(self, rng: np.random.Generator, kind: str = "") -> bool:
        """Sample the drop decision for one message."""
        if self._applies(kind) and self.drop > 0.0 and rng.random() < self.drop:
            self.dropped += 1
            return True
        return False

    def should_duplicate(self, rng: np.random.Generator, kind: str = "") -> bool:
        """Sample the duplication decision for one message."""
        if (
            self._applies(kind)
            and self.duplicate > 0.0
            and rng.random() < self.duplicate
        ):
            self.duplicated += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector drop={self.drop} dup={self.duplicate} "
            f"dropped={self.dropped} duplicated={self.duplicated}>"
        )
