"""Latency models.

A latency model maps a directed node pair to a one-way message delay in
milliseconds.  The paper's platform is characterised by its Figure 3 RTT
matrix; :class:`MatrixLatency` realises exactly that: one-way delay =
RTT/2 between the clusters of the two endpoints, with optional
multiplicative jitter to model WAN variance.

All models receive the RNG explicitly so the network owns exactly one
jitter stream per simulation — deterministic and independent of how many
other streams exist (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import NetworkError
from .topology import GridTopology

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "TwoTierLatency",
    "MatrixLatency",
    "LOCAL_DELIVERY_MS",
]

#: Delay applied when a message stays on the same machine (two agents on
#: one node, e.g. an application process talking to a co-located
#: coordinator).  Small but non-zero so delivery is still an event.
LOCAL_DELIVERY_MS = 0.001


class LatencyModel(ABC):
    """Maps a directed node pair to a one-way delay (ms)."""

    @abstractmethod
    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """One-way delay in milliseconds for a message ``src -> dst``."""

    def rtt(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """Round-trip estimate (two one-way samples)."""
        return self.one_way(src, dst, rng) + self.one_way(dst, src, rng)


def _apply_jitter(
    base: float, jitter: float, rng: np.random.Generator
) -> float:
    """Multiply ``base`` by a lognormal factor with relative spread
    ``jitter`` (0 disables).  The factor has mean ~1 so jitter does not
    bias the average latency."""
    if jitter <= 0.0:
        return base
    # sigma chosen so std of the factor ~= jitter for small jitter.
    sigma = float(jitter)
    factor = float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
    return base * factor


class ConstantLatency(LatencyModel):
    """Uniform delay between distinct nodes; local delivery for self-sends.

    Useful for unit-testing algorithms where the latency hierarchy is
    irrelevant.
    """

    def __init__(self, delay_ms: float, jitter: float = 0.0) -> None:
        if delay_ms < 0:
            raise NetworkError(f"negative latency {delay_ms}")
        self.delay_ms = float(delay_ms)
        self.jitter = float(jitter)

    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return LOCAL_DELIVERY_MS
        return _apply_jitter(self.delay_ms, self.jitter, rng)


class TwoTierLatency(LatencyModel):
    """LAN delay inside a cluster, a single WAN delay between clusters.

    The simplest model exhibiting the paper's latency hierarchy; used by
    unit tests and the synthetic scalability study.
    """

    def __init__(
        self,
        topology: GridTopology,
        lan_ms: float = 0.05,
        wan_ms: float = 10.0,
        jitter: float = 0.0,
    ) -> None:
        if lan_ms < 0 or wan_ms < 0:
            raise NetworkError("latencies must be non-negative")
        if wan_ms < lan_ms:
            raise NetworkError(
                f"WAN latency ({wan_ms}) below LAN latency ({lan_ms}) "
                "inverts the grid hierarchy"
            )
        self.topology = topology
        self.lan_ms = float(lan_ms)
        self.wan_ms = float(wan_ms)
        self.jitter = float(jitter)

    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return LOCAL_DELIVERY_MS
        base = (
            self.lan_ms
            if self.topology.same_cluster(src, dst)
            else self.wan_ms
        )
        return _apply_jitter(base, self.jitter, rng)


class MatrixLatency(LatencyModel):
    """Per-cluster-pair latencies from a (possibly asymmetric) RTT matrix.

    Parameters
    ----------
    topology:
        Grid topology; the matrix is indexed by cluster index.
    rtt_ms:
        Square matrix of round-trip times in milliseconds; entry
        ``[i, j]`` is the measured RTT from cluster ``i`` to cluster
        ``j``.  The diagonal holds the intra-cluster (LAN) RTT.
        One-way delay is ``rtt/2``.
    jitter:
        Relative lognormal spread applied per message (0 = deterministic).
    """

    def __init__(
        self,
        topology: GridTopology,
        rtt_ms: Sequence[Sequence[float]] | np.ndarray,
        jitter: float = 0.0,
    ) -> None:
        matrix = np.asarray(rtt_ms, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise NetworkError(f"RTT matrix must be square, got {matrix.shape}")
        if matrix.shape[0] != topology.n_clusters:
            raise NetworkError(
                f"RTT matrix is {matrix.shape[0]}x{matrix.shape[0]} but the "
                f"topology has {topology.n_clusters} clusters"
            )
        if np.any(matrix < 0):
            raise NetworkError("RTT matrix has negative entries")
        self.topology = topology
        self.rtt_ms = matrix
        self._one_way = matrix / 2.0
        self.jitter = float(jitter)

    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return LOCAL_DELIVERY_MS
        ci = self.topology.cluster_of(src)
        cj = self.topology.cluster_of(dst)
        return _apply_jitter(float(self._one_way[ci, cj]), self.jitter, rng)

    def mean_one_way(self, src_cluster: int, dst_cluster: int) -> float:
        """Jitter-free one-way delay between two clusters (ms)."""
        return float(self._one_way[src_cluster, dst_cluster])
