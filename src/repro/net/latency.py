"""Latency models.

A latency model maps a directed node pair to a one-way message delay in
milliseconds.  The paper's platform is characterised by its Figure 3 RTT
matrix; :class:`MatrixLatency` realises exactly that: one-way delay =
RTT/2 between the clusters of the two endpoints, with optional
multiplicative jitter to model WAN variance.

All models receive the RNG explicitly so the network owns exactly one
jitter stream per simulation — deterministic and independent of how many
other streams exist (see :mod:`repro.sim.rng`).

Hot path
--------
``one_way`` is called once per message, so the models precompute at
construction time everything the per-call path would otherwise redo:

* the full node-pair delay table (plain Python floats — scalar indexing
  into a numpy array costs more than the rest of the call combined),
  derived once from the cluster-pair matrix; topologies too large for a
  dense node table fall back to a cluster-indexed table plus the
  topology's dense cluster map;
* the jitter constants: ``sigma`` and the lognormal ``mean = -sigma²/2``
  that keeps the jitter factor mean-1.

Optionally, :meth:`LatencyModel.enable_batched_jitter` switches the model
to drawing lognormal factors in blocks from the same RNG stream — fewer
generator calls for jittered paper-scale sweeps.  The default
(unbatched) mode draws one factor per call exactly as before, so default
runs stay draw-for-draw identical (``RunDigest``-pinned); batched mode is
deterministic for a given seed and block size, but its draw-for-draw
agreement with the unbatched mode is a numpy implementation detail, not
a contract.  See ``docs/performance.md`` for the determinism contract.
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import NetworkError
from .topology import GridTopology

logger = logging.getLogger(__name__)

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "TwoTierLatency",
    "MatrixLatency",
    "LOCAL_DELIVERY_MS",
]

#: Delay applied when a message stays on the same machine (two agents on
#: one node, e.g. an application process talking to a co-located
#: coordinator).  Small but non-zero so delivery is still an event.
LOCAL_DELIVERY_MS = 0.001

#: Largest topology for which a dense node-pair delay table is built
#: (n² Python floats; 512 nodes ≈ 262k entries).  Above it, models fall
#: back to the cluster-pair table — same results, one extra index hop.
_NODE_TABLE_MAX_NODES = 512


class _BatchedLognormal:
    """Block-drawn lognormal jitter factors from a shared RNG stream.

    Refills a block of ``block`` factors at a time; deterministic for a
    given (seed, sigma, block) but not *guaranteed* draw-for-draw
    identical to per-call draws, which is why batching is opt-in."""

    __slots__ = ("mean", "sigma", "block", "_buf", "_idx")

    def __init__(self, mean: float, sigma: float, block: int) -> None:
        if block < 1:
            raise NetworkError(f"jitter block size must be >= 1, got {block}")
        self.mean = mean
        self.sigma = sigma
        self.block = int(block)
        self._buf: Optional[np.ndarray] = None
        self._idx = 0

    def factor(self, rng: np.random.Generator) -> float:
        buf = self._buf
        if buf is None or self._idx >= self.block:
            buf = self._buf = rng.lognormal(
                mean=self.mean, sigma=self.sigma, size=self.block
            )
            self._idx = 0
        value = buf[self._idx]
        self._idx += 1
        return float(value)


class LatencyModel(ABC):
    """Maps a directed node pair to a one-way delay (ms)."""

    #: Jitter state shared by the concrete models (set in `_init_jitter`).
    jitter: float = 0.0
    _sigma: float = 0.0
    _lognorm_mean: float = 0.0
    _batch: Optional[_BatchedLognormal] = None

    def _init_jitter(self, jitter: float) -> None:
        """Hoist the per-call jitter constants into construction."""
        self.jitter = float(jitter)
        self._sigma = self.jitter
        # sigma chosen so std of the factor ~= jitter for small jitter;
        # mean = -sigma^2/2 keeps the factor mean ~1 (no latency bias).
        self._lognorm_mean = -0.5 * self._sigma * self._sigma
        self._batch = None

    def _jittered(self, base: float, rng: np.random.Generator) -> float:
        """Apply the multiplicative lognormal jitter factor to ``base``."""
        batch = self._batch
        if batch is not None:
            return base * batch.factor(rng)
        return base * float(
            rng.lognormal(mean=self._lognorm_mean, sigma=self._sigma)
        )

    def enable_batched_jitter(self, block: int = 256) -> None:
        """Draw jitter factors in blocks of ``block`` from the RNG stream.

        A no-op for jitter-free models.  Changes the RNG consumption
        pattern (see module docstring), so only enable it when the run is
        not being compared against unbatched digests."""
        if self._sigma > 0.0:
            self._batch = _BatchedLognormal(
                self._lognorm_mean, self._sigma, block
            )

    @property
    def batched_jitter(self) -> bool:
        """Whether batched jitter drawing is enabled."""
        return self._batch is not None

    @abstractmethod
    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """One-way delay in milliseconds for a message ``src -> dst``."""

    # ``min_delay(src_cluster, dst_cluster)`` — a hard lower bound on any
    # one-way delay between nodes of the two clusters — is deliberately
    # *not* declared here: only cluster-structured models can promise
    # one, and the lookahead machinery (:mod:`repro.sim.horizon`) treats
    # its absence as "no lookahead available" and falls back to serial
    # execution.  ``_TableLatency`` provides the stock implementation.

    def rtt(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """Round-trip estimate (two one-way samples)."""
        return self.one_way(src, dst, rng) + self.one_way(dst, src, rng)


def _apply_jitter(
    base: float, jitter: float, rng: np.random.Generator
) -> float:
    """Multiply ``base`` by a lognormal factor with relative spread
    ``jitter`` (0 disables).  The factor has mean ~1 so jitter does not
    bias the average latency.

    Kept for API compatibility (tests and external callers); the models
    themselves use the constants hoisted by ``_init_jitter``."""
    if jitter <= 0.0:
        return base
    sigma = float(jitter)
    factor = float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
    return base * factor


def _node_delay_table(
    topology: GridTopology, cluster_table: List[List[float]]
) -> Optional[List[List[float]]]:
    """Dense ``[src][dst]`` one-way delay table of plain Python floats.

    ``None`` when the topology is too large for a dense table (quadratic
    memory); the diagonal holds :data:`LOCAL_DELIVERY_MS`."""
    n = topology.n_nodes
    if n > _NODE_TABLE_MAX_NODES:
        logger.info(
            "topology has %d nodes (> %d): skipping the dense O(N^2) "
            "node-pair delay table in favour of O(N + C^2) cluster block "
            "tables (same delays, one extra index hop per send)",
            n, _NODE_TABLE_MAX_NODES,
        )
        return None
    cluster_of = [topology.cluster_of(node) for node in range(n)]
    table: List[List[float]] = []
    for src in range(n):
        row_base = cluster_table[cluster_of[src]]
        row = [row_base[cluster_of[dst]] for dst in range(n)]
        row[src] = LOCAL_DELIVERY_MS
        table.append(row)
    return table


class ConstantLatency(LatencyModel):
    """Uniform delay between distinct nodes; local delivery for self-sends.

    Useful for unit-testing algorithms where the latency hierarchy is
    irrelevant.
    """

    def __init__(self, delay_ms: float, jitter: float = 0.0) -> None:
        if delay_ms < 0:
            raise NetworkError(f"negative latency {delay_ms}")
        self.delay_ms = float(delay_ms)
        self._init_jitter(jitter)

    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return LOCAL_DELIVERY_MS
        if self._sigma <= 0.0:
            return self.delay_ms
        return self._jittered(self.delay_ms, rng)


class _TableLatency(LatencyModel):
    """Shared table machinery for the cluster-structured models.

    Memory is O(N + C²) regardless of grid size: one shared cluster map
    (aliased from the topology, not copied) plus a C×C cluster-pair block
    table.  Below :data:`_NODE_TABLE_MAX_NODES` nodes an additional dense
    node-pair table of Python floats trades O(N²) memory for one fewer
    index hop per send; above it, the scalar path reads the block table
    directly and the vectorized :meth:`base_delays` serves bulk lookups.

    The block tables are kept as float64 (nested Python floats for the
    scalar path, a numpy mirror for the vectorized one) rather than
    float32: the scalar and vectorized paths must agree bitwise for the
    digest-equivalence gates, and at C ≤ 1000 clusters the float64 block
    table is ≤ 8 MB — the O(N²) node table was the memory problem, not
    the element width.
    """

    def _init_tables(self, topology: GridTopology,
                     cluster_table: List[List[float]]) -> None:
        """Install the cluster map and delay tables (construction time)."""
        # The topology already owns a dense node->cluster list; alias it
        # instead of building a per-model copy (it is never mutated).
        self._cluster_of: List[int] = topology._cluster_of
        self._cluster_table = cluster_table
        self._node_table = _node_delay_table(topology, cluster_table)
        self._block_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _block_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy mirrors ``(block_table, cluster_of)`` for bulk lookup."""
        arrs = self._block_cache
        if arrs is None:
            arrs = self._block_cache = (
                np.asarray(self._cluster_table, dtype=np.float64),
                np.asarray(self._cluster_of, dtype=np.intp),
            )
        return arrs

    def one_way(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return LOCAL_DELIVERY_MS
        table = self._node_table
        if table is not None:
            base = table[src][dst]
        else:
            cluster_of = self._cluster_of
            base = self._cluster_table[cluster_of[src]][cluster_of[dst]]
        if self._sigma <= 0.0:
            return base
        return self._jittered(base, rng)

    def min_delay(self, src_cluster: int, dst_cluster: int) -> float:
        """Hard lower bound (ms) on any one-way ``src_cluster ->
        dst_cluster`` delay this model can produce.

        The conservative-lookahead contract for
        :class:`~repro.sim.horizon.HorizonScheduler`: no message between
        nodes of the two clusters may ever be delivered earlier than
        ``send_time + min_delay``.  Jitter-free models return the exact
        cluster-pair table entry (every delay *equals* the bound; for
        ``src_cluster == dst_cluster`` the bound is
        :data:`LOCAL_DELIVERY_MS`, the self-send floor).  With jitter
        enabled the multiplicative lognormal factor has infimum 0, so the
        only honest bound is ``0.0`` — which carries no lookahead and
        makes the horizon machinery fall back to serial execution.
        """
        if self._sigma > 0.0:
            return 0.0
        base = self._cluster_table[src_cluster][dst_cluster]
        if src_cluster == dst_cluster:
            # A same-cluster message is either a distinct-node send (the
            # table entry) or a self-send (the local-delivery floor);
            # the bound must cover both.
            return min(base, LOCAL_DELIVERY_MS)
        return base

    def base_delays(
        self, src: int, dsts: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorized jitter-free base delays ``src -> each of dsts``.

        Bitwise-equal to the scalar ``one_way`` base values (both read
        the same float64 cluster-pair block table); self-sends map to
        :data:`LOCAL_DELIVERY_MS`.  O(len(dsts)) regardless of grid
        size — the bulk-lookup path for fan-out on 1k-10k-node grids.
        """
        blocks, cluster_of = self._block_arrays()
        dst_arr = np.asarray(dsts, dtype=np.intp)
        base = blocks[cluster_of[src], cluster_of[dst_arr]]
        if base.size:
            base[dst_arr == src] = LOCAL_DELIVERY_MS
        return base


class TwoTierLatency(_TableLatency):
    """LAN delay inside a cluster, a single WAN delay between clusters.

    The simplest model exhibiting the paper's latency hierarchy; used by
    unit tests and the synthetic scalability study.
    """

    def __init__(
        self,
        topology: GridTopology,
        lan_ms: float = 0.05,
        wan_ms: float = 10.0,
        jitter: float = 0.0,
    ) -> None:
        if lan_ms < 0 or wan_ms < 0:
            raise NetworkError("latencies must be non-negative")
        if wan_ms < lan_ms:
            raise NetworkError(
                f"WAN latency ({wan_ms}) below LAN latency ({lan_ms}) "
                "inverts the grid hierarchy"
            )
        self.topology = topology
        self.lan_ms = float(lan_ms)
        self.wan_ms = float(wan_ms)
        self._init_jitter(jitter)
        n = topology.n_clusters
        cluster_table = [
            [self.lan_ms if i == j else self.wan_ms for j in range(n)]
            for i in range(n)
        ]
        self._init_tables(topology, cluster_table)


class MatrixLatency(_TableLatency):
    """Per-cluster-pair latencies from a (possibly asymmetric) RTT matrix.

    Parameters
    ----------
    topology:
        Grid topology; the matrix is indexed by cluster index.
    rtt_ms:
        Square matrix of round-trip times in milliseconds; entry
        ``[i, j]`` is the measured RTT from cluster ``i`` to cluster
        ``j``.  The diagonal holds the intra-cluster (LAN) RTT.
        One-way delay is ``rtt/2``.
    jitter:
        Relative lognormal spread applied per message (0 = deterministic).
    """

    def __init__(
        self,
        topology: GridTopology,
        rtt_ms: Sequence[Sequence[float]] | np.ndarray,
        jitter: float = 0.0,
    ) -> None:
        matrix = np.asarray(rtt_ms, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise NetworkError(f"RTT matrix must be square, got {matrix.shape}")
        if matrix.shape[0] != topology.n_clusters:
            raise NetworkError(
                f"RTT matrix is {matrix.shape[0]}x{matrix.shape[0]} but the "
                f"topology has {topology.n_clusters} clusters"
            )
        if np.any(matrix < 0):
            raise NetworkError("RTT matrix has negative entries")
        self.topology = topology
        self.rtt_ms = matrix
        self._one_way = matrix / 2.0
        self._init_jitter(jitter)
        # Precomputed fast-path tables (plain floats; `.tolist()` yields
        # exactly the float64 values the numpy path produced).
        self._init_tables(topology, self._one_way.tolist())

    def mean_one_way(self, src_cluster: int, dst_cluster: int) -> float:
        """Jitter-free one-way delay between two clusters (ms)."""
        return float(self._one_way[src_cluster, dst_cluster])
