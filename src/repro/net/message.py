"""Messages exchanged by simulated processes.

A message is addressed to a *(node, port)* pair: the node selects the
machine, the port selects the agent on that machine (an intra-algorithm
peer, an inter-algorithm peer, an application endpoint...).  This mirrors
the paper's implementation, where each algorithm instance owns its own UDP
socket on the host.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["Message", "DEFAULT_MESSAGE_SIZE"]

#: Nominal wire size (bytes) charged to a message when the sender does not
#: specify one.  Chosen to approximate a small UDP control datagram.
DEFAULT_MESSAGE_SIZE = 64


class Message:
    """An in-flight (or delivered) message.

    Attributes
    ----------
    src, dst:
        Node ids of the sending and receiving machines.
    port:
        Name of the protocol instance this message belongs to; delivery
        dispatches on ``(dst, port)``.
    kind:
        Protocol-specific message type (``"request"``, ``"token"``, ...).
    payload:
        Protocol-specific fields.  Treated as immutable after send.
    size:
        Nominal size in bytes, used only by the statistics layer.
    sent_at, delivered_at:
        Simulated timestamps stamped by the network.
    seq:
        Network-global monotone delivery sequence number, stamped when
        the delivery is scheduled.  Strictly orders same-instant sends,
        which timestamps cannot; the recovery layer's epoch fence keys
        on it (-1 until stamped).
    """

    __slots__ = (
        "src",
        "dst",
        "port",
        "kind",
        "payload",
        "size",
        "sent_at",
        "delivered_at",
        "seq",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        port: str,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        size: int = DEFAULT_MESSAGE_SIZE,
    ) -> None:
        self.src = src
        self.dst = dst
        self.port = port
        self.kind = kind
        self.payload = payload if payload is not None else {}
        self.size = size
        self.sent_at: float = float("nan")
        self.delivered_at: float = float("nan")
        self.seq: int = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.kind} {self.src}->{self.dst} port={self.port} "
            f"payload={self.payload!r}>"
        )
