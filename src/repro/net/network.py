"""The simulated network.

``Network.send`` stamps the message, records it in the statistics layer,
samples a one-way latency from the latency model and schedules delivery
on the kernel.  Delivery dispatches to the handler registered for the
``(node, port)`` destination address.

Ordering semantics
------------------
By default the network behaves like UDP (as in the paper's C
implementation): each message's delay is sampled independently, so two
messages on the same link may be delivered out of send order when jitter
is enabled.  ``fifo=True`` enforces per-``(src, dst, port)`` FIFO by
never delivering a message earlier than its predecessor on the same
flow — useful for isolating reordering effects in the ablation bench.

Delivery batching (scale-out path)
----------------------------------
A broadcast on a jitter-free grid schedules many deliveries for the same
instant; each becomes its own kernel event.  With ``batch=True`` (or
automatically above :data:`~repro.net.topology.LARGE_GRID_NODES` nodes)
consecutive same-instant deliveries coalesce into one kernel event that
unpacks its messages in arrival order.  Coalescing only happens while
the kernel sequence counter is *contiguous* with the open batch — i.e.
no other event was scheduled in between — and the burned sequence
numbers are re-consumed, so every event in the run keeps exactly the
``(time, seq)`` key it would have had unbatched: the run is
bit-identical (digest-pinned by the batching equivalence tests).
Batching disables itself whenever per-message scheduling is observable:
``fifo`` flows, fault injection, crash controllers, a tie-seed sanitizer
salt, or an ``"event"`` trace subscriber.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..errors import NetworkError
from ..sim.kernel import Simulator
from .faults import CrashController, FaultInjector
from .latency import LatencyModel
from .message import DEFAULT_MESSAGE_SIZE, Message
from .stats import MessageStats
from .topology import LARGE_GRID_NODES, GridTopology

__all__ = ["Network"]

Handler = Callable[[Message], None]


class Network:
    """Message transport between agents on simulated nodes.

    Parameters
    ----------
    sim:
        The discrete-event kernel.
    topology:
        Grid topology (for statistics classification and validation).
    latency:
        Latency model producing one-way delays.
    fifo:
        Enforce per-flow FIFO delivery (default ``False`` = UDP-like).
    faults:
        Optional fault injector (tests only).
    crashes:
        Optional :class:`~repro.net.faults.CrashController`; without one
        every node is permanently up and the crash checks short-circuit.
    batch:
        Coalesce consecutive same-instant deliveries into one kernel
        event (see the module docstring).  ``None`` (the default) enables
        it automatically above :data:`~repro.net.topology.LARGE_GRID_NODES`
        nodes; ``True``/``False`` force it.  Forcing it on is still a
        no-op when per-message scheduling is observable (``fifo``,
        faults, crashes, a kernel tie salt).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: GridTopology,
        latency: LatencyModel,
        fifo: bool = False,
        faults: Optional[FaultInjector] = None,
        crashes: Optional[CrashController] = None,
        batch: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.latency = latency
        self.fifo = fifo
        self.faults = faults
        self.crashes = crashes
        if batch is None:
            batch = topology.n_nodes >= LARGE_GRID_NODES
        #: Whether delivery coalescing is armed.  Any feature that makes
        #: per-message scheduling observable vetoes it (the ``"event"``
        #: trace kind is checked per coalesce, as subscribers can attach
        #: mid-run).
        self._batching = (
            bool(batch)
            and not fifo
            and faults is None
            and crashes is None
            and sim._tie_salt is None
        )
        # The open batch: the youngest delivery event, its due time, and
        # the kernel sequence counter expected if nothing else scheduled.
        self._bat_event = None
        self._bat_due = 0.0
        self._bat_seq = -1
        self.stats = MessageStats(topology)
        self._handlers: Dict[Tuple[int, str], Handler] = {}
        self._flow_clock: Dict[Tuple[int, int, str], float] = {}
        self._seq = 0
        self._rng = sim.rng.stream("network/latency")
        self._fault_rng = sim.rng.stream("network/faults")
        # Interposition points for observers (repro.obs).  Both stay empty
        # tuples when unused so the hot send path pays one falsy check —
        # the same gating discipline as ``trace.active_kinds``.
        self._send_taps: Tuple[Callable[[Message], None], ...] = ()
        self._register_hooks: Tuple[Callable[[int, str], None], ...] = ()
        # Delivery interception (repro.analysis.explore): when set, sends
        # are captured instead of scheduled — see set_delivery_intercept.
        self._intercept: Optional[Handler] = None
        # Cluster partition (repro.experiments.clusterpool): when set,
        # sends whose destination cluster this process does not own are
        # captured into the outbox instead of scheduled locally — see
        # set_cluster_partition.
        self._partition_owned = None
        self._partition_outbox = None
        self._partition_cluster_of = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, node: int, port: str, handler: Handler) -> None:
        """Attach ``handler`` to the address ``(node, port)``.

        Exactly one handler per address; re-registering is an error
        (it almost always means two agents were wired to the same port).
        """
        if not 0 <= node < self.topology.n_nodes:
            raise NetworkError(f"unknown node {node}")
        key = (node, port)
        if key in self._handlers:
            raise NetworkError(f"address {key} already has a handler")
        self._handlers[key] = handler
        if self._register_hooks:
            for hook in self._register_hooks:
                hook(node, port)

    def unregister(self, node: int, port: str) -> None:
        """Detach the handler at ``(node, port)``; missing address is an error."""
        try:
            del self._handlers[(node, port)]
        except KeyError:
            raise NetworkError(f"no handler at {(node, port)}") from None

    def wrap_handler(
        self, node: int, port: str, wrap: Callable[[Handler], Handler]
    ) -> None:
        """Replace the handler at ``(node, port)`` with
        ``wrap(current_handler)``.

        This is how an interposition layer (e.g. the recovery fence)
        filters an agent's inbound traffic without the agent — or its
        message handlers — knowing: exactly the non-intrusive contract
        the composition itself follows."""
        key = (node, port)
        try:
            current = self._handlers[key]
        except KeyError:
            raise NetworkError(f"no handler at {key}") from None
        wrapped = wrap(current)
        if not callable(wrapped):
            raise NetworkError(f"wrap() returned non-callable {wrapped!r}")
        self._handlers[key] = wrapped

    # ------------------------------------------------------------------ #
    # observer taps (repro.obs)
    # ------------------------------------------------------------------ #
    def add_send_tap(self, tap: Callable[[Message], None]) -> None:
        """Call ``tap(msg)`` after every successful :meth:`send`.

        The tap observes the already-scheduled message (``seq`` stamped
        unless a fault dropped it); it must not mutate the message or
        send traffic of its own.  This is the outbound mirror of
        :meth:`wrap_handler`: together they let an observability layer
        see every hop without touching any algorithm."""
        self._send_taps = (*self._send_taps, tap)

    def remove_send_tap(self, tap: Callable[[Message], None]) -> None:
        """Detach a tap added with :meth:`add_send_tap`."""
        if tap not in self._send_taps:
            raise NetworkError("send tap not attached")
        # Equality, not identity: bound methods are re-created on each
        # attribute access, so ``is`` would never match one.
        self._send_taps = tuple(t for t in self._send_taps if t != tap)

    def add_register_hook(self, hook: Callable[[int, str], None]) -> None:
        """Call ``hook(node, port)`` after every future :meth:`register`.

        Lets an interposition layer wrap handlers that appear *after* it
        attached (e.g. peers rebuilt by the recovery layer's failover)."""
        self._register_hooks = (*self._register_hooks, hook)

    def remove_register_hook(self, hook: Callable[[int, str], None]) -> None:
        """Detach a hook added with :meth:`add_register_hook`."""
        if hook not in self._register_hooks:
            raise NetworkError("register hook not attached")
        self._register_hooks = tuple(
            h for h in self._register_hooks if h != hook
        )

    def addresses(self) -> Tuple[Tuple[int, str], ...]:
        """All currently registered ``(node, port)`` addresses, sorted.

        Interposition layers use this to wrap every existing handler in
        one sweep (and :meth:`add_register_hook` for handlers that appear
        later)."""
        return tuple(sorted(self._handlers))

    # ------------------------------------------------------------------ #
    # delivery interception (repro.analysis.explore)
    # ------------------------------------------------------------------ #
    def set_delivery_intercept(self, intercept: Optional[Handler]) -> None:
        """Capture every outbound message instead of scheduling delivery.

        While an interceptor is installed, :meth:`send` stamps the
        message's ``seq`` and hands it to ``intercept(msg)`` *instead of*
        sampling a latency and posting a kernel event — the latency RNG
        is never touched, per-flow FIFO clocks never advance, and no
        event enters the calendar.  The controlled scheduler of the model
        checker (:mod:`repro.analysis.explore`) uses this to take
        ownership of the delivery order: it holds captured messages in
        per-flow queues and feeds chosen ones back through
        :meth:`deliver_intercepted`.  Pass ``None`` to restore normal
        scheduling.  When no interceptor is set this feature costs one
        ``None`` check per send and is otherwise invisible (digests are
        unaffected).
        """
        self._intercept = intercept

    def deliver_intercepted(self, msg: Message) -> None:
        """Deliver a previously captured message to its handler, now.

        The counterpart of :meth:`set_delivery_intercept`: runs the exact
        delivery path (crash checks, trace emission, handler dispatch) at
        the current simulated instant.
        """
        self._deliver(msg)

    # ------------------------------------------------------------------ #
    # cluster partitioning (repro.experiments.clusterpool)
    # ------------------------------------------------------------------ #
    def set_cluster_partition(self, owned, outbox) -> None:
        """Capture sends leaving the ``owned`` clusters instead of
        scheduling them.

        The cluster-parallel worker's hook: ``owned`` is the set of
        cluster ids this process executes, ``outbox`` a list that
        receives ``(due_ms, msg)`` pairs for every send whose
        destination cluster belongs to another worker.  The latency is
        sampled *here*, by the sending worker — the same draw the serial
        run would make — so the receiving worker schedules the delivery
        at the exact same absolute time via :meth:`inject_delivery`.
        Sends inside the owned clusters are unaffected.  Pass
        ``owned=None`` to clear.
        """
        if owned is None:
            self._partition_owned = None
            self._partition_outbox = None
            self._partition_cluster_of = None
            return
        self._partition_owned = frozenset(owned)
        self._partition_outbox = outbox
        self._partition_cluster_of = self.topology._cluster_of

    def inject_delivery(self, msg: Message, due: float) -> None:
        """Schedule a delivery captured by another worker's outbox.

        ``due`` is absolute simulated time (stamped by the sender);
        conservative lookahead guarantees it lies at or beyond the
        receiving worker's window barrier, so it is never in the past.
        """
        msg.seq = self._seq
        self._seq += 1
        self.sim.post_at(due, self._deliver, (msg,))

    @property
    def seq_watermark(self) -> int:
        """The sequence number the *next* scheduled delivery will carry.

        Every message already scheduled has a strictly smaller ``seq``,
        so a recovery epoch fence set to this value drops exactly the
        in-flight traffic of the old epoch — including same-instant
        sends, which timestamps could not separate."""
        return self._seq

    # ------------------------------------------------------------------ #
    # sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        port: str,
        kind: str,
        payload: Optional[dict] = None,
        size: int = DEFAULT_MESSAGE_SIZE,
    ) -> Message:
        """Send a message; returns the (already stamped) message object.

        Raises :class:`NetworkError` if the destination address has no
        registered handler — unlike real UDP, a misdirected message in a
        simulation is always a bug worth failing loudly on.
        """
        if (dst, port) not in self._handlers:
            raise NetworkError(f"no handler registered at ({dst}, {port!r})")
        if not 0 <= src < self.topology.n_nodes:
            raise NetworkError(f"unknown source node {src}")
        msg = Message(src, dst, port, kind, payload, size)
        sim = self.sim
        msg.sent_at = sim._now
        if self.crashes is not None and self.crashes.is_down(src):
            # A crashed node emits nothing: not even a *sent* statistic
            # (its processes are halted; this path only triggers when an
            # unbound caller keeps driving a peer on a dead node).
            return msg
        self.stats.record(msg)
        if "send" in sim.trace.active_kinds:
            sim.trace.emit(
                "send", time=sim._now, src=src, dst=dst, port=port,
                kind=kind, payload=msg.payload,
            )
        if self.faults is not None and self.faults.should_drop(
            self._fault_rng, kind
        ):
            if self._send_taps:
                for tap in self._send_taps:
                    tap(msg)  # seq stays -1: sent but never scheduled
            return msg
        self._schedule_delivery(msg, extra_factor=1.0)
        if self.faults is not None and self.faults.should_duplicate(
            self._fault_rng, kind
        ):
            copy = Message(src, dst, port, kind, dict(msg.payload), size)
            copy.sent_at = msg.sent_at
            # The copy obeys the flow's FIFO floor but must not raise it:
            # its delay_factor-inflated due time is an artefact of the
            # fault, and advancing the per-flow clock by it would delay
            # every subsequent genuine message on the flow.
            self._schedule_delivery(
                copy,
                extra_factor=self.faults.delay_factor,
                advance_flow=False,
            )
        if self._send_taps:
            for tap in self._send_taps:
                tap(msg)
        return msg

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    def _schedule_delivery(
        self, msg: Message, extra_factor: float, advance_flow: bool = True
    ) -> None:
        if self._intercept is not None:
            # Controlled-scheduler mode: stamp the seq (send order is
            # still meaningful to the captor) and hand the message over
            # without sampling a latency — the RNG stream stays untouched
            # so interception is invisible to everything else.
            msg.seq = self._seq
            self._seq += 1
            self._intercept(msg)
            return
        if (
            self._partition_owned is not None
            and self._partition_cluster_of[msg.dst]
            not in self._partition_owned
        ):
            # Cluster-parallel worker: this destination belongs to
            # another process.  Sample the latency here (the sender's
            # draw) and hand the absolute due time to the outbox; the
            # owning worker injects it after the next window barrier.
            delay = (
                self.latency.one_way(msg.src, msg.dst, self._rng)
                * extra_factor
            )
            msg.seq = self._seq
            self._seq += 1
            self._partition_outbox.append((self.sim._now + delay, msg))
            return
        sim = self.sim
        delay = self.latency.one_way(msg.src, msg.dst, self._rng) * extra_factor
        due = sim._now + delay
        if self.fifo:
            flow = (msg.src, msg.dst, msg.port)
            due = max(due, self._flow_clock.get(flow, 0.0))
            if advance_flow:
                self._flow_clock[flow] = due
        msg.seq = self._seq
        self._seq += 1
        if self._batching:
            # Coalesce into the open batch when (a) due times match, (b)
            # the kernel seq counter is contiguous with the batch (no
            # other event was scheduled since — an interleaver would need
            # a seq strictly between the batch's consecutive seqs, which
            # cannot exist), and (c) the batch event has not fired yet
            # (firing marks it cancelled).  The kernel seq is burned so
            # every later event keeps its unbatched ``(time, seq)`` key.
            ev = self._bat_event
            if (
                ev is not None
                and due == self._bat_due
                and sim._seq == self._bat_seq
                and not ev.cancelled
                and not sim.trace.event_active
            ):
                if ev.callback is self._run_batch:
                    ev.args[0].append((self._deliver, (msg,)))
                else:  # promote the single delivery to a batch in place
                    ev.args = ([(ev.callback, ev.args),
                                (self._deliver, (msg,))],)
                    ev.callback = self._run_batch
                sim._seq += 1  # burn the seq the unbatched event would take
                self._bat_seq = sim._seq
                return
            self._bat_event = sim.post_at(due, self._deliver, (msg,))
            self._bat_due = due
            self._bat_seq = sim._seq
            return
        # Handle-free scheduling: deliveries are never cancelled, and one
        # is created per message — the dominant event source by far.
        sim.post_at(due, self._deliver, (msg,))

    def _run_batch(self, items: list) -> None:
        """Unpack one coalesced delivery event in arrival order.

        Items are generic ``(callback, args)`` pairs rather than bare
        messages so the compiled transport can coalesce its fused and
        table-dispatched deliveries into the same batch."""
        for callback, args in items:
            callback(*args)

    def _deliver(self, msg: Message) -> None:
        if self.crashes is not None and self.crashes.lost_in_flight(
            msg.dst, msg.sent_at
        ):
            # Destination node crashed: in-flight messages die with it
            # (and messages sent before its restart are equally lost).
            return
        handler = self._handlers.get((msg.dst, msg.port))
        if handler is None:
            # The agent deregistered while the message was in flight
            # (e.g. teardown); drop silently like a closed UDP socket.
            return
        sim = self.sim
        msg.delivered_at = sim._now
        if "deliver" in sim.trace.active_kinds:
            sim.trace.emit(
                "deliver", time=sim._now, src=msg.src, dst=msg.dst,
                port=msg.port, kind=msg.kind, payload=msg.payload,
            )
        handler(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network nodes={self.topology.n_nodes} "
            f"handlers={len(self._handlers)} fifo={self.fifo}>"
        )
