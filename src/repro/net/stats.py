"""Message statistics.

The paper's second metric is the **number of inter-cluster sent
messages**; the statistics layer classifies every send as *local* (same
node), *intra-cluster* or *inter-cluster* and tallies counts and bytes,
overall and per port (protocol instance).  A per-cluster-pair matrix is
kept for the scalability and topology studies.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

import numpy as np

from .message import Message
from .topology import GridTopology

__all__ = ["MessageStats"]


class MessageStats:
    """Tallies of messages sent through one :class:`~repro.net.network.Network`."""

    def __init__(self, topology: GridTopology) -> None:
        self.topology = topology
        self.reset()

    def reset(self) -> None:
        """Zero every counter (e.g. after a warm-up phase)."""
        self.total = 0
        self.local = 0
        self.intra_cluster = 0
        self.inter_cluster = 0
        self.bytes_total = 0
        self.bytes_inter_cluster = 0
        self.by_port: Counter[str] = Counter()
        self.inter_by_port: Counter[str] = Counter()
        self.by_kind: Counter[str] = Counter()
        # Plain-int accumulators on the per-send path; the numpy view is
        # materialised on demand (scalar `ndarray[i, j] += 1` costs more
        # than the rest of `record` combined).
        n = self.topology.n_clusters
        self._matrix = [[0] * n for _ in range(n)]
        # Alias the topology's dense node->cluster list (never mutated)
        # instead of copying it: at 10k nodes every redundant O(N) copy
        # counts, and the accumulators above are already O(C^2 + ports).
        self._cluster_of = self.topology._cluster_of

    @property
    def cluster_matrix(self) -> np.ndarray:
        """Sent-message counts as a ``(n_clusters, n_clusters)`` array."""
        return np.asarray(self._matrix, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def record(self, msg: Message) -> None:
        """Account one sent message (called by the network at send time,
        i.e. dropped messages still count as *sent*, as in the paper's
        'number of sent messages' metric)."""
        self.total += 1
        self.bytes_total += msg.size
        self.by_port[msg.port] += 1
        self.by_kind[msg.kind] += 1
        src, dst = msg.src, msg.dst
        if src == dst:
            self.local += 1
            return
        cluster_of = self._cluster_of
        ci = cluster_of[src]
        cj = cluster_of[dst]
        self._matrix[ci][cj] += 1
        if ci == cj:
            self.intra_cluster += 1
        else:
            self.inter_cluster += 1
            self.bytes_inter_cluster += msg.size
            self.inter_by_port[msg.port] += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, int]:
        """A plain-dict summary (stable keys, safe to compare in tests)."""
        return {
            "total": self.total,
            "local": self.local,
            "intra_cluster": self.intra_cluster,
            "inter_cluster": self.inter_cluster,
            "bytes_total": self.bytes_total,
            "bytes_inter_cluster": self.bytes_inter_cluster,
        }

    def inter_cluster_for_ports(self, prefix: str) -> int:
        """Inter-cluster sends whose port name starts with ``prefix``
        (e.g. ``"inter"`` to isolate the inter-algorithm traffic)."""
        return sum(
            count
            for port, count in self.inter_by_port.items()
            if port.startswith(prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MessageStats total={self.total} intra={self.intra_cluster} "
            f"inter={self.inter_cluster} local={self.local}>"
        )
