"""Grid topology: nodes grouped into clusters.

The paper's platform model is a federation of clusters: nodes inside one
cluster talk over a LAN, clusters talk over a WAN, and the WAN latencies
are heterogeneous (Figure 3).  The topology object only captures the
*grouping*; latencies live in :mod:`repro.net.latency`.

Node identifiers are dense integers ``0..n_nodes-1`` assigned cluster by
cluster, which keeps cluster lookup a single array index.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..errors import TopologyError

__all__ = ["Cluster", "GridTopology", "uniform_topology", "LARGE_GRID_NODES"]

#: Node count above which the scale-out defaults kick in automatically:
#: the network coalesces same-instant deliveries (``Network(batch=None)``)
#: and the experiment runner switches to the bounded metrics collector.
#: Below it every layer keeps the exact paper-scale accounting.
LARGE_GRID_NODES = 1024


class Cluster:
    """A named group of node ids."""

    __slots__ = ("name", "nodes")

    def __init__(self, name: str, nodes: Sequence[int]) -> None:
        if not nodes:
            raise TopologyError(f"cluster {name!r} has no nodes")
        self.name = name
        self.nodes = tuple(int(n) for n in nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.name} nodes={self.nodes[0]}..{self.nodes[-1]}>"


class GridTopology:
    """A federation of clusters with dense node ids.

    Parameters
    ----------
    clusters:
        The clusters, whose node id sets must be disjoint and together
        cover ``0..n-1`` for some ``n``.
    """

    def __init__(self, clusters: Sequence[Cluster]) -> None:
        if not clusters:
            raise TopologyError("topology needs at least one cluster")
        self.clusters: Tuple[Cluster, ...] = tuple(clusters)
        mapping: Dict[int, int] = {}
        for ci, cluster in enumerate(self.clusters):
            for node in cluster.nodes:
                if node in mapping:
                    raise TopologyError(f"node {node} appears in two clusters")
                mapping[node] = ci
        n = len(mapping)
        if set(mapping) != set(range(n)):
            raise TopologyError(
                "node ids must be dense integers 0..n-1 "
                f"(got {sorted(mapping)[:5]}...)"
            )
        # Dense array for O(1) cluster lookup on the hot path.
        self._cluster_of: List[int] = [0] * n
        for node, ci in mapping.items():
            self._cluster_of[node] = ci

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self._cluster_of)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def nodes(self) -> range:
        """All node ids."""
        return range(self.n_nodes)

    def cluster_of(self, node: int) -> int:
        """Index of the cluster containing ``node``."""
        try:
            return self._cluster_of[node]
        except IndexError:
            raise TopologyError(f"unknown node {node}") from None

    def cluster_name(self, node: int) -> str:
        return self.clusters[self.cluster_of(node)].name

    def same_cluster(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same cluster (intra link)."""
        return self._cluster_of[a] == self._cluster_of[b]

    def cluster_nodes(self, cluster_index: int) -> Tuple[int, ...]:
        """Node ids of the cluster at ``cluster_index``."""
        return self.clusters[cluster_index].nodes

    def coordinator_node(self, cluster_index: int) -> int:
        """The node conventionally hosting the cluster's coordinator
        (the first node of the cluster; the coordinator is a separate
        *agent* co-located on that node, not a separate machine)."""
        return self.clusters[cluster_index].nodes[0]

    def coordinator_nodes(self) -> Tuple[int, ...]:
        """Coordinator node of every cluster, in cluster order."""
        return tuple(self.coordinator_node(ci) for ci in range(self.n_clusters))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GridTopology {self.n_clusters} clusters, {self.n_nodes} nodes>"
        )


def uniform_topology(
    n_clusters: int,
    nodes_per_cluster: int,
    names: Iterable[str] | None = None,
) -> GridTopology:
    """Build a topology of ``n_clusters`` equal clusters.

    ``names`` defaults to ``c0, c1, ...``.
    """
    if n_clusters <= 0 or nodes_per_cluster <= 0:
        raise TopologyError("cluster and node counts must be positive")
    if names is None:
        name_list = [f"c{i}" for i in range(n_clusters)]
    else:
        name_list = list(names)
        if len(name_list) != n_clusters:
            raise TopologyError(
                f"got {len(name_list)} names for {n_clusters} clusters"
            )
    clusters = []
    nxt = 0
    for name in name_list:
        clusters.append(Cluster(name, range(nxt, nxt + nodes_per_cluster)))
        nxt += nodes_per_cluster
    return GridTopology(clusters)
