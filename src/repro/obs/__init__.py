"""Causal tracing and critical-path observability.

This package explains *why* a critical-section wait took as long as it
did.  It interposes at the network boundary only (send taps +
:meth:`~repro.net.network.Network.wrap_handler`), stamps vector clocks
onto every message out-of-band, reconstructs the causal chain behind
each grant, and decomposes obtaining time into intra-cluster latency,
inter-cluster latency, coordinator queueing and remote holding segments
that sum **exactly** to the measured wait — turning the paper's Figure
4–6 aggregates into verifiable mechanisms.

Entry points
------------
* ``ExperimentConfig(obs="paths")`` — per-run reports on
  ``ExperimentResult.obs_report``;
* :class:`ObservabilityLayer` — manual attachment for custom setups;
* ``python -m repro.obs`` — run a scenario, print the breakdown,
  optionally export a Perfetto-loadable Chrome trace.

See ``docs/observability.md`` for a worked example.
"""

from .causality import CausalityRecorder, CSWait, DeliveryRecord
from .counters import ObsCounters
from .export import chrome_trace, chrome_trace_events, write_chrome_trace
from .layer import OBS_LEVELS, ObservabilityLayer
from .path import (
    CATEGORIES,
    COORDINATOR_QUEUE,
    HOLDING,
    INTER_LATENCY,
    INTRA_LATENCY,
    LOCAL,
    CriticalPath,
    PathSegment,
    extract_path,
    extract_paths,
)
from .report import ObsReport, PathDetail, build_report, format_obs_report

__all__ = [
    "CausalityRecorder",
    "CSWait",
    "DeliveryRecord",
    "ObsCounters",
    "ObservabilityLayer",
    "OBS_LEVELS",
    "CriticalPath",
    "PathSegment",
    "extract_path",
    "extract_paths",
    "CATEGORIES",
    "INTRA_LATENCY",
    "INTER_LATENCY",
    "COORDINATOR_QUEUE",
    "HOLDING",
    "LOCAL",
    "ObsReport",
    "PathDetail",
    "build_report",
    "format_obs_report",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
]
