"""Vector-clock causality over the unmodified algorithms.

The recorder interposes at the :class:`~repro.net.network.Network`
boundary only — a send tap on the outbound side and
:meth:`~repro.net.network.Network.wrap_handler` on the inbound side — so
**no algorithm changes** are needed, mirroring the composition's own
non-intrusive contract.  Clock state is kept entirely out-of-band (a side
table keyed by the network's delivery sequence number); message payloads
are never touched, which is why an instrumented run stays bit-identical
to a bare one (see ``tests/properties/test_observer_transparency.py``).

Clock protocol (Lamport happens-before, vector form; PAPERS.md:
Lamport 1978 and Mattern/Fidge):

* each *node* carries one vector clock (one component per node — the
  node granularity deliberately links a coordinator's intra and inter
  traffic, which is exactly the causal bridge the critical-path walker
  needs);
* on send: tick the sender's own component, stamp the message with a
  copy of the sender's clock;
* on delivery: merge the stamp into the receiver's clock (pointwise
  max), then tick the receiver's own component.

An event *e* with stamp ``V`` is causally after an event at node ``n``
whose send counter was ``r`` iff ``V[n] >= r`` — the single-component
test the critical-path walker uses to separate "this message exists
because of our request" from concurrent traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.message import Message
from ..net.network import Handler, Network
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecord

__all__ = ["DeliveryRecord", "CSWait", "CausalityRecorder", "is_app_cs_port"]


def is_app_cs_port(port: str) -> bool:
    """Whether ``port`` carries application-facing critical sections
    (the intra level of a composition, or a flat instance) — the same
    scoping rule the safety checker and the experiment runner use."""
    return port.startswith("intra") or port == "flat"


class DeliveryRecord:
    """One delivered message hop, with its sender-side vector stamp.

    ``stamp`` is ``None`` when the send predates the recorder (or was a
    fault-injected duplicate): the hop is still timed, just causally
    opaque.
    """

    __slots__ = (
        "seq", "src", "dst", "port", "kind",
        "sent_at", "delivered_at", "size", "stamp",
    )

    def __init__(
        self,
        seq: int,
        src: int,
        dst: int,
        port: str,
        kind: str,
        sent_at: float,
        delivered_at: float,
        size: int,
        stamp: Optional[Tuple[int, ...]],
    ) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.port = port
        self.kind = kind
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.size = size
        self.stamp = stamp

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DeliveryRecord {self.kind} {self.src}->{self.dst} "
            f"port={self.port} t={self.sent_at:.3f}->{self.delivered_at:.3f}>"
        )


class CSWait:
    """One application CS acquisition: request to grant, with the causal
    request mark ``req_mark`` (the requester's send counter at request
    time: any stamp whose requester component reaches it is causally
    after this request)."""

    __slots__ = ("node", "port", "requested_at", "granted_at", "req_mark")

    def __init__(
        self,
        node: int,
        port: str,
        requested_at: float,
        granted_at: float,
        req_mark: int,
    ) -> None:
        self.node = node
        self.port = port
        self.requested_at = requested_at
        self.granted_at = granted_at
        self.req_mark = req_mark

    @property
    def obtaining_time(self) -> float:
        return self.granted_at - self.requested_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CSWait node={self.node} req={self.requested_at:.3f} "
            f"grant={self.granted_at:.3f}>"
        )


class CausalityRecorder:
    """Stamps vector clocks onto every message and records every hop.

    Parameters
    ----------
    sim, net:
        Kernel and transport.  Attaching wraps every currently
        registered handler and hooks future registrations, so late
        joiners (e.g. peers rebuilt by the recovery layer) are covered
        too.
    app_nodes:
        Nodes whose CS requests/grants on application ports are tracked
        as :class:`CSWait` entries (``None`` = every node).
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        app_nodes=None,
    ) -> None:
        self.sim = sim
        self.net = net
        n = net.topology.n_nodes
        #: one vector clock per node
        self.clocks: List[List[int]] = [[0] * n for _ in range(n)]
        self._apps = None if app_nodes is None else frozenset(app_nodes)
        self._in_flight: Dict[int, Tuple[int, ...]] = {}
        #: per-destination-node hop log, in delivery order
        self.deliveries: List[List[DeliveryRecord]] = [[] for _ in range(n)]
        #: parallel delivered_at lists (bisect keys for the path walker)
        self.delivery_times: List[List[float]] = [[] for _ in range(n)]
        #: completed application CS waits, in grant order
        self.waits: List[CSWait] = []
        #: application CS occupancy spans (node, enter, exit)
        self.occupancy: List[Tuple[int, float, float]] = []
        self.sends = 0
        self._open_requests: Dict[Tuple[int, str], Tuple[float, int]] = {}
        self._open_cs: Dict[Tuple[int, str], float] = {}
        net.add_send_tap(self._on_send)
        net.add_register_hook(self._on_register)
        for node, port in net.addresses():
            net.wrap_handler(node, port, self._wrap)
        self._detach_trace = sim.trace.attach({
            "cs_request": self._on_cs_request,
            "cs_enter": self._on_cs_enter,
            "cs_exit": self._on_cs_exit,
        })
        self._attached = True

    def detach(self) -> None:
        """Stop observing new traffic (recorded data stays readable).

        Wrapped handlers stay in place but become pass-through; the send
        tap, register hook and trace subscriptions are removed."""
        if not self._attached:
            return
        self._attached = False
        self.net.remove_send_tap(self._on_send)
        self.net.remove_register_hook(self._on_register)
        self._detach_trace()

    # ------------------------------------------------------------------ #
    # network interposition
    # ------------------------------------------------------------------ #
    def _on_send(self, msg: Message) -> None:
        clock = self.clocks[msg.src]
        clock[msg.src] += 1
        self.sends += 1
        if msg.seq >= 0:  # dropped-by-fault messages are never delivered
            self._in_flight[msg.seq] = tuple(clock)

    def _on_register(self, node: int, port: str) -> None:
        self.net.wrap_handler(node, port, self._wrap)

    def _wrap(self, handler: Handler) -> Handler:
        recorder = self

        def observed(msg: Message) -> None:
            if recorder._attached:
                recorder._on_deliver(msg)
            handler(msg)

        return observed

    def _on_deliver(self, msg: Message) -> None:
        stamp = self._in_flight.pop(msg.seq, None)
        clock = self.clocks[msg.dst]
        if stamp is not None:
            for i, v in enumerate(stamp):
                if v > clock[i]:
                    clock[i] = v
        clock[msg.dst] += 1
        self.deliveries[msg.dst].append(
            DeliveryRecord(
                msg.seq, msg.src, msg.dst, msg.port, msg.kind,
                msg.sent_at, msg.delivered_at, msg.size, stamp,
            )
        )
        self.delivery_times[msg.dst].append(msg.delivered_at)

    # ------------------------------------------------------------------ #
    # application CS tracking (trace-level, like the safety checker)
    # ------------------------------------------------------------------ #
    def _tracked(self, rec: TraceRecord) -> bool:
        return is_app_cs_port(rec.port) and (
            self._apps is None or rec.node in self._apps
        )

    def _on_cs_request(self, rec: TraceRecord) -> None:
        if not self._tracked(rec):
            return
        # The request's own sends (if any) will tick the node's clock
        # next, so "causally after this request" == component >= mark.
        mark = self.clocks[rec.node][rec.node] + 1
        self._open_requests[(rec.node, rec.port)] = (rec.time, mark)

    def _on_cs_enter(self, rec: TraceRecord) -> None:
        if not self._tracked(rec):
            return
        opened = self._open_requests.pop((rec.node, rec.port), None)
        self._open_cs[(rec.node, rec.port)] = rec.time
        if opened is None:
            return  # grant without a tracked request (pre-attach)
        requested_at, mark = opened
        self.waits.append(
            CSWait(rec.node, rec.port, requested_at, rec.time, mark)
        )

    def _on_cs_exit(self, rec: TraceRecord) -> None:
        if not self._tracked(rec):
            return
        entered = self._open_cs.pop((rec.node, rec.port), None)
        if entered is not None:
            self.occupancy.append((rec.node, entered, rec.time))

    # ------------------------------------------------------------------ #
    # happens-before queries (used by the property tests)
    # ------------------------------------------------------------------ #
    @staticmethod
    def stamp_less(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
        """Strict vector-clock order: ``a`` happens-before ``b``."""
        return all(x <= y for x, y in zip(a, b)) and a != b

    def all_deliveries(self) -> List[DeliveryRecord]:
        """Every recorded hop, in global delivery order."""
        merged = [rec for per_node in self.deliveries for rec in per_node]
        merged.sort(key=lambda r: (r.delivered_at, r.seq))
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hops = sum(len(d) for d in self.deliveries)
        return (
            f"<CausalityRecorder sends={self.sends} hops={hops} "
            f"waits={len(self.waits)}>"
        )
