"""``python -m repro.obs`` — run one scenario and explain its waits.

Runs a single configured experiment with the observability layer
attached, prints the compact text report (counters + critical-path
breakdown), and optionally exports the run as Chrome trace-event JSON
for https://ui.perfetto.dev.

Examples
--------
Explain the fig4 composition scenario at the paper's load::

    python -m repro.obs --system composition --rho-over-n 0.5

Export a Perfetto trace of a small run::

    python -m repro.obs --clusters 3 --apps 3 --n-cs 5 \
        --level trace --trace run.trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..experiments.config import OBS_LEVELS, PLATFORMS, SYSTEMS, ExperimentConfig
from ..experiments.runner import run_experiment
from .layer import ObservabilityLayer
from .report import format_obs_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run one scenario and decompose its CS waits.",
    )
    parser.add_argument("--system", choices=SYSTEMS, default="composition")
    parser.add_argument("--intra", default="naimi",
                        help="intra-cluster algorithm (default: naimi)")
    parser.add_argument("--inter", default="naimi",
                        help="inter-cluster algorithm (default: naimi)")
    parser.add_argument("--platform", choices=PLATFORMS, default="grid5000")
    parser.add_argument("--clusters", type=int, default=9, metavar="N")
    parser.add_argument("--apps", type=int, default=6, metavar="N",
                        help="application processes per cluster (default: 6)")
    parser.add_argument("--n-cs", type=int, default=15, metavar="N",
                        help="critical sections per process (default: 15)")
    rho = parser.add_mutually_exclusive_group()
    rho.add_argument("--rho", type=float, default=None,
                     help="absolute think-time ratio rho")
    rho.add_argument("--rho-over-n", type=float, default=None,
                     help="rho as a multiple of the process count "
                     "(the paper's x-axis; default: 0.5)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--level", choices=OBS_LEVELS[1:], default="paths",
                        help="observability verbosity (default: paths)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write Chrome trace-event JSON here "
                        "(implies --level trace)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of text")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    level = "trace" if args.trace else args.level
    n_apps = args.clusters * args.apps
    if args.rho is not None:
        rho = args.rho
    elif args.rho_over_n is not None:
        rho = args.rho_over_n * n_apps
    else:
        rho = 0.5 * n_apps
    config = ExperimentConfig(
        system=args.system,
        intra=args.intra,
        inter=args.inter,
        platform=args.platform,
        n_clusters=args.clusters,
        apps_per_cluster=args.apps,
        n_cs=args.n_cs,
        rho=rho,
        seed=args.seed,
        obs=level,
    )

    def export(layer: ObservabilityLayer) -> None:
        if args.trace:
            layer.write_chrome_trace(args.trace)

    result = run_experiment(config, obs_hook=export)
    report = result.obs_report
    assert report is not None  # level is never "off" here
    if args.json:
        payload = {
            "scenario": config.describe(),
            "level": report.level,
            "counters": report.counters,
            "n_paths": report.n_paths,
            "exact": report.exact,
            "obtaining_total_ms": report.obtaining_total_ms,
            "category_ms": report.category_ms,
            "lan_ms": report.lan_ms,
            "wan_ms": report.wan_ms,
            "wan_dominated": report.wan_dominated,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_obs_report(report, title=config.describe()))
    if args.trace:
        print(f"\nchrome trace written to {args.trace}", file=sys.stderr)
    return 0
