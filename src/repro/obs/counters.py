"""Cheap always-on observability counters.

The counters subscribe to trace kinds through the tracer's per-kind
gating (:attr:`~repro.sim.trace.Tracer.active_kinds`): subscribing is
what switches each emit site on, so with no :class:`ObsCounters`
attached the hot loops pay only the existing ``kind in active_kinds``
membership test — the disabled path stays off the hot loop entirely.
Attached, each record costs one dict increment.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.topology import GridTopology
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecord

__all__ = ["ObsCounters"]


class ObsCounters:
    """Message and CS event counters with per-kind send breakdown."""

    def __init__(
        self, sim: Simulator, topology: Optional[GridTopology] = None
    ) -> None:
        self.sends = 0
        self.delivers = 0
        self.intra_sends = 0
        self.inter_sends = 0
        self.cs_requests = 0
        self.cs_entries = 0
        self.cs_exits = 0
        self.by_kind: Dict[str, int] = {}
        self._topology = topology
        self._detach = sim.trace.attach({
            "send": self._on_send,
            "deliver": self._on_deliver,
            "cs_request": self._on_cs_request,
            "cs_enter": self._on_cs_enter,
            "cs_exit": self._on_cs_exit,
        })

    def detach(self) -> None:
        """Unsubscribe; the emit sites go cold again."""
        self._detach()

    def _on_send(self, rec: TraceRecord) -> None:
        self.sends += 1
        # Message kind travels in fields; record.kind is "send" itself.
        kind = rec.fields["kind"]
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        topo = self._topology
        if topo is not None:
            if topo.same_cluster(rec.src, rec.dst):
                self.intra_sends += 1
            else:
                self.inter_sends += 1

    def _on_deliver(self, rec: TraceRecord) -> None:
        self.delivers += 1

    def _on_cs_request(self, rec: TraceRecord) -> None:
        self.cs_requests += 1

    def _on_cs_enter(self, rec: TraceRecord) -> None:
        self.cs_entries += 1

    def _on_cs_exit(self, rec: TraceRecord) -> None:
        self.cs_exits += 1

    def snapshot(self) -> Dict[str, int]:
        """Flat, deterministically ordered counter dump."""
        out: Dict[str, int] = {
            "sends": self.sends,
            "delivers": self.delivers,
            "intra_sends": self.intra_sends,
            "inter_sends": self.inter_sends,
            "cs_requests": self.cs_requests,
            "cs_entries": self.cs_entries,
            "cs_exits": self.cs_exits,
        }
        for kind in sorted(self.by_kind):
            out[f"send.{kind}"] = self.by_kind[kind]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ObsCounters sends={self.sends} delivers={self.delivers} "
            f"cs={self.cs_entries}>"
        )
