"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

The trace maps the simulation onto the trace-event model as:

* one *process* (``pid``) per simulated node, named after its cluster
  (coordinator nodes are marked);
* three *threads* (``tid``) per node: ``0`` critical sections and CS
  waits, ``1`` inbound messages (one complete ``X`` span per delivery,
  from send to delivery), ``2`` critical-path segments;
* timestamps in microseconds (simulated milliseconds × 1000), as the
  format requires.

The output is plain ``traceEvents`` JSON — load it straight into
https://ui.perfetto.dev to scrub through token journeys visually.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Sequence, Union

from ..net.topology import GridTopology
from .causality import CausalityRecorder
from .path import CriticalPath

__all__ = ["chrome_trace_events", "chrome_trace", "write_chrome_trace"]

_TID_CS = 0
_TID_NET = 1
_TID_PATH = 2

_THREAD_NAMES = {
    _TID_CS: "critical sections",
    _TID_NET: "inbound messages",
    _TID_PATH: "critical path",
}


def _us(t_ms: float) -> float:
    return t_ms * 1000.0


def chrome_trace_events(
    recorder: CausalityRecorder,
    topology: GridTopology,
    paths: Sequence[CriticalPath] = (),
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from recorded causality data."""
    events: List[Dict[str, Any]] = []
    coordinators = set(topology.coordinator_nodes())
    for node in topology.nodes:
        role = " [coordinator]" if node in coordinators else ""
        events.append({
            "ph": "M", "pid": node, "tid": 0, "name": "process_name",
            "args": {
                "name": f"node {node} / {topology.cluster_name(node)}{role}"
            },
        })
        for tid, tname in _THREAD_NAMES.items():
            events.append({
                "ph": "M", "pid": node, "tid": tid, "name": "thread_name",
                "args": {"name": tname},
            })

    for node, entered, exited in recorder.occupancy:
        events.append({
            "ph": "X", "pid": node, "tid": _TID_CS, "name": "cs",
            "ts": _us(entered), "dur": _us(exited - entered),
            "args": {"node": node},
        })
    for wait in recorder.waits:
        events.append({
            "ph": "X", "pid": wait.node, "tid": _TID_CS, "name": "wait",
            "ts": _us(wait.requested_at), "dur": _us(wait.obtaining_time),
            "args": {"port": wait.port},
        })

    for rec in recorder.all_deliveries():
        events.append({
            "ph": "X", "pid": rec.dst, "tid": _TID_NET, "name": rec.kind,
            "ts": _us(rec.sent_at), "dur": _us(rec.latency),
            "args": {
                "src": rec.src, "dst": rec.dst,
                "port": rec.port, "seq": rec.seq,
            },
        })

    for path in paths:
        for seg in path.segments:
            args: Dict[str, Any] = {
                "for_node": path.node, "lan": seg.lan,
            }
            if seg.is_hop:
                args["src"] = seg.src
                args["kind"] = seg.kind
            events.append({
                "ph": "X", "pid": seg.node, "tid": _TID_PATH,
                "name": seg.category,
                "ts": _us(seg.start), "dur": _us(seg.duration),
                "args": args,
            })
    return events


def chrome_trace(
    recorder: CausalityRecorder,
    topology: GridTopology,
    paths: Sequence[CriticalPath] = (),
) -> Dict[str, Any]:
    """Complete trace object (``traceEvents`` + display unit)."""
    return {
        "traceEvents": chrome_trace_events(recorder, topology, paths),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    out: Union[str, IO[str]],
    recorder: CausalityRecorder,
    topology: GridTopology,
    paths: Sequence[CriticalPath] = (),
) -> None:
    """Serialise the trace to a path or an open text stream."""
    trace = chrome_trace(recorder, topology, paths)
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
    else:
        json.dump(trace, out)
