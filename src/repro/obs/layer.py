"""The observability layer: one attach point for a whole run.

:class:`ObservabilityLayer` bundles the counters, the causality
recorder and the critical-path extractor behind a single verbosity
knob, matching ``ExperimentConfig.obs``:

========== ==========================================================
``off``    nothing attached (the layer refuses this level — callers
           simply don't construct one)
``counters`` :class:`~repro.obs.counters.ObsCounters` only
``paths``  counters + vector clocks + critical-path breakdown
``trace``  everything above, plus per-CS rows in the report and
           Chrome trace export
========== ==========================================================
"""

from __future__ import annotations

from typing import IO, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..net.network import Network
from ..net.topology import GridTopology
from ..sim.kernel import Simulator
from .causality import CausalityRecorder
from .counters import ObsCounters
from .export import write_chrome_trace
from .path import CriticalPath, extract_paths
from .report import ObsReport, build_report

__all__ = ["OBS_LEVELS", "ObservabilityLayer"]

#: Verbosity levels of the ``obs`` experiment knob, in increasing order.
OBS_LEVELS: Tuple[str, ...] = ("off", "counters", "paths", "trace")


class ObservabilityLayer:
    """Attach observability to a simulation at a chosen verbosity.

    Construct *after* the mutex system (so every handler is registered
    and gets wrapped) and *before* the workload runs.  The layer never
    sends traffic or perturbs schedules — instrumented runs stay
    digest-identical to bare ones.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        level: str = "paths",
        app_nodes: Optional[Sequence[int]] = None,
        coordinator_nodes: Sequence[int] = (),
    ) -> None:
        if level not in OBS_LEVELS or level == "off":
            raise ConfigurationError(
                f"obs level must be one of {OBS_LEVELS[1:]}, got {level!r}"
            )
        self.level = level
        self.sim = sim
        self.net = net
        self.topology: GridTopology = net.topology
        self.coordinator_nodes = tuple(coordinator_nodes)
        self.counters = ObsCounters(sim, net.topology)
        self.recorder: Optional[CausalityRecorder] = None
        if level in ("paths", "trace"):
            self.recorder = CausalityRecorder(sim, net, app_nodes=app_nodes)
        self._paths: Optional[Tuple[CriticalPath, ...]] = None

    def detach(self) -> None:
        """Stop observing; recorded data stays readable."""
        self.counters.detach()
        if self.recorder is not None:
            self.recorder.detach()

    def paths(self) -> Tuple[CriticalPath, ...]:
        """Critical paths of every completed CS (cached after first call)."""
        if self.recorder is None:
            return ()
        if self._paths is None or len(self._paths) != len(self.recorder.waits):
            self._paths = extract_paths(
                self.recorder, self.topology, self.coordinator_nodes
            )
        return self._paths

    def report(self) -> ObsReport:
        """Aggregate everything observed so far into a picklable report."""
        return build_report(
            self.level,
            self.counters.snapshot(),
            self.paths(),
            keep_details=(self.level == "trace"),
        )

    def write_chrome_trace(self, out: Union[str, IO[str]]) -> None:
        """Export the run as Chrome trace-event JSON (Perfetto-loadable).

        Requires a causality-recording level (``paths`` or ``trace``)."""
        if self.recorder is None:
            raise ConfigurationError(
                "chrome trace export needs obs level 'paths' or 'trace'"
            )
        write_chrome_trace(out, self.recorder, self.topology, self.paths())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObservabilityLayer level={self.level}>"
