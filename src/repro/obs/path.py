"""Critical-path extraction: why did this CS grant take that long?

For each application CS acquisition the walker starts at the grant and
walks the causal chain *backwards* to the request, alternating two kinds
of segments:

* **hop** — a message in flight, found as the latest delivery at the
  current node that is causally after the request (vector stamp's
  requester component ``>= req_mark``) and not already consumed by this
  walk;
* **gap** — time a node sat between receiving that message and acting
  (sending the next hop or granting): queueing at a coordinator,
  token holding at a remote application node, or local processing.

Segments tile ``[requested_at, granted_at]`` contiguously by
construction, so their durations sum **exactly** to the measured
obtaining time.  "Exactly" is checked in :class:`fractions.Fraction`
arithmetic: simulated timestamps are binary floats, i.e. exact dyadic
rationals, so converting each endpoint to a ``Fraction`` makes the
telescoping sum an identity rather than an approximation — the
float-world analogue of integer flow-clock equality.

Category semantics (the decomposition of the paper's obtaining time):

==================== ==================================================
``intra_latency``    hop between two nodes of the same cluster (LAN)
``inter_latency``    hop crossing a cluster boundary (WAN)
``coordinator_queue`` gap at a coordinator node: the request or token
                     sat in a coordinator/inter-algorithm queue
``holding``          gap at a non-coordinator application node: the
                     token was being *used* (or retained) remotely
``local``            gap at the requesting node itself (request fan-out
                     processing, or the residual when the chain starts
                     before the request was issued)
==================== ==================================================

Locality is judged *relative to the requester*: a segment is ``lan``
when all its activity stays inside the requester's own cluster, ``wan``
otherwise — so a remote cluster's LAN hop counts toward the WAN side of
the requester's wait, matching the paper's reading of Figure 4.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..net.topology import GridTopology
from .causality import CausalityRecorder, CSWait, DeliveryRecord

__all__ = [
    "PathSegment",
    "CriticalPath",
    "extract_path",
    "extract_paths",
    "INTRA_LATENCY",
    "INTER_LATENCY",
    "COORDINATOR_QUEUE",
    "HOLDING",
    "LOCAL",
    "CATEGORIES",
]

INTRA_LATENCY = "intra_latency"
INTER_LATENCY = "inter_latency"
COORDINATOR_QUEUE = "coordinator_queue"
HOLDING = "holding"
LOCAL = "local"

#: All segment categories, in report order.
CATEGORIES: Tuple[str, ...] = (
    INTRA_LATENCY, INTER_LATENCY, COORDINATOR_QUEUE, HOLDING, LOCAL,
)


@dataclass(frozen=True)
class PathSegment:
    """One tile of a critical path: ``[start, end]`` at/into ``node``.

    For hop segments ``src >= 0`` and ``kind`` names the message; gap
    segments have ``src == -1``.  ``lan`` is locality relative to the
    *requester's* cluster (see module docstring).
    """

    category: str
    start: float
    end: float
    node: int
    src: int = -1
    kind: str = ""
    lan: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def exact_duration(self) -> Fraction:
        return Fraction(self.end) - Fraction(self.start)

    @property
    def is_hop(self) -> bool:
        return self.src >= 0


@dataclass(frozen=True)
class CriticalPath:
    """The full causal decomposition of one CS acquisition."""

    node: int
    cluster: int
    port: str
    requested_at: float
    granted_at: float
    segments: Tuple[PathSegment, ...]

    @property
    def obtaining_time(self) -> float:
        return self.granted_at - self.requested_at

    def exact_total(self) -> Fraction:
        """Sum of segment durations in exact rational arithmetic."""
        total = Fraction(0)
        for seg in self.segments:
            total += seg.exact_duration
        return total

    def is_exact(self) -> bool:
        """Whether the segments sum *exactly* to the obtaining time."""
        return self.exact_total() == (
            Fraction(self.granted_at) - Fraction(self.requested_at)
        )

    def totals(self) -> Dict[str, Fraction]:
        """Exact per-category durations (every category present)."""
        out: Dict[str, Fraction] = {c: Fraction(0) for c in CATEGORIES}
        for seg in self.segments:
            out[seg.category] += seg.exact_duration
        return out

    def locality_split(self) -> Tuple[Fraction, Fraction]:
        """Exact ``(lan, wan)`` durations relative to the requester."""
        lan = wan = Fraction(0)
        for seg in self.segments:
            if seg.lan:
                lan += seg.exact_duration
            else:
                wan += seg.exact_duration
        return lan, wan


def _find_cause(
    recorder: CausalityRecorder,
    node: int,
    at: float,
    t_req: float,
    requester: int,
    req_mark: int,
    consumed: FrozenSet[int],
    grant_step: bool,
    port: str,
) -> Optional[DeliveryRecord]:
    """Latest unconsumed delivery at ``node`` in ``[t_req, at]`` that is
    causally after the request.

    On the grant step a same-instant delivery on the CS port is accepted
    even without a causal stamp: algorithms that forward tokens
    unsolicited (Martin's ring) can grant from a message that left its
    sender *before* our request existed, yet that message is what the
    wait was for.
    """
    times = recorder.delivery_times[node]
    recs = recorder.deliveries[node]
    fallback: Optional[DeliveryRecord] = None
    i = bisect_right(times, at) - 1
    while i >= 0:
        rec = recs[i]
        if rec.delivered_at < t_req:
            break
        if id(rec) not in consumed:
            stamp = rec.stamp
            if stamp is not None and stamp[requester] >= req_mark:
                return rec
            if (
                grant_step
                and fallback is None
                and rec.port == port
                and rec.delivered_at == at
            ):
                fallback = rec
        i -= 1
    return fallback


def extract_path(
    wait: CSWait,
    recorder: CausalityRecorder,
    topology: GridTopology,
    coordinator_nodes: FrozenSet[int] = frozenset(),
) -> CriticalPath:
    """Decompose one CS wait into critical-path segments.

    The walk maintains a cursor ``(node, time)`` starting at the grant
    and repeatedly asks: *which delivery let this node act at this
    time?*  Each answer contributes a gap tile (time the node sat on the
    message) and a hop tile (the message's flight, clipped at the
    request time when it was sent earlier), and moves the cursor to the
    sender at the send time.  When no causal delivery explains the
    cursor — the chain has reached activity begun before the request —
    the remaining span becomes one closing gap tile.
    """
    requester = wait.node
    home = topology.cluster_of(requester)
    t_req = wait.requested_at
    cursor_node = requester
    cursor_t = wait.granted_at
    consumed: set = set()
    segments: List[PathSegment] = []
    grant_step = True

    def gap(node: int, start: float, end: float) -> None:
        if start == end:
            return
        if node == requester:
            category = LOCAL
        elif node in coordinator_nodes:
            category = COORDINATOR_QUEUE
        else:
            category = HOLDING
        segments.append(
            PathSegment(
                category, start, end, node,
                lan=topology.cluster_of(node) == home,
            )
        )

    while cursor_t > t_req:
        rec = _find_cause(
            recorder, cursor_node, cursor_t, t_req,
            requester, wait.req_mark, consumed, grant_step, wait.port,
        )
        grant_step = False
        if rec is None:
            gap(cursor_node, t_req, cursor_t)
            break
        consumed.add(id(rec))
        gap(cursor_node, rec.delivered_at, cursor_t)
        hop_start = rec.sent_at if rec.sent_at > t_req else t_req
        if hop_start < rec.delivered_at:
            intra = topology.same_cluster(rec.src, rec.dst)
            segments.append(
                PathSegment(
                    INTRA_LATENCY if intra else INTER_LATENCY,
                    hop_start,
                    rec.delivered_at,
                    rec.dst,
                    src=rec.src,
                    kind=rec.kind,
                    lan=intra and topology.cluster_of(rec.dst) == home,
                )
            )
        cursor_node = rec.src
        cursor_t = hop_start

    segments.reverse()
    return CriticalPath(
        node=requester,
        cluster=home,
        port=wait.port,
        requested_at=t_req,
        granted_at=wait.granted_at,
        segments=tuple(segments),
    )


def extract_paths(
    recorder: CausalityRecorder,
    topology: GridTopology,
    coordinator_nodes: Sequence[int] = (),
) -> Tuple[CriticalPath, ...]:
    """Critical paths for every completed CS wait, in grant order."""
    coords = frozenset(coordinator_nodes)
    return tuple(
        extract_path(wait, recorder, topology, coords)
        for wait in recorder.waits
    )
