"""Aggregated observability report.

:class:`ObsReport` is the picklable summary stored on
``ExperimentResult.obs_report`` when an experiment runs with the ``obs``
knob on: counters at every level, plus the critical-path breakdown when
the level records causality.  Exact :class:`~fractions.Fraction` sums
are verified at build time and the report keeps the boolean (``exact``)
plus float views of the per-category durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Sequence, Tuple

from ..metrics.report import format_breakdown
from .path import CATEGORIES, CriticalPath

__all__ = ["PathDetail", "ObsReport", "build_report", "format_obs_report"]


@dataclass(frozen=True)
class PathDetail:
    """Per-CS row kept at the ``trace`` verbosity level."""

    node: int
    cluster: int
    requested_at: float
    obtaining_ms: float
    category_ms: Tuple[Tuple[str, float], ...]
    lan_ms: float
    wan_ms: float


@dataclass(frozen=True)
class ObsReport:
    """What one observed run can explain about itself."""

    level: str
    counters: Dict[str, int]
    n_paths: int = 0
    #: every path's segments summed exactly to its obtaining time
    exact: bool = True
    obtaining_total_ms: float = 0.0
    category_ms: Dict[str, float] = field(default_factory=dict)
    lan_ms: float = 0.0
    wan_ms: float = 0.0
    paths: Tuple[PathDetail, ...] = ()

    @property
    def wan_dominated(self) -> bool:
        """Whether time outside the requesters' clusters dominates."""
        return self.wan_ms > self.lan_ms

    def category_share(self, category: str) -> float:
        """Fraction of total explained time spent in ``category``."""
        if self.obtaining_total_ms <= 0.0:
            return 0.0
        return self.category_ms.get(category, 0.0) / self.obtaining_total_ms


def build_report(
    level: str,
    counters: Dict[str, int],
    paths: Sequence[CriticalPath] = (),
    keep_details: bool = False,
) -> ObsReport:
    """Fold critical paths into an :class:`ObsReport`.

    Aggregation runs in exact rational arithmetic and converts to floats
    only at the edges, so ``exact`` really certifies the tiling identity
    for *every* path, not a rounded version of it.
    """
    if not paths:
        return ObsReport(level=level, counters=dict(counters))
    totals: Dict[str, Fraction] = {c: Fraction(0) for c in CATEGORIES}
    lan = wan = grand = Fraction(0)
    exact = True
    details = []
    for path in paths:
        exact = exact and path.is_exact()
        grand += Fraction(path.granted_at) - Fraction(path.requested_at)
        path_totals = path.totals()
        for category, dur in path_totals.items():
            totals[category] += dur
        p_lan, p_wan = path.locality_split()
        lan += p_lan
        wan += p_wan
        if keep_details:
            details.append(
                PathDetail(
                    node=path.node,
                    cluster=path.cluster,
                    requested_at=path.requested_at,
                    obtaining_ms=path.obtaining_time,
                    category_ms=tuple(
                        (c, float(d)) for c, d in path_totals.items() if d
                    ),
                    lan_ms=float(p_lan),
                    wan_ms=float(p_wan),
                )
            )
    return ObsReport(
        level=level,
        counters=dict(counters),
        n_paths=len(paths),
        exact=exact,
        obtaining_total_ms=float(grand),
        category_ms={c: float(v) for c, v in totals.items()},
        lan_ms=float(lan),
        wan_ms=float(wan),
        paths=tuple(details),
    )


def format_obs_report(report: ObsReport, title: str = "") -> str:
    """Compact text rendering (the ``python -m repro.obs`` output)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"obs level: {report.level}")
    lines.append("counters:")
    for key, value in report.counters.items():
        lines.append(f"  {key:<24} {value}")
    if report.n_paths:
        lines.append("")
        lines.append(
            f"critical paths: {report.n_paths} CS entries, "
            f"total wait {report.obtaining_total_ms:.3f} ms "
            f"({'exact' if report.exact else 'INEXACT'} decomposition)"
        )
        lines.append(
            format_breakdown(
                [(c, report.category_ms.get(c, 0.0)) for c in CATEGORIES],
                report.obtaining_total_ms,
            )
        )
        dominance = "WAN" if report.wan_dominated else "LAN"
        lines.append(
            f"  locality (vs requester): LAN {report.lan_ms:.3f} ms, "
            f"WAN {report.wan_ms:.3f} ms -> {dominance}-dominated"
        )
    return "\n".join(lines)
