"""Discrete-event simulation kernel.

This package replaces the paper's Grid'5000 testbed with a deterministic
simulated clock: events (message deliveries, timer expiries) fire in
``(time, insertion-order)`` order, so a run is a pure function of the
configuration and the master seed.

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop and clock.
* :class:`~repro.sim.process.Process` — base class for simulated actors.
* :class:`~repro.sim.rng.RngRegistry` — named deterministic random streams.
* :class:`~repro.sim.trace.Tracer` — zero-cost-when-idle structured tracing.
"""

from .calqueue import CalendarQueue
from .event import Event, EventHandle
from .horizon import HorizonScheduler, LookaheadPlan, derive_plan
from .kernel import Simulator
from .process import Process
from .rng import RngRegistry, stable_hash
from .trace import Tracer, TraceRecord

__all__ = [
    "CalendarQueue",
    "Event",
    "EventHandle",
    "HorizonScheduler",
    "LookaheadPlan",
    "derive_plan",
    "Simulator",
    "Process",
    "RngRegistry",
    "stable_hash",
    "Tracer",
    "TraceRecord",
]
