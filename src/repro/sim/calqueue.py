"""A bucketed event queue for large event populations.

:class:`CalendarQueue` is the classic calendar-queue structure adapted to
the kernel's exact-ordering contract: events are hashed into fixed-width
time buckets (a dict keyed by ``int(time // width)``), each bucket is a
small binary heap of ``(time, seq, event)`` entries, and a separate
min-heap of bucket ids tracks which bucket is due next.

Why this is *exactly* heap-ordered
----------------------------------
``floor(time / width)`` is monotone in ``time``, so every entry in bucket
``b`` is due strictly before every entry in any bucket ``b' > b`` — and
entries that tie on ``time`` necessarily share a bucket, where the inner
heap orders them by the unique ``seq`` tie-break.  The pop order is
therefore the exact ``(time, seq)`` total order of the default tuple
heap, which is what makes ``Simulator(queue="calendar")`` digest-equal to
``Simulator(queue="heap")`` (pinned by the equivalence tests).

When it wins
------------
A binary heap costs O(log n) per operation in the *total* pending-event
population; the calendar queue pays O(log k) in the population of the
*current bucket* (plus amortised O(log B) over active buckets).  On
1k-10k-node grids where tens of thousands of deliveries cluster within a
few simulated milliseconds, buckets stay small and shallow.  The
structure is opt-in because on paper-scale runs (hundreds of pending
events) the plain heap's constant factor wins.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .event import Event

__all__ = ["CalendarQueue"]

#: Heap entries mirror the kernel's ``(time, seq, event)`` tuples.
_Entry = Tuple[float, int, "Event"]


class CalendarQueue:
    """Bucketed priority queue with exact ``(time, seq)`` pop order.

    Supports the subset of the list-heap protocol the kernel uses:
    ``push``/``pop`` (the kernel calls them unbound, mirroring
    ``heapq.heappush(heap, entry)``), ``head`` (peek), ``__len__`` /
    ``__bool__`` (``while heap:`` loops), ``__iter__`` (pending-event
    introspection), and ``compact`` (tombstone removal).
    """

    __slots__ = ("_width", "_buckets", "_ids", "_len")

    def __init__(self, width_ms: float = 1.0) -> None:
        if width_ms <= 0.0:
            raise SimulationError(
                f"calendar bucket width must be positive, got {width_ms}"
            )
        self._width = float(width_ms)
        self._buckets: Dict[int, List[_Entry]] = {}
        self._ids: List[int] = []  # min-heap of bucket ids holding entries
        self._len = 0

    def push(self, entry: _Entry) -> None:
        """Insert ``entry``; same signature shape as ``heappush(q, e)``."""
        b = int(entry[0] // self._width)
        bucket = self._buckets.get(b)
        if bucket is None:
            self._buckets[b] = [entry]
            heapq.heappush(self._ids, b)
        else:
            heapq.heappush(bucket, entry)
        self._len += 1

    def pop(self) -> _Entry:
        """Remove and return the least ``(time, seq)`` entry."""
        ids = self._ids
        buckets = self._buckets
        while ids:
            b = ids[0]
            bucket = buckets.get(b)
            if not bucket:  # defensively skip a drained id
                heapq.heappop(ids)
                buckets.pop(b, None)
                continue
            entry = heapq.heappop(bucket)
            self._len -= 1
            if not bucket:
                heapq.heappop(ids)
                del buckets[b]
            return entry
        raise IndexError("pop from an empty calendar queue")

    def head(self) -> Optional[_Entry]:
        """The least entry without removing it, or ``None`` when empty."""
        ids = self._ids
        buckets = self._buckets
        while ids:
            b = ids[0]
            bucket = buckets.get(b)
            if not bucket:
                heapq.heappop(ids)
                buckets.pop(b, None)
                continue
            return bucket[0]
        return None

    def pop_window(self, cut: float) -> List[_Entry]:
        """Remove and return every entry with ``time < cut``, sorted.

        The horizon scheduler's bulk-extraction path: buckets strictly
        below the cut's bucket are taken *whole* (one ``sort`` per
        bucket instead of a heap-pop per entry — this is where the
        calendar structure pays off), and the boundary bucket is drained
        selectively.  The returned list is in exact ``(time, seq)``
        order; tombstones are included (the caller's drain loop skips
        them, exactly as :meth:`repro.sim.kernel.Simulator.step` would).
        """
        out: List[_Entry] = []
        ids = self._ids
        buckets = self._buckets
        cut_id = int(cut // self._width)
        while ids:
            b = ids[0]
            bucket = buckets.get(b)
            if not bucket:  # defensively skip a drained id
                heapq.heappop(ids)
                buckets.pop(b, None)
                continue
            if b < cut_id:
                # Whole bucket: every entry's time < (b+1)*width <= cut.
                heapq.heappop(ids)
                del buckets[b]
                bucket.sort()
                out.extend(bucket)
                self._len -= len(bucket)
                continue
            if b > cut_id:
                break
            # Boundary bucket: entries straddle the cut.
            while bucket and bucket[0][0] < cut:
                out.append(heapq.heappop(bucket))
                self._len -= 1
            if not bucket:
                heapq.heappop(ids)
                del buckets[b]
            break
        return out

    def push_many(self, entries: List[_Entry]) -> None:
        """Bulk insert (the horizon scheduler's barrier path).

        Appends into each target bucket and re-heapifies only the
        touched ones — O(bucket) per touched bucket instead of
        O(k log bucket) for k per-entry pushes landing in it."""
        buckets = self._buckets
        width = self._width
        new_ids: List[int] = []
        touched = set()
        for entry in entries:
            b = int(entry[0] // width)
            bucket = buckets.get(b)
            if bucket is None:
                buckets[b] = [entry]
                new_ids.append(b)
            else:
                bucket.append(entry)
                touched.add(b)
        for b in touched:
            heapq.heapify(buckets[b])
        for b in new_ids:
            heapq.heappush(self._ids, b)
        self._len += len(entries)

    def compact(self) -> None:
        """Drop every cancelled entry and rebuild the buckets in place."""
        live = [entry for entry in self if not entry[2].cancelled]
        self._buckets.clear()
        self._ids.clear()
        self._len = 0
        for entry in live:
            self.push(entry)

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator[_Entry]:
        for bucket in self._buckets.values():
            yield from bucket

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue entries={self._len} "
            f"buckets={len(self._buckets)} width={self._width}ms>"
        )
