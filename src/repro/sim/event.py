"""Event objects used by the discrete-event kernel.

An :class:`Event` pairs a simulated timestamp with a callback.  Events are
totally ordered by ``(time, seq)`` where ``seq`` is a kernel-assigned
monotonically increasing sequence number; this makes simulation runs fully
deterministic: two events scheduled for the same instant fire in the order
they were scheduled.

The allocation path is deliberately slim: events live on the kernel's hot
path (one per message delivery, timer, and workload step), so the class
keeps ``__slots__``, a trivial ``__init__`` and a bare ``(time, seq)``
comparison.  The :class:`EventHandle` wrapper — which exists so user code
can cancel without reaching into kernel internals — is only allocated by
the public ``schedule``/``schedule_at`` API; internal callers that never
cancel use :meth:`repro.sim.kernel.Simulator.post_at` and skip it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["Event", "EventHandle"]


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code normally only sees the :class:`EventHandle` wrapper used for
    cancellation.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.callback, "__qualname__", "?")
        return f"<Event t={self.time:.6f} seq={self.seq} {name} [{state}]>"


class EventHandle:
    """Opaque handle returned by the scheduler, used to cancel an event.

    Holding a handle does not keep the event alive past its firing; after
    the event fires (or is cancelled) :attr:`active` turns ``False``.

    The handle carries the owning simulator so a cancellation can be
    reported back to the kernel's live-event accounting (exact
    :attr:`~repro.sim.kernel.Simulator.pending` counts and the lazy-deletion
    compaction heuristic).  Handles built without a simulator — e.g. the
    inert handles a halted :class:`~repro.sim.process.Process` returns —
    just flip the flag.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: Optional[object] = None) -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) due."""
        return self._event.time

    @property
    def active(self) -> bool:
        """``True`` while the event is still pending and not cancelled."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; cancelling a fired event is a no-op
        at the kernel level (the kernel marks events as cancelled when they
        fire, so a late ``cancel()`` never raises)."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventHandle {self._event!r}>"
