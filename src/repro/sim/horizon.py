"""Conservative lookahead-parallel execution (horizon batching).

On a cluster-structured grid, any message between two clusters takes at
least the latency model's ``min_delay(src_cluster, dst_cluster)`` to
arrive.  The classic conservative-simulation observation (Chandy-Misra
lookahead) follows: starting a window at the next event's time ``t``,
every event the simulation can *create* during ``[t, t + L)`` — where
``L`` is the minimum inter-cluster lookahead — either falls inside the
window (intra-cluster traffic, zero-delay callbacks) or lands at or
beyond the horizon.  The window's population is therefore *closed*: it
can be extracted from the global calendar once, drained to completion,
and only then reconciled with the global structure.

:class:`HorizonScheduler` exploits this without changing a single event
key.  Per window it

* bulk-extracts every entry due before the horizon from the global
  queue (whole buckets at a time on the calendar queue — the win that
  motivates :meth:`~repro.sim.calqueue.CalendarQueue.pop_window`) into a
  sorted ``base`` array,
* swaps a :class:`_WindowQueue` façade into the kernel, so everything
  scheduled *during* the drain takes one ``append`` (beyond-horizon:
  the overwhelming majority — CS holds, think timers, WAN sends) or one
  push into a tiny window heap (intra-window traffic), never touching
  the global structure,
* drains the two sources in exact ``(time, seq)`` merge order — one
  comparison per event against the walked ``base`` array instead of a
  full heap pop against the whole pending population,
* and at the barrier bulk-returns the deferred entries to the global
  queue.

Because the drain order is *exactly* the global ``(time, seq)`` total
order and every event keeps the key it was scheduled with, horizon
execution is bit-identical to the plain kernel loop: RunDigests —
which observe the run through trace subscribers — cannot tell the
difference (pinned by ``tests/properties/test_horizon_equivalence.py``).

Refusal matrix
--------------
Mirroring compiled promotion, the scheduler refuses to engage — one
``logger.info`` line, then the caller falls back to ``Simulator.run`` —
whenever the run carries machinery whose interaction with window
extraction has not been equivalence-gated: crash controllers, fault
injectors, per-flow FIFO, network send taps, a tie-seed salt, a
delivery interceptor, or a latency model that cannot promise a positive
lookahead (no ``min_delay`` method, jitter enabled, or fewer than two
clusters).

This module deliberately imports nothing from :mod:`repro.net` (the
network imports the kernel; a back-edge would cycle): the network and
latency model are duck-typed through the handful of attributes the
refusal matrix and the window aliasing need.
"""

from __future__ import annotations

import logging
from heapq import heapify, heappop, heappush
from math import nextafter
from typing import Any, List, Optional, Tuple

from .event import Event
from .kernel import _COMPACT_MIN_CANCELLED, Simulator

__all__ = ["LookaheadPlan", "derive_plan", "HorizonScheduler"]

logger = logging.getLogger(__name__)

_Entry = Tuple[float, int, Event]

#: Deferred entries are returned to a list-heap via per-entry pushes
#: (k·log N) unless the batch is large relative to the heap, where one
#: extend+heapify (O(N+k)) wins.
_HEAPIFY_RATIO = 8

#: Adaptive sparse-window bailout: after this many windows the
#: scheduler checks the observed event density ...
_SPARSE_PROBE_WINDOWS = 64

#: ... and hands the rest of the run to the plain kernel loop when the
#: average window fired fewer events than this.  Window extraction and
#: reconciliation cost a fixed overhead per window; below a handful of
#: events per window that overhead exceeds what batch draining saves
#: (measured on the 9-cluster Grid'5000 matrix: ~4 events per 1.57 ms
#: window — see docs/performance.md).  Bailing out is digest-invisible:
#: the serial loop *is* the reference order.
_SPARSE_MIN_DENSITY = 8.0


class LookaheadPlan:
    """The per-run lookahead facts the scheduler needs.

    ``cluster_of`` aliases the topology's dense node→cluster list (the
    same object :class:`~repro.net.latency._TableLatency` shares — never
    copied, never mutated); ``lookahead`` is the global conservative
    window length: the minimum ``min_delay`` over distinct cluster
    pairs.  ``pair_delay[i][j]`` keeps the full per-pair bound for
    cluster partitioning (the parallel mode routes on it)."""

    __slots__ = ("cluster_of", "n_clusters", "lookahead", "pair_delay")

    def __init__(
        self,
        cluster_of: List[int],
        n_clusters: int,
        lookahead: float,
        pair_delay: List[List[float]],
    ) -> None:
        self.cluster_of = cluster_of
        self.n_clusters = n_clusters
        self.lookahead = lookahead
        self.pair_delay = pair_delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LookaheadPlan clusters={self.n_clusters} "
            f"L={self.lookahead}ms>"
        )


def derive_plan(latency: Any, topology: Any) -> Optional[LookaheadPlan]:
    """Derive the conservative window length for ``(latency, topology)``.

    Returns ``None`` — after one ``logger.info`` line, mirroring the
    block-table fall-off of the scale-out path — when no positive
    lookahead exists:

    * the model has no ``min_delay`` method (``ConstantLatency``, custom
      models): nothing bounds its delays per cluster pair;
    * fewer than two clusters: no inter-cluster structure to exploit;
    * any pair's bound is zero (a jittered lognormal's infimum is 0).
    """
    min_delay = getattr(latency, "min_delay", None)
    if min_delay is None:
        logger.info(
            "latency model %s has no min_delay(): horizon execution "
            "falls back to serial (no conservative lookahead available)",
            type(latency).__name__,
        )
        return None
    n = int(topology.n_clusters)
    if n < 2:
        logger.info(
            "topology has %d cluster(s): horizon execution falls back "
            "to serial (lookahead needs inter-cluster structure)", n,
        )
        return None
    pair_delay = [
        [float(min_delay(i, j)) for j in range(n)] for i in range(n)
    ]
    lookahead = min(
        pair_delay[i][j] for i in range(n) for j in range(n) if i != j
    )
    if lookahead <= 0.0:
        logger.info(
            "latency model %s reports a zero inter-cluster lookahead "
            "(jitter enabled?): horizon execution falls back to serial",
            type(latency).__name__,
        )
        return None
    return LookaheadPlan(topology._cluster_of, n, lookahead, pair_delay)


class _WindowQueue:
    """The queue façade installed on the kernel during one window drain.

    Everything scheduled while a window is open lands here: entries due
    before the horizon go into the small ``extra`` heap (they must merge
    into the drain), everything else is a plain ``deferred`` append.
    The façade also carries the window's pre-extracted sorted ``base``
    array plus the drain cursor, so kernel introspection — ``pending``
    counts, ``_peek``, ``pending_events`` — stays exact mid-window.
    """

    __slots__ = ("horizon", "base", "idx", "extra", "deferred")

    def __init__(self, horizon: float, base: List[_Entry]) -> None:
        self.horizon = horizon
        self.base = base
        self.idx = 0
        self.extra: List[_Entry] = []
        self.deferred: List[_Entry] = []

    # -- the push/pop protocol the kernel drives ------------------------ #
    def push(self, entry: _Entry) -> None:
        if entry[0] < self.horizon:
            heappush(self.extra, entry)
        else:
            self.deferred.append(entry)

    def pop(self) -> _Entry:
        base = self.base
        idx = self.idx
        extra = self.extra
        if idx < len(base):
            head = base[idx]
            if extra and extra[0] < head:
                return heappop(extra)
            self.idx = idx + 1
            return head
        if extra:
            return heappop(extra)
        raise IndexError("pop from a drained horizon window")

    def head(self) -> Optional[_Entry]:
        base = self.base
        idx = self.idx
        extra = self.extra
        if idx < len(base):
            head = base[idx]
            if extra and extra[0] < head:
                return extra[0]
            return head
        if extra:
            return extra[0]
        return None

    # -- introspection the kernel may route here ------------------------ #
    def __len__(self) -> int:
        return len(self.base) - self.idx + len(self.extra) + len(self.deferred)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        yield from self.base[self.idx:]
        yield from self.extra
        yield from self.deferred

    def compact(self) -> None:  # pragma: no cover - compaction is deferred
        # The kernel never compacts mid-window (``_defer_compact``); the
        # method exists so an explicit ``_compact()`` call cannot crash.
        # Lists mutate in place: the drain loop holds aliases to them.
        self.base[self.idx:] = [
            e for e in self.base[self.idx:] if not e[2].cancelled
        ]
        self.extra[:] = [e for e in self.extra if not e[2].cancelled]
        heapify(self.extra)
        self.deferred[:] = [e for e in self.deferred if not e[2].cancelled]


class HorizonScheduler:
    """Windowed driver producing the exact serial event order.

    Parameters
    ----------
    sim:
        The kernel to drive.  Must not be mid-``run``.
    net:
        The transport (duck-typed).  Used for the refusal matrix and,
        when it exposes ``enter_window``/``exit_window`` (the compiled
        transport), for re-aiming its cached queue aliases at the
        window façade.
    plan:
        A :class:`LookaheadPlan` from :func:`derive_plan`.
    """

    def __init__(self, sim: Simulator, net: Any, plan: LookaheadPlan) -> None:
        self.sim = sim
        self.net = net
        self.plan = plan
        self.windows = 0  # drained windows (telemetry/tests)

    # ------------------------------------------------------------------ #
    # refusal matrix
    # ------------------------------------------------------------------ #
    @staticmethod
    def refusal(sim: Simulator, net: Any) -> Optional[str]:
        """Why horizon execution must not engage, or ``None`` if it may.

        The matrix mirrors compiled promotion: anything that makes
        per-event global scheduling observable — or that has simply not
        been equivalence-gated against window extraction — refuses.
        """
        if getattr(net, "crashes", None) is not None:
            return "crash controller attached"
        if getattr(net, "faults", None) is not None:
            return "fault injector attached"
        if getattr(net, "fifo", False):
            return "per-flow FIFO enabled"
        if getattr(net, "_send_taps", ()):
            return "network send taps attached"
        if getattr(net, "_intercept", None) is not None:
            return "delivery interceptor installed"
        if sim._tie_salt is not None:
            return "tie-seed salt active"
        return None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, until: float) -> float:
        """Drive the simulation to ``until`` in conservative windows.

        Same contract as ``Simulator.run(until=...)``: events due at
        exactly ``until`` fire, the clock advances to ``until`` when the
        calendar drains or overshoots, and ``stop()`` freezes the clock
        at the stopping event.
        """
        sim = self.sim
        if sim._running:
            raise RuntimeError("HorizonScheduler.run() during Simulator.run()")
        sim._running = True
        sim._stopped = False
        lookahead = self.plan.lookahead
        # Smallest float beyond `until`: entries due exactly at `until`
        # are in-window (strict < cut), later ones are not.
        limit = nextafter(until, float("inf"))
        exhausted = False
        sparse = False
        fired0 = sim._fired
        windows0 = self.windows
        try:
            while not sim._stopped:
                head = sim._peek()
                if head is None:
                    exhausted = True
                    break
                t0 = head.time
                if t0 > until:
                    exhausted = True
                    break
                cut = t0 + lookahead
                if cut > limit:
                    cut = limit
                elif cut <= t0:  # pragma: no cover - ulp-scale lookahead
                    cut = nextafter(t0, float("inf"))
                self._drain_window(cut)
                if (
                    self.windows - windows0 == _SPARSE_PROBE_WINDOWS
                    and sim._fired - fired0
                    < _SPARSE_MIN_DENSITY * _SPARSE_PROBE_WINDOWS
                ):
                    sparse = True
                    break
        finally:
            sim._running = False
        if sparse:
            # Sparse windows: per-window overhead exceeds the batching
            # win.  The serial loop is the reference order, so handing
            # the remainder to it is digest-invisible.
            logger.info(
                "horizon windows too sparse (%.1f events/window over the "
                "first %d): finishing the run serially",
                (sim._fired - fired0) / _SPARSE_PROBE_WINDOWS,
                _SPARSE_PROBE_WINDOWS,
            )
            return sim.run(until=until)
        if exhausted and sim._now < until:
            sim._now = until
        return sim._now

    def drain_before(self, t_end: float) -> None:
        """Drain every event due strictly before ``t_end`` (one window).

        The cluster-parallel worker's entry point: its inter-window
        barrier already guarantees nothing new can arrive before
        ``t_end``, so the whole span is one conservative window."""
        sim = self.sim
        if sim._running:
            raise RuntimeError("drain_before() during Simulator.run()")
        sim._running = True
        try:
            head = sim._peek()
            if head is not None and head.time < t_end:
                self._drain_window(t_end)
        finally:
            sim._running = False

    # ------------------------------------------------------------------ #
    def _drain_window(self, cut: float) -> None:
        """Extract, drain and reconcile one window ``[now, cut)``."""
        sim = self.sim
        heap = sim._heap
        # -- extraction ------------------------------------------------- #
        if type(heap) is list:
            base: List[_Entry] = []
            append = base.append
            while heap and heap[0][0] < cut:
                append(heappop(heap))
        else:
            base = heap.pop_window(cut)
        wq = _WindowQueue(cut, base)
        saved = (sim._heap, sim._pushf, sim._popf)
        sim._heap = wq  # type: ignore[assignment]
        # Unbound methods match the kernel's ``pushf(queue, entry)`` /
        # ``popf(queue)`` protocol, exactly like ``CalendarQueue.push``.
        sim._pushf = _WindowQueue.push  # type: ignore[assignment]
        sim._popf = _WindowQueue.pop  # type: ignore[assignment]
        sim._defer_compact = True
        net = self.net
        enter = getattr(net, "enter_window", None)
        if enter is not None:
            enter(wq)
        try:
            self._drain(wq)
        finally:
            # -- barrier ------------------------------------------------ #
            sim._heap, sim._pushf, sim._popf = saved
            sim._defer_compact = False
            if enter is not None:
                net.exit_window()
            leftovers = wq.deferred
            # A stop() mid-window leaves live entries in the window
            # sources; they must survive into the global queue.
            if wq.idx < len(wq.base) or wq.extra:
                leftovers = wq.base[wq.idx:] + wq.extra + leftovers
            heap = sim._heap
            if type(heap) is list:
                if len(leftovers) * _HEAPIFY_RATIO >= len(heap) + 1:
                    heap.extend(leftovers)
                    heapify(heap)
                else:
                    for entry in leftovers:
                        heappush(heap, entry)
            else:
                heap.push_many(leftovers)
            # Re-check the compaction the window may have suppressed.
            if (
                sim._cancelled > _COMPACT_MIN_CANCELLED
                and sim._cancelled * 2 > len(heap)
            ):
                sim._compact()
            self.windows += 1

    def _drain(self, wq: _WindowQueue) -> None:
        """Fire the window's events in exact ``(time, seq)`` order.

        The hot loop: one comparison decides between the walked ``base``
        array and the tiny ``extra`` heap; firing inlines the kernel's
        ``step`` body (tombstone skip, clock advance, trace gate)."""
        sim = self.sim
        base = wq.base
        n_base = len(base)
        extra = wq.extra
        trace = sim.trace
        fired = sim._fired
        cancelled_delta = 0
        try:
            while not sim._stopped:
                idx = wq.idx
                if idx < n_base:
                    entry = base[idx]
                    if extra and extra[0] < entry:
                        entry = heappop(extra)
                    else:
                        wq.idx = idx + 1
                elif extra:
                    entry = heappop(extra)
                else:
                    break
                event = entry[2]
                if event.cancelled:
                    cancelled_delta += 1
                    continue
                sim._now = event.time
                event.cancelled = True
                fired += 1
                if trace.event_active:
                    trace.emit("event", time=event.time, label=event.label)
                event.callback(*event.args)
        finally:
            sim._fired = fired
            sim._cancelled -= cancelled_delta
