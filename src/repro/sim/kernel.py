"""The discrete-event simulation kernel.

The kernel is a classic calendar-queue simulator: a binary heap of
``(time, seq, event)`` entries ordered by ``(time, seq)``.  The
simulated clock only moves when an event fires, so a run is fully
deterministic given the same schedule and the same RNG seeds.

Time unit
---------
The library uses **milliseconds** throughout, matching the paper's
measurements (Grid'5000 RTTs of 3-100 ms, critical sections of 10 ms).
Nothing in the kernel depends on the unit, but mixing units across layers
is the easiest way to get nonsense results, so it is fixed by convention.

Hot path
--------
Paper-scale sweeps fire millions of events, so the kernel keeps the
per-event work minimal (see ``docs/performance.md``):

* heap entries are ``(time, seq, event)`` tuples, so ``heappush``/
  ``heappop`` compare keys entirely in C (``seq`` is unique: the
  comparison never reaches the event object);
* :meth:`Simulator.run` hoists the ``until``/``max_events`` bound checks
  out of the loop — a run without bounds executes a tight pop/fire loop;
* :meth:`Simulator.post_at` schedules without allocating an
  :class:`~repro.sim.event.EventHandle` for internal callers that never
  cancel (message delivery is the dominant source of events);
* cancelled events are removed *lazily* (tombstones popped on
  encounter), but the kernel counts them and compacts the heap in place
  once tombstones outnumber live events — heavy cancellers such as the
  recovery layer's re-armed deadline timers stay O(live) instead of
  growing the heap without bound.

Typical usage::

    sim = Simulator(seed=42)
    sim.schedule(5.0, lambda: print("fires at t=5ms"))
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Tuple, Union

from ..errors import SimulationError
from .calqueue import CalendarQueue
from .event import Event, EventHandle
from .rng import RngRegistry
from .trace import Tracer

__all__ = ["Simulator"]

#: Compaction is considered only past this many tombstones (a small heap
#: is cheap to scan anyway, and recovering a handful of slots is noise).
_COMPACT_MIN_CANCELLED = 64

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a bijection on 64-bit integers.

    Used by the schedule-race sanitizer to permute heap tie-break keys —
    bijectivity keeps keys unique, so the heap stays totally ordered and
    events at *distinct* times fire in exactly the same order, while
    events sharing a timestamp fire in a pseudo-random (but fully
    deterministic) order instead of FIFO."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for every random stream derived through :attr:`rng`.
        ``None`` draws fresh OS entropy (non-reproducible runs).
    trace:
        Optional :class:`~repro.sim.trace.Tracer`; a fresh one is created
        when omitted.
    tie_seed:
        ``None`` (the default) keeps the documented FIFO tie-break:
        events sharing a timestamp fire in scheduling order.  An integer
        perturbs the tie-break deterministically — same-time events fire
        in an arbitrary but reproducible order derived from the seed.
        Every valid run must produce the same observable behaviour under
        any ``tie_seed``; the schedule-race sanitizer
        (:mod:`repro.analysis.sanitizer`) exploits this to turn latent
        event-ordering races into digest divergences.
    queue:
        ``"heap"`` (the default) keeps the tuple binary heap; ``"calendar"``
        swaps in the bucketed :class:`~repro.sim.calqueue.CalendarQueue`
        for large event populations (1k+ node grids).  Both pop in the
        exact same ``(time, seq)`` total order, so a run is bit-identical
        under either queue (digest-pinned by the equivalence tests).
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        trace: Optional[Tracer] = None,
        tie_seed: Optional[int] = None,
        queue: str = "heap",
    ) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        if queue == "heap":
            self._heap: Union[list[Tuple[float, int, Event]], CalendarQueue] = []
            self._pushf: Callable[[Any, Tuple[float, int, Event]], None] = (
                heapq.heappush
            )
            self._popf: Callable[[Any], Tuple[float, int, Event]] = heapq.heappop
        elif queue == "calendar":
            self._heap = CalendarQueue()
            self._pushf = CalendarQueue.push
            self._popf = CalendarQueue.pop
        else:
            raise SimulationError(
                f"unknown queue {queue!r}: expected 'heap' or 'calendar'"
            )
        self.queue = queue
        self._running = False
        self._stopped = False
        self._fired = 0
        self._cancelled = 0  # tombstones still physically in the heap
        #: Set by the horizon scheduler while a window drain has the
        #: calendar split between the global queue and a window-local
        #: façade: compaction would only see one half, so it is deferred
        #: to the window barrier (where the scheduler re-checks it).
        self._defer_compact = False
        self.tie_seed = tie_seed
        #: precomputed offset so distinct tie seeds yield distinct orders
        self._tie_salt: Optional[int] = (
            None if tie_seed is None else _mix64(int(tie_seed) ^ 0x9E3779B97F4A7C15)
        )
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer()

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Exact number of live (non-cancelled) events in the calendar."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (tombstones).

        Exposed for the compaction heuristic and for tests; drops to zero
        after a compaction or once the tombstones are popped."""
        return self._cancelled

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        if not callable(callback):
            raise SimulationError(f"callback must be callable, got {callback!r}")
        seq = self._seq
        event = Event(time, seq, callback, args, label=label)
        if self._tie_salt is not None:
            seq = _mix64(seq ^ self._tie_salt)
        self._pushf(self._heap, (time, seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def post_at(
        self, time: float, callback: Callable[..., Any], args: tuple = ()
    ) -> Event:
        """Handle-free scheduling at absolute time ``time`` (hot path).

        Identical ordering semantics to :meth:`schedule_at` but skips the
        :class:`EventHandle` allocation, the label, and the callable check
        — for internal callers (message delivery, workload stepping) that
        schedule in bulk and never cancel.  Returns the raw
        :class:`Event`; treat it as opaque.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        seq = self._seq
        event = Event(time, seq, callback, args)
        if self._tie_salt is not None:
            # Sanitizer mode: permute the tie-break key (bijective, so
            # still unique — comparisons never reach the Event object).
            seq = _mix64(seq ^ self._tie_salt)
        self._pushf(self._heap, (time, seq, event))
        self._seq += 1
        return event

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the calendar was
        empty.  Cancelled events are silently discarded.
        """
        heap = self._heap
        pop = self._popf
        while heap:
            event = pop(heap)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            event.cancelled = True  # a fired event can no longer be cancelled
            self._fired += 1
            if self.trace.event_active:
                self.trace.emit("event", time=event.time, label=event.label)
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the calendar drains, ``until`` is reached, or
        ``max_events`` have fired — whichever comes first.  Returns the
        final simulated time.

        Clock semantics on return:

        * ``stop()`` called during an event — the clock stays exactly
          where that event fired, even when ``until`` was given;
        * calendar drained, or next event due after ``until`` — the
          clock advances to exactly ``until`` (later events stay in the
          calendar);
        * ``max_events`` exhausted — the clock stays at the last fired
          event (no advance to ``until``: the run was cut short, not
          completed).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = self._popf
        trace = self.trace
        try:
            if until is None and max_events is None:
                # Fast path: no bound checks per iteration.  `heap` stays
                # a valid alias because compaction mutates it in place.
                # The fired counter accumulates in a local (an attribute
                # store per event otherwise) and lands in `_fired` on
                # every exit; nothing reads it mid-run — callbacks only
                # see `events_fired` after run() returns.
                fired = self._fired
                try:
                    while heap and not self._stopped:
                        event = pop(heap)[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        self._now = event.time
                        event.cancelled = True
                        fired += 1
                        if trace.event_active:
                            trace.emit(
                                "event", time=event.time, label=event.label
                            )
                        event.callback(*event.args)
                finally:
                    self._fired = fired
                return self._now

            if max_events is None:
                # `until`-only: the run_experiment path.  Pop first and
                # push the head back on the (rare) deadline overshoot —
                # cheaper than peeking then popping on every iteration.
                exhausted = False
                fired = self._fired
                try:
                    while not self._stopped:
                        if not heap:
                            exhausted = True
                            break
                        entry = pop(heap)
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        t = entry[0]
                        if t > until:
                            self._pushf(heap, entry)
                            exhausted = True
                            break
                        self._now = t
                        event.cancelled = True
                        fired += 1
                        if trace.event_active:
                            trace.emit("event", time=t, label=event.label)
                        event.callback(*event.args)
                finally:
                    self._fired = fired
                if exhausted and self._now < until:
                    self._now = until
                return self._now

            fired = 0
            exhausted = False  # drained, or next event beyond `until`
            while not self._stopped:
                if fired >= max_events:
                    break
                event = self._peek()
                if event is None:
                    exhausted = True
                    break
                if until is not None and event.time > until:
                    exhausted = True
                    break
                pop(heap)  # the peeked head: live by construction
                self._now = event.time
                event.cancelled = True
                self._fired += 1
                fired += 1
                if trace.event_active:
                    trace.emit("event", time=event.time, label=event.label)
                event.callback(*event.args)
            if exhausted and until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def drain_current(self) -> int:
        """Fire every event due at exactly the current instant.

        The controlled-scheduler entry point used by the model checker
        (:mod:`repro.analysis.explore`): zero-delay events posted during
        a handler run to completion in deterministic ``(time, seq)``
        order, but the clock never advances — events due strictly later
        stay in the calendar, so the caller keeps full control over
        which of them (if any) happens next.  Returns the number of
        events fired.
        """
        fired = 0
        while True:
            event = self._peek()
            if event is None or event.time > self._now:
                return fired
            self.step()
            fired += 1

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without firing it."""
        heap = self._heap
        if type(heap) is list:
            while heap:
                event = heap[0][2]
                if event.cancelled:
                    heapq.heappop(heap)
                    self._cancelled -= 1
                    continue
                return event
            return None
        # Any non-list queue (CalendarQueue, the horizon window façade)
        # speaks the head()/pop() protocol.
        while True:
            entry = heap.head()
            if entry is None:
                return None
            event = entry[2]
            if event.cancelled:
                heap.pop()
                self._cancelled -= 1
                continue
            return event

    # ------------------------------------------------------------------ #
    # lazy-deletion accounting
    # ------------------------------------------------------------------ #
    def _note_cancelled(self) -> None:
        """Record one cancellation of a still-queued event (called by
        :meth:`EventHandle.cancel`) and compact when tombstones dominate."""
        self._cancelled += 1
        if (
            self._cancelled > _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._heap)
            and not self._defer_compact
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone and re-heapify **in place**.

        In place matters: :meth:`run` holds a local alias to the heap
        list, and callbacks may trigger a compaction mid-run via
        ``cancel()``.  Rebuilding preserves firing order exactly because
        ``(time, seq)`` keys are unique."""
        heap = self._heap
        if type(heap) is list:
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
        else:
            # CalendarQueue (or any queue façade exposing compact()).
            heap.compact()
        self._cancelled = 0

    # ------------------------------------------------------------------ #
    # introspection helpers (used by tests and the tracer)
    # ------------------------------------------------------------------ #
    def pending_events(self) -> Iterable[Event]:
        """Yield pending (non-cancelled) events in an unspecified order."""
        return (entry[2] for entry in self._heap if not entry[2].cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.3f}ms fired={self._fired} "
            f"pending={self.pending}>"
        )
