"""The discrete-event simulation kernel.

The kernel is a classic calendar-queue simulator: a binary heap of
:class:`~repro.sim.event.Event` objects ordered by ``(time, seq)``.  The
simulated clock only moves when an event fires, so a run is fully
deterministic given the same schedule and the same RNG seeds.

Time unit
---------
The library uses **milliseconds** throughout, matching the paper's
measurements (Grid'5000 RTTs of 3-100 ms, critical sections of 10 ms).
Nothing in the kernel depends on the unit, but mixing units across layers
is the easiest way to get nonsense results, so it is fixed by convention.

Typical usage::

    sim = Simulator(seed=42)
    sim.schedule(5.0, lambda: print("fires at t=5ms"))
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError
from .event import Event, EventHandle
from .rng import RngRegistry
from .trace import Tracer

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for every random stream derived through :attr:`rng`.
        ``None`` draws fresh OS entropy (non-reproducible runs).
    trace:
        Optional :class:`~repro.sim.trace.Tracer`; a fresh one is created
        when omitted.
    """

    def __init__(self, seed: Optional[int] = None, trace: Optional[Tracer] = None) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[Event] = []
        self._running = False
        self._stopped = False
        self._fired = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer()

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled ones
        that have not been popped yet)."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        if not callable(callback):
            raise SimulationError(f"callback must be callable, got {callback!r}")
        event = Event(time, self._seq, callback, args, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the calendar was
        empty.  Cancelled events are silently discarded.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.cancelled = True  # a fired event can no longer be cancelled
            self._fired += 1
            if self.trace.active:
                self.trace.emit("event", time=event.time, label=event.label)
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the calendar drains, ``until`` is reached, or
        ``max_events`` have fired — whichever comes first.  Returns the
        final simulated time.

        Clock semantics on return:

        * ``stop()`` called during an event — the clock stays exactly
          where that event fired, even when ``until`` was given;
        * calendar drained, or next event due after ``until`` — the
          clock advances to exactly ``until`` (later events stay in the
          calendar);
        * ``max_events`` exhausted — the clock stays at the last fired
          event (no advance to ``until``: the run was cut short, not
          completed).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        exhausted = False  # drained, or next event beyond `until`
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                event = self._peek()
                if event is None:
                    exhausted = True
                    break
                if until is not None and event.time > until:
                    exhausted = True
                    break
                self.step()
                fired += 1
            if exhausted and until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without firing it."""
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event
        return None

    # ------------------------------------------------------------------ #
    # introspection helpers (used by tests and the tracer)
    # ------------------------------------------------------------------ #
    def pending_events(self) -> Iterable[Event]:
        """Yield pending (non-cancelled) events in an unspecified order."""
        return (e for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.3f}ms fired={self._fired} "
            f"pending={self.pending}>"
        )
