"""Simulated processes.

A :class:`Process` is anything with behaviour in simulated time: an
application process, a mutual exclusion peer, a coordinator.  The base
class only provides naming, access to the kernel clock, and managed
timers; message passing lives one layer up in :mod:`repro.net`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .event import Event, EventHandle
from .kernel import Simulator

__all__ = ["Process"]


class Process:
    """Base class for simulated processes.

    Parameters
    ----------
    sim:
        The kernel this process lives on.
    name:
        Stable identifier used for tracing and RNG stream derivation.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._timers: list[EventHandle] = []
        self._halted = False
        self._timer_label = f"{name}.timer"  # hoisted off the set_timer path

    # ------------------------------------------------------------------ #
    # time helpers
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time (ms)."""
        return self.sim.now

    def set_timer(
        self, delay: float, fn: Callable[..., Any], *args: Any, label: str = ""
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to fire ``delay`` ms from now.

        The handle is tracked so :meth:`cancel_timers` can sweep every
        outstanding timer of the process (used at teardown).

        On a halted process (see :meth:`halt`) nothing is scheduled and
        an inert, already-cancelled handle is returned: a crashed node
        cannot arm timers, and callers need not special-case it."""
        if self._halted:
            dead = Event(self.sim.now, -1, fn, args, label=label)
            dead.cancelled = True
            return EventHandle(dead)
        handle = self.sim.schedule(
            delay, fn, *args, label=label or self._timer_label
        )
        self._timers.append(handle)
        # Opportunistically compact the tracking list so long-lived
        # processes do not accumulate dead handles.
        if len(self._timers) > 64:
            self._timers = [h for h in self._timers if h.active]
        return handle

    def cancel_timers(self) -> None:
        """Cancel every outstanding timer of this process."""
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------ #
    # crash semantics (driven by repro.net.faults.CrashController)
    # ------------------------------------------------------------------ #
    @property
    def halted(self) -> bool:
        """Whether this process is halted (its node has crashed)."""
        return self._halted

    def halt(self) -> None:
        """Crash-stop this process: cancel every outstanding timer and
        refuse new ones until :meth:`resume`.  Idempotent."""
        self._halted = True
        self.cancel_timers()

    def resume(self) -> None:
        """Allow the process to arm timers again (node restart).  Its
        protocol state is whatever it was at the crash — rejoining a
        distributed structure is the recovery layer's job, not ours."""
        self._halted = False

    def rng(self, purpose: str = "default") -> "np.random.Generator":
        """Return this process's named random stream for ``purpose``."""
        return self.sim.rng.stream(f"{self.name}/{purpose}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
