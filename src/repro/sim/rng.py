"""Deterministic random-stream management.

Every source of randomness in a simulation (per-node think times, latency
jitter, workload shuffles...) pulls from its own named stream derived from a
single master seed.  Two properties follow:

* **Reproducibility** — the same master seed gives bit-identical runs.
* **Independence from iteration order** — a stream's values depend only on
  its *label*, not on how many other streams were created before it, so
  adding a new random consumer does not perturb existing ones.

Streams are :class:`numpy.random.Generator` instances (PCG64), the idiom
recommended by the scientific-Python optimization guides.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np

__all__ = ["RngRegistry", "stable_hash"]


def stable_hash(label: str) -> int:
    """Map ``label`` to a stable 64-bit integer (process-independent,
    unlike the built-in ``hash``)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of named, independent random generators.

    Parameters
    ----------
    seed:
        Master entropy.  ``None`` draws fresh OS entropy.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy)
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was built from."""
        return self._seed

    def stream(self, label: str) -> np.random.Generator:
        """Return the generator for ``label``, creating it on first use.

        Repeated calls with the same label return the *same* generator
        object (so its state advances across calls), which is what a
        long-lived consumer such as a workload process wants.
        """
        gen = self._streams.get(label)
        if gen is None:
            seq = np.random.SeedSequence([self._seed, stable_hash(label)])
            gen = np.random.default_rng(seq)
            self._streams[label] = gen
        return gen

    def fresh(self, label: str) -> np.random.Generator:
        """Return a *new* generator for ``label`` with pristine state,
        bypassing the cache.  Useful in tests that want to replay a
        stream from its beginning."""
        seq = np.random.SeedSequence([self._seed, stable_hash(label)])
        return np.random.default_rng(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self._seed} streams={len(self._streams)}>"
