"""Lightweight structured tracing.

The kernel, the network and the algorithms emit *trace records* — a kind
string plus keyword fields — through a shared :class:`Tracer`.  With no
subscribers the emit path is a single attribute check, so tracing costs
nothing in production runs; tests and the safety/liveness checkers attach
subscribers to observe the simulation without instrumenting the algorithms.

Per-kind gating
---------------
Subscribing to one kind must not tax emitters of every other kind: a run
with only a ``cs_enter`` checker attached fires millions of ``event`` and
``send`` records' worth of *emitter* work if emitters gate on the global
:attr:`Tracer.active` flag alone.  The tracer therefore maintains
:attr:`Tracer.active_kinds` — the set of kinds with at least one
subscriber (a match-everything sentinel when a ``"*"`` subscriber exists)
— and hot emitters guard with ``if "send" in trace.active_kinds:`` so the
keyword-argument packing and record construction are skipped entirely for
unobserved kinds.  :meth:`emit` applies the same gate internally, so
emitters that still check the coarse :attr:`active` flag stay correct,
just marginally slower.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List

__all__ = ["Tracer", "TraceRecord"]


class TraceRecord:
    """One trace record: ``kind`` plus arbitrary keyword fields."""

    __slots__ = ("kind", "fields")

    def __init__(self, kind: str, fields: Dict[str, Any]) -> None:
        self.kind = kind
        self.fields = fields

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"<{self.kind} {inner}>"


class _AllKinds:
    """Sentinel for :attr:`Tracer.active_kinds` when a ``"*"`` subscriber
    exists: membership is true for every kind."""

    __slots__ = ()

    def __contains__(self, kind: object) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<all kinds>"


_ALL_KINDS = _AllKinds()


class Tracer:
    """Pub/sub hub for trace records.

    Subscribers register for a specific kind or for ``"*"`` (all kinds).
    :attr:`active` (any subscriber at all) and :attr:`active_kinds` (the
    per-kind active set) are maintained so emitters can skip building the
    record dict entirely when nobody is listening for that kind.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, List[Callable[[TraceRecord], None]]] = defaultdict(list)
        self.active = False
        #: Kinds with >= 1 subscriber; supports ``kind in active_kinds``.
        self.active_kinds: Any = frozenset()
        #: ``"event" in active_kinds`` as a plain attribute: the kernel
        #: loop checks this once per fired event, so it skips the set
        #: membership call.
        self.event_active = False
        #: snapshot of the ``"*"`` subscriber list, hoisted out of emit
        self._star: tuple = ()
        #: bumped on every subscription change; hot emitters snapshot
        #: their per-kind gates and revalidate with one integer compare
        self.version = 0

    def _refresh(self) -> None:
        kinds = {k for k, subs in self._subs.items() if subs}
        self.active = bool(kinds)
        self.active_kinds = _ALL_KINDS if "*" in kinds else frozenset(kinds)
        self.event_active = "event" in self.active_kinds
        self._star = tuple(self._subs.get("*", ()))
        self.version += 1

    def subscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Register ``fn`` to receive every record of ``kind`` (or all
        records when ``kind == "*"``)."""
        self._subs[kind].append(fn)
        self._refresh()

    def unsubscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        self._subs[kind].remove(fn)
        self._refresh()

    def wants(self, kind: str) -> bool:
        """Whether any subscriber would receive a record of ``kind``."""
        return kind in self.active_kinds

    def emit(self, kind: str, /, **fields: Any) -> None:
        """Deliver a record to the matching subscribers synchronously.

        ``kind`` is positional-only so protocols may carry their own
        ``kind`` field in ``fields`` without colliding (the record's own
        kind stays authoritative under ``record.kind``; a field of the
        same name is reachable via ``record.fields["kind"]``).
        """
        subs = self._subs.get(kind)
        star = self._star
        if not subs and not star:
            return
        record = TraceRecord(kind, fields)
        if subs:
            for fn in subs:
                fn(record)
        for fn in star:
            fn(record)

    def record_into(self, kind: str, sink: List[TraceRecord]) -> None:
        """Convenience: append every record of ``kind`` to ``sink``."""
        self.subscribe(kind, sink.append)

    def attach(
        self, handlers: Dict[str, Callable[[TraceRecord], None]]
    ) -> Callable[[], None]:
        """Subscribe a ``{kind: fn}`` bundle; returns a detach callable.

        Observers that listen on several kinds at once (checkers, the
        observability layer) attach and detach as one unit, so no
        subscription can leak when an observer is torn down."""
        items = tuple(handlers.items())
        for kind, fn in items:
            self.subscribe(kind, fn)

        def detach() -> None:
            for kind, fn in items:
                self.unsubscribe(kind, fn)

        return detach
