"""Lightweight structured tracing.

The kernel, the network and the algorithms emit *trace records* — a kind
string plus keyword fields — through a shared :class:`Tracer`.  With no
subscribers the emit path is a single attribute check, so tracing costs
nothing in production runs; tests and the safety/liveness checkers attach
subscribers to observe the simulation without instrumenting the algorithms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List

__all__ = ["Tracer", "TraceRecord"]


class TraceRecord:
    """One trace record: ``kind`` plus arbitrary keyword fields."""

    __slots__ = ("kind", "fields")

    def __init__(self, kind: str, fields: Dict[str, Any]) -> None:
        self.kind = kind
        self.fields = fields

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"<{self.kind} {inner}>"


class Tracer:
    """Pub/sub hub for trace records.

    Subscribers register for a specific kind or for ``"*"`` (all kinds).
    :attr:`active` is maintained so emitters can skip building the record
    dict entirely when nobody is listening.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, List[Callable[[TraceRecord], None]]] = defaultdict(list)
        self.active = False

    def subscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Register ``fn`` to receive every record of ``kind`` (or all
        records when ``kind == "*"``)."""
        self._subs[kind].append(fn)
        self.active = True

    def unsubscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        self._subs[kind].remove(fn)
        if not any(self._subs.values()):
            self.active = False

    def emit(self, kind: str, /, **fields: Any) -> None:
        """Deliver a record to the matching subscribers synchronously.

        ``kind`` is positional-only so protocols may carry their own
        ``kind`` field in ``fields`` without colliding (the record's own
        kind stays authoritative under ``record.kind``; a field of the
        same name is reachable via ``record.fields["kind"]``).
        """
        if not self.active:
            return
        record = TraceRecord(kind, fields)
        for fn in self._subs.get(kind, ()):
            fn(record)
        for fn in self._subs.get("*", ()):
            fn(record)

    def record_into(self, kind: str, sink: List[TraceRecord]) -> None:
        """Convenience: append every record of ``kind`` to ``sink``."""
        self.subscribe(kind, sink.append)
